//! DPG baseline (Li et al., "Approximate nearest neighbor search on high
//! dimensional data — experiments, analyses, and improvement"): angle-
//! diversified pruning of a kNN graph followed by undirected compensation.
//!
//! From each node's kNN list of size `k`, DPG greedily keeps `k/2` edges that
//! maximize the angular diversity among the kept edges, then adds every kept
//! edge's reverse edge, producing an undirected graph. The paper notes DPG's
//! resulting maximum out-degree is very large (Table 2), which is exactly what
//! the reverse-compensation step produces on skewed data.

use nsg_core::context::SearchContext;
use nsg_core::graph::CompactGraph;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::search_from_context_entries;
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::sample::query_salt;
use nsg_vectors::VectorSet;
use std::sync::Arc;

/// Parameters of the DPG baseline.
#[derive(Debug, Clone, Copy)]
pub struct DpgParams {
    /// kNN-graph construction parameters; DPG keeps `knn.k / 2` edges.
    pub knn: NnDescentParams,
    /// Minimum number of random entry points per query. As with KGraph, the
    /// search draws at least the pool size `l` random entries, matching the
    /// released random-init searches and keeping distant clusters seeded.
    pub num_entry_points: usize,
    /// RNG seed for entry-point selection.
    pub seed: u64,
}

impl Default for DpgParams {
    fn default() -> Self {
        Self {
            knn: NnDescentParams { k: 40, ..Default::default() },
            num_entry_points: 4,
            seed: 0xD9,
        }
    }
}

/// Cosine of the angle at `p` between directions `p -> a` and `p -> b`.
fn cos_angle(base: &VectorSet, p: usize, a: usize, b: usize) -> f32 {
    let pv = base.get(p);
    let av = base.get(a);
    let bv = base.get(b);
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for i in 0..pv.len() {
        let da = av[i] - pv[i];
        let db = bv[i] - pv[i];
        dot += da * db;
        na += da * da;
        nb += db * db;
    }
    dot / (na.sqrt() * nb.sqrt()).max(1e-12)
}

/// Applies DPG's angle-diversification + undirected compensation to a kNN
/// graph, returning the final graph (both directions of every kept edge),
/// frozen into the contiguous query-time layout.
pub fn diversify(base: &VectorSet, knn: &KnnGraph) -> CompactGraph {
    let n = knn.len();
    let keep = (knn.k() / 2).max(1);
    let mut adjacency: Vec<Vec<u32>> = (0..n as u32)
        .map(|v| {
            let list: Vec<u32> = knn.neighbor_ids(v).collect();
            if list.len() <= keep {
                return list;
            }
            // Greedy diversification: start from the nearest neighbor, then
            // repeatedly add the candidate whose maximum cosine similarity to
            // the already-kept directions is smallest (largest minimum angle).
            let mut kept: Vec<u32> = vec![list[0]];
            while kept.len() < keep {
                let mut best: Option<(u32, f32)> = None;
                for &cand in &list {
                    if kept.contains(&cand) {
                        continue;
                    }
                    let worst_cos = kept
                        .iter()
                        .map(|&kc| cos_angle(base, v as usize, cand as usize, kc as usize))
                        .fold(f32::NEG_INFINITY, f32::max);
                    match best {
                        Some((_, best_cos)) if worst_cos >= best_cos => {}
                        _ => best = Some((cand, worst_cos)),
                    }
                }
                match best {
                    Some((cand, _)) => kept.push(cand),
                    None => break,
                }
            }
            kept
        })
        .collect();
    // Undirected compensation: add the reverse of every kept edge.
    let snapshot: Vec<Vec<u32>> = adjacency.clone();
    for (v, list) in snapshot.iter().enumerate() {
        for &u in list {
            if !adjacency[u as usize].contains(&(v as u32)) {
                adjacency[u as usize].push(v as u32);
            }
        }
    }
    CompactGraph::from_adjacency(adjacency)
}

/// The DPG index.
pub struct DpgIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    graph: CompactGraph,
    params: DpgParams,
}

impl<D: Distance + Sync> DpgIndex<D> {
    /// Builds the kNN graph and applies the DPG diversification.
    pub fn build(base: Arc<VectorSet>, metric: D, params: DpgParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::from_knn_graph(base, metric, &knn, params)
    }

    /// Applies the diversification to an existing kNN graph.
    pub fn from_knn_graph(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: DpgParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let graph = diversify(&base, knn);
        Self { base, metric, graph, params }
    }

    /// The diversified frozen graph (for Table 2 / Table 4 statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync> AnnIndex for DpgIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.params();
        ctx.fill_random_entries(
            self.base.len(),
            self.params.num_entry_points.max(params.pool_size),
            self.params.seed,
            query_salt(query) ^ params.pool_size as u64,
        );
        search_from_context_entries(&self.graph, &self.base, query, params, &self.metric, ctx)
    }

    fn memory_bytes(&self) -> usize {
        // DPG cannot use the fixed-degree layout (its maximum degree is huge),
        // so the paper accounts its memory per actual edge.
        self.graph.memory_bytes_exact()
    }

    fn name(&self) -> &'static str {
        "DPG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_knn::build_exact_knn_graph;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn dpg_reaches_high_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 17);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = DpgIndex::build(Arc::clone(&base), SquaredEuclidean, DpgParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(200))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.85, "DPG precision too low: {p}");
    }

    #[test]
    fn random_pool_initialization_keeps_clustered_self_queries_findable() {
        // Connectivity regression (ROADMAP open item): DPG now uses the same
        // pool-filling salted random initialization as KGraph.
        let (base, _) = base_and_queries(SyntheticKind::EcommerceLike, 1500, 1, 73);
        let base = Arc::new(base);
        let index = DpgIndex::build(Arc::clone(&base), SquaredEuclidean, DpgParams::default());
        let request = SearchRequest::new(1).with_effort(80);
        let mut ctx = index.new_context();
        let mut hits = 0;
        let mut tried = 0;
        for v in (0..base.len()).step_by(100) {
            tried += 1;
            if nsg_core::neighbor::ids(index.search_into(&mut ctx, &request, base.get(v)))
                == vec![v as u32]
            {
                hits += 1;
            }
        }
        assert!(hits >= tried - 2, "only {hits}/{tried} self-queries found on clustered data");
    }

    #[test]
    fn diversified_graph_is_undirected() {
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 600, 1, 3);
        let knn = build_exact_knn_graph(&base, 10, &SquaredEuclidean);
        let g = diversify(&base, &knn);
        for (v, u) in g.edges() {
            assert!(g.neighbors(u).contains(&v), "edge {v}->{u} has no reverse edge");
        }
    }

    #[test]
    fn out_degree_can_exceed_half_k_after_compensation() {
        // The forward pass keeps k/2 edges; reverse compensation pushes hub
        // nodes above that, mirroring the paper's huge DPG MOD numbers.
        let (base, _) = base_and_queries(SyntheticKind::EcommerceLike, 800, 1, 5);
        let knn = build_exact_knn_graph(&base, 16, &SquaredEuclidean);
        let g = diversify(&base, &knn);
        assert!(g.max_out_degree() > 8, "max degree {} unexpectedly small", g.max_out_degree());
        assert!(g.average_out_degree() >= 8.0);
    }

    #[test]
    fn kept_edges_are_a_subset_of_knn_plus_reverse() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 300, 1, 7);
        let knn = build_exact_knn_graph(&base, 8, &SquaredEuclidean);
        let g = diversify(&base, &knn);
        for (v, u) in g.edges() {
            let forward = knn.neighbor_ids(v).any(|x| x == u);
            let reverse = knn.neighbor_ids(u).any(|x| x == v);
            assert!(forward || reverse, "edge {v}->{u} not from the kNN graph");
        }
    }

    #[test]
    fn memory_uses_exact_edge_accounting() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 300, 1, 9);
        let base = Arc::new(base);
        let index = DpgIndex::build(Arc::clone(&base), SquaredEuclidean, DpgParams::default());
        assert_eq!(index.memory_bytes(), index.graph().memory_bytes_exact());
        assert_eq!(index.name(), "DPG");
        assert_eq!(index.search(base.get(0), &SearchRequest::new(1).with_effort(50))[0].id, 0);
    }
}
