//! Efanna baseline: randomized KD-trees supply the entry points of Algorithm 1
//! on a kNN graph.
//!
//! Efanna (Fu & Cai 2016) is a composite index — the kNN graph of KGraph plus
//! a forest of randomized KD-trees that replaces random entry points with
//! data-dependent ones. The paper lists it among the graph baselines with a
//! large index (graph + trees) in Table 2 and Table 3.

use crate::kdtree::{KdForest, KdForestParams};
use nsg_core::context::SearchContext;
use nsg_core::graph::CompactGraph;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::search_from_context_entries;
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use std::sync::Arc;

/// Parameters of the Efanna baseline.
#[derive(Debug, Clone, Copy)]
pub struct EfannaParams {
    /// kNN-graph construction parameters.
    pub knn: NnDescentParams,
    /// KD-tree forest parameters (the entry-point structure).
    pub forest: KdForestParams,
    /// How many KD-tree candidates seed the graph search pool.
    pub num_entry_points: usize,
}

impl Default for EfannaParams {
    fn default() -> Self {
        Self {
            knn: NnDescentParams { k: 40, ..Default::default() },
            forest: KdForestParams { num_trees: 4, ..Default::default() },
            num_entry_points: 8,
        }
    }
}

/// The Efanna index: kNN graph + KD-tree forest.
pub struct EfannaIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    graph: CompactGraph,
    forest: KdForest<D>,
    params: EfannaParams,
}

impl<D: Distance + Sync + Clone> EfannaIndex<D> {
    /// Builds both components over `base`.
    pub fn build(base: Arc<VectorSet>, metric: D, params: EfannaParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::from_knn_graph(base, metric, &knn, params)
    }

    /// Builds only the KD-tree forest, reusing an existing kNN graph.
    pub fn from_knn_graph(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: EfannaParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let adjacency: Vec<Vec<u32>> = (0..knn.len() as u32).map(|v| knn.neighbor_ids(v).collect()).collect();
        let forest = KdForest::build(Arc::clone(&base), metric.clone(), params.forest);
        Self {
            base,
            metric,
            graph: CompactGraph::from_adjacency(adjacency),
            forest,
            params,
        }
    }

    /// The frozen kNN graph component (for Table 2 / Table 4 statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync + Clone> AnnIndex for EfannaIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        // KD-tree descent fills the entry scratch with data-dependent starts.
        let mut entries = std::mem::take(&mut ctx.entries);
        self.forest
            .candidates_into(query, self.params.num_entry_points.max(1), &mut entries);
        if entries.is_empty() && !self.base.is_empty() {
            entries.push(0);
        }
        ctx.entries = entries;
        search_from_context_entries(&self.graph, &self.base, query, request.params(), &self.metric, ctx)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_fixed_degree() + self.forest.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "Efanna"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn efanna_reaches_high_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 13);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = EfannaIndex::build(Arc::clone(&base), SquaredEuclidean, EfannaParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(200))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.85, "Efanna precision too low: {p}");
    }

    #[test]
    fn efanna_index_is_larger_than_kgraph_alone() {
        // Table 2 shows Efanna's composite index exceeds the bare kNN graph.
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 800, 1, 7);
        let base = Arc::new(base);
        let knn = build_nn_descent(&base, NnDescentParams { k: 20, ..Default::default() }, &SquaredEuclidean);
        let efanna = EfannaIndex::from_knn_graph(
            Arc::clone(&base),
            SquaredEuclidean,
            &knn,
            EfannaParams::default(),
        );
        let kgraph_only = efanna.graph().memory_bytes_fixed_degree();
        assert!(efanna.memory_bytes() > kgraph_only);
    }

    #[test]
    fn tree_entry_points_help_compared_to_far_random_entries() {
        // With very small pools, entering near the query should find it.
        let (base, queries) = base_and_queries(SyntheticKind::RandUniform, 1500, 10, 21);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 1, &SquaredEuclidean);
        let index = EfannaIndex::build(Arc::clone(&base), SquaredEuclidean, EfannaParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(1).with_effort(20))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 1);
        assert!(p > 0.5, "Efanna with small pool too weak: {p}");
    }

    #[test]
    fn name_is_reported() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 200, 1, 3);
        let base = Arc::new(base);
        let index = EfannaIndex::build(Arc::clone(&base), SquaredEuclidean, EfannaParams::default());
        assert_eq!(index.name(), "Efanna");
    }
}
