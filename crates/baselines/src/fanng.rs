//! FANNG baseline (Harwood & Drummond, CVPR 2016): RNG-style occlusion
//! pruning over large candidate neighbor lists, searched with Algorithm 1
//! from random entry points.
//!
//! FANNG applies the Relative Neighborhood Graph edge-selection ("occlusion
//! rule") to each node's candidate list — the same rule NSG inherits from the
//! MRNG — but builds its candidates from the kNN lists alone, keeps the graph
//! directed without any connectivity repair, and has no navigating node. The
//! paper attributes FANNG's weaker performance to exactly these differences
//! (missing NN edges and non-monotonic paths, §4.1.3 C.4).

use nsg_core::context::SearchContext;
use nsg_core::graph::CompactGraph;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::mrng::mrng_select;
use nsg_core::neighbor::Neighbor;
use nsg_core::search::search_from_context_entries;
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::sample::query_salt;
use nsg_vectors::VectorSet;
use rayon::prelude::*;
use std::sync::Arc;

/// Parameters of the FANNG baseline.
#[derive(Debug, Clone, Copy)]
pub struct FanngParams {
    /// kNN-graph parameters; the candidate list of a node is its kNN list
    /// extended with its neighbors' neighbors (two-hop candidates), as in the
    /// traverse-add refinement of the original paper.
    pub knn: NnDescentParams,
    /// Maximum out-degree kept after occlusion pruning.
    pub max_degree: usize,
    /// Minimum number of random entry points per query. As with KGraph, the
    /// search draws at least the pool size `l` random entries: FANNG's pruned
    /// graph is directed with no connectivity repair, so sparse random
    /// seeding strands whole regions (Table 4's SCC fragmentation).
    pub num_entry_points: usize,
    /// RNG seed for entry-point selection.
    pub seed: u64,
}

impl Default for FanngParams {
    fn default() -> Self {
        Self {
            knn: NnDescentParams { k: 40, ..Default::default() },
            max_degree: 30,
            num_entry_points: 4,
            seed: 0xFA46,
        }
    }
}

/// The FANNG index.
pub struct FanngIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    graph: CompactGraph,
    params: FanngParams,
}

impl<D: Distance + Sync> FanngIndex<D> {
    /// Builds the kNN graph with NN-Descent and prunes it with the occlusion
    /// rule.
    pub fn build(base: Arc<VectorSet>, metric: D, params: FanngParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::from_knn_graph(base, metric, &knn, params)
    }

    /// Prunes an existing kNN graph into a FANNG.
    pub fn from_knn_graph(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: FanngParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let n = base.len();
        let adjacency: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let vq = base.get(v);
                // Candidates: kNN list plus two-hop neighbors (traverse-add).
                let mut candidate_ids: Vec<u32> = knn.neighbor_ids(v as u32).collect();
                for nb in knn.neighbors(v as u32) {
                    candidate_ids.extend(knn.neighbor_ids(nb.id));
                }
                candidate_ids.sort_unstable();
                candidate_ids.dedup();
                candidate_ids.retain(|&id| id as usize != v);
                let mut candidates: Vec<Neighbor> = candidate_ids
                    .into_iter()
                    .map(|id| Neighbor::new(id, metric.distance(vq, base.get(id as usize))))
                    .collect();
                candidates.sort_unstable_by(Neighbor::ordering);
                mrng_select(&base, vq, &candidates, params.max_degree.max(1), &metric)
            })
            .collect();
        Self {
            base,
            metric,
            graph: CompactGraph::from_adjacency(adjacency),
            params,
        }
    }

    /// The pruned graph, frozen for querying (for Table 2 / Table 4
    /// statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync> AnnIndex for FanngIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.params();
        ctx.fill_random_entries(
            self.base.len(),
            self.params.num_entry_points.max(params.pool_size),
            self.params.seed,
            query_salt(query) ^ params.pool_size as u64,
        );
        search_from_context_entries(&self.graph, &self.base, query, params, &self.metric, ctx)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_fixed_degree()
    }

    fn name(&self) -> &'static str {
        "FANNG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn fanng_reaches_reasonable_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 19);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = FanngIndex::build(Arc::clone(&base), SquaredEuclidean, FanngParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(200))
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.8, "FANNG precision too low: {p}");
    }

    #[test]
    fn random_pool_initialization_reaches_isolated_regions() {
        // Connectivity regression (ROADMAP open item): FANNG's directed graph
        // has no repair step, so on clustered data a handful of fixed random
        // entries can strand whole clusters. The pool-filling initialization
        // must seed at least `l` entries and keep self-queries findable.
        let (base, _) = base_and_queries(SyntheticKind::EcommerceLike, 1500, 1, 71);
        let base = Arc::new(base);
        let index = FanngIndex::build(Arc::clone(&base), SquaredEuclidean, FanngParams::default());
        let request = SearchRequest::new(1).with_effort(80).with_stats();
        let mut ctx = index.new_context();
        let mut hits = 0;
        let mut tried = 0;
        for v in (0..base.len()).step_by(100) {
            tried += 1;
            let found = neighbor::ids(index.search_into(&mut ctx, &request, base.get(v)));
            // The entry scratch survives the search: the pool-filling init
            // must have seeded at least l = 80 entry points (the direct
            // regression signal; `visited` would also count expansions).
            assert!(
                ctx.entries.len() >= 80,
                "pool-filling init seeded only {} entries",
                ctx.entries.len()
            );
            if found == vec![v as u32] {
                hits += 1;
            }
        }
        assert!(hits >= tried - 2, "only {hits}/{tried} self-queries found on clustered data");
    }

    #[test]
    fn pruned_graph_is_much_sparser_than_knn() {
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 1200, 1, 23);
        let base = Arc::new(base);
        let index = FanngIndex::build(Arc::clone(&base), SquaredEuclidean, FanngParams::default());
        assert!(index.graph().max_out_degree() <= 30);
        assert!(index.graph().average_out_degree() < 40.0);
    }

    #[test]
    fn degree_cap_is_respected() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 600, 1, 29);
        let base = Arc::new(base);
        let params = FanngParams { max_degree: 10, ..Default::default() };
        let index = FanngIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        assert!(index.graph().max_out_degree() <= 10);
    }

    #[test]
    fn name_and_memory_are_reported() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 300, 1, 31);
        let base = Arc::new(base);
        let index = FanngIndex::build(Arc::clone(&base), SquaredEuclidean, FanngParams::default());
        assert_eq!(index.name(), "FANNG");
        assert_eq!(index.memory_bytes(), index.graph().memory_bytes_fixed_degree());
        assert_eq!(index.search(base.get(0), &SearchRequest::new(1).with_effort(50))[0].id, 0);
    }
}
