//! HNSW baseline (Malkov & Yashunin): hierarchical navigable small world
//! graphs — the strongest prior graph method in the paper's evaluation.
//!
//! The implementation follows the published algorithm:
//!
//! * every point is assigned a maximum layer drawn from a geometric
//!   distribution with factor `1/ln(M)`,
//! * insertion greedily descends from the top layer to the point's layer,
//!   then at each layer runs an `ef_construction` search, selects up to `M`
//!   neighbors with the RNG-style heuristic (the same occlusion rule the NSG
//!   borrows from the MRNG), and links bidirectionally, shrinking any list
//!   that exceeds its cap with the same heuristic,
//! * search greedily descends the upper layers with a single-entry search and
//!   runs an `ef = SearchQuality::effort` search on the bottom layer.
//!
//! Table 2 of the paper reports only the bottom layer (`HNSW0`) statistics;
//! [`HnswIndex::bottom_layer_graph`] exposes exactly that view, while
//! [`AnnIndex::memory_bytes`] accounts for all layers, which is why the
//! paper's HNSW index is 2–3× larger than the NSG.

use nsg_core::context::SearchContext;
use nsg_core::graph::{CompactGraph, GraphView};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::mrng::mrng_select;
use nsg_core::neighbor::{CandidatePool, Neighbor};
use nsg_core::search::{exact_rerank, SearchStats, VisitedSet};
use nsg_vectors::distance::Distance;
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::store::{QueryScratch, VectorStore};
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of the HNSW baseline.
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Maximum connections per node per upper layer (`M`); the bottom layer
    /// allows `2 * M`.
    pub m: usize,
    /// Candidate pool size used during construction.
    pub ef_construction: usize,
    /// RNG seed for the layer assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 80,
            seed: 0x484E_5357,
        }
    }
}

/// The HNSW index.
///
/// Generic over the traversal [`VectorStore`]: built on `f32` rows,
/// optionally re-frozen onto SQ8 codes with
/// [`quantize_sq8`](Self::quantize_sq8), which puts the greedy upper-layer
/// descent *and* the bottom-layer `ef` search on the quantized kernels;
/// two-phase requests ([`SearchRequest::with_rerank`]) rescore the
/// bottom-layer candidates against the retained rows.
pub struct HnswIndex<D, S: VectorStore = VectorSet> {
    base: Arc<VectorSet>,
    /// The store every search-path distance evaluation reads.
    store: Arc<S>,
    metric: D,
    /// `layers[node][level]` is the neighbor list of `node` at `level`
    /// (level 0 is the bottom layer; a node only has entries up to its own
    /// maximum level). This is the mutable build-time structure; it is
    /// drained once insertion finishes — queries run on
    /// [`frozen`](Self::frozen) instead.
    layers: Vec<Vec<Vec<u32>>>,
    /// Number of levels each node participates in (1 + its assigned maximum
    /// level) — the only per-node layer fact needed after the freeze.
    node_levels: Vec<u32>,
    /// `frozen[level]` is the level's adjacency frozen into the contiguous
    /// CSR layout (every node appears; nodes below the level have degree 0).
    /// Built once when insertion finishes; the greedy descent and the
    /// bottom-layer `ef` search both traverse these.
    frozen: Vec<CompactGraph>,
    entry_point: u32,
    max_level: usize,
    params: HnswParams,
}

/// Build-time adjacency view of one level of the (still mutable) hierarchy,
/// letting the construction searches run through the same [`GraphView`]
/// interface the frozen query path uses.
struct LayerView<'a> {
    layers: &'a [Vec<Vec<u32>>],
    level: usize,
}

impl GraphView for LayerView<'_> {
    fn num_nodes(&self) -> usize {
        self.layers.len()
    }

    fn neighbors(&self, v: u32) -> &[u32] {
        let levels = &self.layers[v as usize];
        if self.level < levels.len() {
            &levels[self.level]
        } else {
            &[]
        }
    }
}

impl<D: Distance + Sync> HnswIndex<D> {
    /// Builds the hierarchy by sequential insertion.
    pub fn build(base: Arc<VectorSet>, metric: D, params: HnswParams) -> Self {
        let n = base.len();
        let m = params.m.max(2);
        let level_factor = 1.0 / (m as f64).ln();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut layers: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n);
        let mut entry_point = 0u32;
        let mut max_level = 0usize;

        let mut index = Self {
            store: Arc::clone(&base),
            base: Arc::clone(&base),
            metric,
            layers: Vec::new(),
            node_levels: Vec::new(),
            frozen: Vec::new(),
            entry_point: 0,
            max_level: 0,
            params: HnswParams { m, ..params },
        };

        for v in 0..n as u32 {
            // Geometric level assignment.
            let draw: f64 = rng.random::<f64>();
            let level = ((-draw.ln()) * level_factor).floor() as usize;
            layers.push(vec![Vec::new(); level + 1]);
            index.layers = std::mem::take(&mut layers);

            if v == 0 {
                entry_point = 0;
                max_level = level;
                index.entry_point = entry_point;
                index.max_level = max_level;
                layers = std::mem::take(&mut index.layers);
                continue;
            }
            index.entry_point = entry_point;
            index.max_level = max_level;

            let query = base.get(v as usize);
            let mut ep = entry_point;
            // Greedy descent through layers above the new node's level.
            let mut lc = max_level;
            while lc > level {
                ep = index.greedy_closest(&index.layer_view(lc), query, ep);
                if lc == 0 {
                    break;
                }
                lc -= 1;
            }
            // Insert at each layer from min(level, max_level) down to 0.
            let top = level.min(max_level);
            for layer in (0..=top).rev() {
                let candidates = index.search_layer(query, &[ep], params.ef_construction.max(m), layer);
                let selected = index.select_neighbors(query, &candidates, m);
                for &u in &selected {
                    index.link(v, u, layer);
                    index.link(u, v, layer);
                    index.shrink(u, layer);
                }
                if let Some(best) = candidates.first() {
                    ep = best.id;
                }
            }
            if level > max_level {
                max_level = level;
                entry_point = v;
            }
            layers = std::mem::take(&mut index.layers);
        }

        index.layers = layers;
        index.entry_point = entry_point;
        index.max_level = max_level;
        // Insertion is over: freeze every level into its CSR form for the
        // query path, straight through the build-time view (level l spans
        // all nodes; absent nodes have degree 0) — no intermediate adjacency
        // clone. Then drop the nested build scratch: keeping it would double
        // the index's resident adjacency for its whole lifetime.
        let frozen: Vec<CompactGraph> = (0..=max_level)
            .map(|level| CompactGraph::from_view(&LayerView { layers: &index.layers, level }))
            .collect();
        index.frozen = frozen;
        index.node_levels = index.layers.iter().map(|levels| levels.len() as u32).collect();
        index.layers = Vec::new();
        index
    }

    /// Re-freezes the search path onto SQ8 scalar-quantized codes (the
    /// hierarchy and retained `f32` rows are untouched).
    pub fn quantize_sq8(self) -> HnswIndex<D, Sq8VectorSet> {
        HnswIndex {
            store: Arc::new(Sq8VectorSet::encode(&self.base)),
            base: self.base,
            metric: self.metric,
            layers: self.layers,
            node_levels: self.node_levels,
            frozen: self.frozen,
            entry_point: self.entry_point,
            max_level: self.max_level,
            params: self.params,
        }
    }

    fn max_degree_at(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn link(&mut self, from: u32, to: u32, layer: usize) {
        if from == to {
            return;
        }
        let list = &mut self.layers[from as usize][layer];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// Re-prunes a node's layer list with the RNG heuristic when it exceeds
    /// the layer's cap.
    fn shrink(&mut self, node: u32, layer: usize) {
        let cap = self.max_degree_at(layer);
        if self.layers[node as usize][layer].len() <= cap {
            return;
        }
        let nq = self.base.get(node as usize);
        let mut candidates: Vec<Neighbor> = self.layers[node as usize][layer]
            .iter()
            .map(|&u| Neighbor::new(u, self.metric.distance(nq, self.base.get(u as usize))))
            .collect();
        candidates.sort_unstable_by(Neighbor::ordering);
        let kept = mrng_select(&self.base, nq, &candidates, cap, &self.metric);
        self.layers[node as usize][layer] = kept;
    }

    /// RNG-style neighbor selection (the "heuristic" of the HNSW paper).
    fn select_neighbors(&self, query: &[f32], candidates: &[Neighbor], m: usize) -> Vec<u32> {
        let mut sorted = candidates.to_vec();
        sorted.sort_unstable_by(Neighbor::ordering);
        mrng_select(&self.base, query, &sorted, m, &self.metric)
    }

    /// Pure greedy descent within one layer (used on the layers above the
    /// target level), generic over the build-time or frozen adjacency.
    fn greedy_closest<G: GraphView + ?Sized>(&self, graph: &G, query: &[f32], start: u32) -> u32 {
        let mut current = start;
        let mut current_dist = self.metric.distance(query, self.base.get(current as usize));
        loop {
            let mut improved = false;
            for &u in graph.neighbors(current) {
                let d = self.metric.distance(query, self.base.get(u as usize));
                if d < current_dist {
                    current_dist = d;
                    current = u;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Build-time adjacency view of one level of the mutable hierarchy.
    fn layer_view(&self, level: usize) -> LayerView<'_> {
        LayerView { layers: &self.layers, level }
    }

    /// Allocating convenience over [`search_layer_scratch`](Self::search_layer_scratch)
    /// used during construction; returns the pool contents sorted ascending.
    fn search_layer(&self, query: &[f32], entries: &[u32], ef: usize, layer: usize) -> Vec<Neighbor> {
        let mut visited = VisitedSet::new(self.base.len());
        let mut pool = CandidatePool::new(ef.max(1));
        let mut stats = SearchStats::default();
        let mut scratch = QueryScratch::new();
        self.store.prepare_query(&self.metric, query, &mut scratch);
        let view = self.layer_view(layer);
        self.search_layer_scratch(&view, &scratch, entries, ef, &mut visited, &mut pool, &mut stats);
        pool.top_k(pool.len())
    }
}

impl<D: Distance + Sync, S: VectorStore> HnswIndex<D, S> {
    /// Best-first search within one layer with an `ef`-sized pool against a
    /// query already prepared into `scratch` (see
    /// [`VectorStore::prepare_query`]), running entirely inside the caller's
    /// buffers (zero allocation once warm).
    #[allow(clippy::too_many_arguments)] // private plumbing shared by query and build paths
    fn search_layer_scratch<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        scratch: &QueryScratch,
        entries: &[u32],
        ef: usize,
        visited: &mut VisitedSet,
        pool: &mut CandidatePool,
        stats: &mut SearchStats,
    ) {
        let store = self.store.as_ref();
        visited.ensure_capacity(store.len());
        visited.next_epoch();
        pool.reset(ef.max(1));
        for &e in entries {
            if (e as usize) < store.len() && visited.insert(e) {
                pool.insert(e, store.dist_to(&self.metric, scratch, e as usize));
                stats.distance_computations += 1;
                stats.visited += 1;
            }
        }
        while let Some(idx) = pool.first_unchecked() {
            let current = pool.mark_checked(idx);
            stats.hops += 1;
            // Same next-candidate vector prefetch as the shared Algorithm 1
            // loop (plus a per-hop re-hint of the prepared-query lines):
            // hide the gather latency of the per-hop reads.
            for u in nsg_vectors::prefetch::lookahead_ids_with_query(
                graph.neighbors(current),
                store,
                scratch.prepared(),
            ) {
                if !visited.insert(u) {
                    continue;
                }
                pool.insert(u, store.dist_to(&self.metric, scratch, u as usize));
                stats.distance_computations += 1;
                stats.visited += 1;
            }
        }
    }

    /// The bottom-layer graph (`HNSW0`), the view Table 2 reports — a
    /// borrow of the frozen level-0 CSR the query path actually traverses.
    pub fn bottom_layer_graph(&self) -> &CompactGraph {
        &self.frozen[0]
    }

    /// The store the search path evaluates distances against.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The search entry point (top-layer node).
    pub fn entry_point(&self) -> u32 {
        self.entry_point
    }

    /// Number of layers in the hierarchy (1 + maximum assigned level).
    pub fn num_layers(&self) -> usize {
        self.max_level + 1
    }

}

impl<D: Distance + Sync, S: VectorStore> AnnIndex for HnswIndex<D, S> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        ctx.results.clear();
        ctx.stats = SearchStats::default();
        if self.base.is_empty() || request.k == 0 {
            return &ctx.results;
        }
        // One query preparation serves the whole descent and the bottom
        // layer (for SQ8 this is where the expanded query form is built).
        let store = self.store.as_ref();
        store.prepare_query(&self.metric, query, &mut ctx.query_scratch);
        // Greedy descent through the upper layers (one distance per examined
        // neighbor, counted into the stats), on the frozen CSR levels.
        let mut ep = self.entry_point;
        let mut lc = self.max_level;
        while lc > 0 {
            let layer = &self.frozen[lc];
            let mut current = ep;
            let mut current_dist = store.dist_to(&self.metric, &ctx.query_scratch, current as usize);
            ctx.stats.distance_computations += 1;
            loop {
                let mut improved = false;
                for &u in layer.neighbors(current) {
                    let d = store.dist_to(&self.metric, &ctx.query_scratch, u as usize);
                    ctx.stats.distance_computations += 1;
                    if d < current_dist {
                        current_dist = d;
                        current = u;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
                ctx.stats.hops += 1;
            }
            ep = current;
            lc -= 1;
        }
        // Bottom-layer `ef` search inside the context scratch, on the frozen
        // level-0 CSR; a two-phase request keeps `r · k` candidates for the
        // exact-rerank pass over the retained rows.
        let keep = request.rerank_candidates();
        let ef = request.quality.effort.max(keep).max(1);
        let (scratch, visited, pool, stats) =
            (&ctx.query_scratch, &mut ctx.visited, &mut ctx.pool, &mut ctx.stats);
        self.search_layer_scratch(&self.frozen[0], scratch, &[ep], ef, visited, pool, stats);
        ctx.pool.top_k_into(keep, &mut ctx.results);
        if request.rerank_factor() > 1 {
            exact_rerank(ctx, &self.base, &self.metric, query, request.k);
        }
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        // All layers use the fixed-degree layout of their cap, as in the
        // released implementation (level 0 gets 2M slots, upper levels M).
        let m = self.params.m;
        self.node_levels
            .iter()
            .map(|&levels| {
                (0..levels as usize)
                    .map(|l| (if l == 0 { 2 * m } else { m } + 1) * 4)
                    .sum::<usize>()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "HNSW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn hnsw_reaches_high_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 53);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(150))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.9, "HNSW precision too low: {p}");
    }

    #[test]
    fn bottom_layer_respects_degree_cap() {
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 1200, 1, 59);
        let base = Arc::new(base);
        let params = HnswParams { m: 8, ..Default::default() };
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        let g0 = index.bottom_layer_graph();
        assert!(g0.max_out_degree() <= 16, "bottom layer degree {} exceeds 2M", g0.max_out_degree());
        assert!(g0.average_out_degree() > 2.0);
    }

    #[test]
    fn hierarchy_has_multiple_layers_on_enough_points() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 2000, 1, 61);
        let base = Arc::new(base);
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        assert!(index.num_layers() >= 2, "expected a hierarchy, got {} layer(s)", index.num_layers());
        // The entry point must live on the top layer.
        assert_eq!(index.node_levels[index.entry_point() as usize] as usize, index.num_layers());
    }

    #[test]
    fn self_queries_are_found() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 800, 1, 67);
        let base = Arc::new(base);
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let request = SearchRequest::new(1).with_effort(50);
        let mut ctx = index.new_context();
        let mut hits = 0;
        for v in (0..base.len()).step_by(80) {
            if nsg_core::neighbor::ids(index.search_into(&mut ctx, &request, base.get(v)))
                == vec![v as u32]
            {
                hits += 1;
            }
        }
        assert!(hits >= 9, "only {hits}/10 self-queries found");
    }

    #[test]
    fn memory_exceeds_bottom_layer_alone() {
        // Table 2's point: the full hierarchy costs more than the bottom layer.
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 1000, 1, 71);
        let base = Arc::new(base);
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let g0 = index.bottom_layer_graph();
        assert!(index.memory_bytes() >= g0.memory_bytes_fixed_degree() / 2);
        assert_eq!(index.name(), "HNSW");
    }

    #[test]
    fn quantized_hnsw_with_rerank_matches_flat_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 20, 91);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let flat = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let request = SearchRequest::new(10).with_effort(150);
        let flat_results: Vec<Vec<u32>> = flat
            .search_batch(&queries, &request)
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let flat_p = mean_precision(&flat_results, &gt, 10);

        let quantized = flat.quantize_sq8();
        assert!(quantized.num_layers() >= 1);
        let results: Vec<Vec<u32>>= quantized
            .search_batch(&queries, &request.with_rerank(4))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p >= flat_p * 0.99, "quantized HNSW precision {p} below 99% of flat {flat_p}");
        // The whole search path (descent + bottom layer) runs on the store,
        // and the rerank reports exact distances.
        let hit = quantized.search(base.get(9), &request.with_rerank(2));
        assert_eq!(hit[0].id, 9);
        assert_eq!(hit[0].dist, 0.0);
    }

    #[test]
    fn tiny_inputs_build_and_search() {
        let base = Arc::new(nsg_vectors::synthetic::uniform(4, 6, 1));
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let res = index.search(base.get(1), &SearchRequest::new(2).with_effort(10));
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, 1);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn stats_count_descent_and_bottom_layer_work() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 1500, 1, 83);
        let base = Arc::new(base);
        let index = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
        let res = index.search_with_stats(base.get(7), &SearchRequest::new(5).with_effort(60));
        assert_eq!(res.neighbors[0].id, 7);
        assert!(res.stats.distance_computations >= res.stats.visited);
        assert!(res.stats.visited >= 60, "ef-sized pool must visit at least ef nodes");
        assert!(
            res.stats.distance_computations < base.len() as u64,
            "HNSW search should touch far fewer points than a scan"
        );
    }
}
