//! IVF-PQ: inverted-file index with product quantization (the Faiss-IVFPQ
//! baseline of Figures 7 and 8 and of the e-commerce comparison in Table 5).
//!
//! * A coarse k-means quantizer partitions the base vectors into `nlist`
//!   inverted lists.
//! * Each vector's **residual** to its coarse centroid is product-quantized:
//!   the dimension is split into `m` sub-spaces, each with its own 256-entry
//!   (or smaller) codebook trained by k-means, and a vector is stored as `m`
//!   one-byte codes.
//! * A query probes the `nprobe` closest lists (the `SearchQuality` effort)
//!   and scores every stored code with asymmetric distance computation (ADC):
//!   per-subspace lookup tables of query-to-codeword distances are built once
//!   per probed list and each candidate costs `m` table lookups.
//!
//! Optionally the best ADC candidates can be re-ranked with exact distances,
//! which is how such systems reach the very high precision region; the
//! default (no re-ranking) matches the Faiss configuration the paper compares
//! against, whose precision saturates below the graph methods' — exactly the
//! behaviour Figure 7 shows.

use crate::kmeans::{KMeans, KMeansParams};
use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::SearchStats;
use nsg_vectors::distance::{squared_l2, Distance};
use nsg_vectors::VectorSet;
use std::sync::Arc;

/// Parameters of the IVF-PQ index.
#[derive(Debug, Clone, Copy)]
pub struct IvfPqParams {
    /// Number of inverted lists (coarse centroids).
    pub nlist: usize,
    /// Number of PQ sub-quantizers; must divide the dimension or the tail
    /// sub-space is simply shorter.
    pub num_subquantizers: usize,
    /// Codewords per sub-quantizer (≤ 256 so codes fit in one byte).
    pub codebook_size: usize,
    /// Number of ADC candidates re-ranked with exact distances; 0 disables
    /// re-ranking (Faiss-like default).
    pub rerank: usize,
    /// Training iterations / seed shared by every k-means involved.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IvfPqParams {
    fn default() -> Self {
        Self {
            nlist: 64,
            num_subquantizers: 8,
            codebook_size: 64,
            rerank: 0,
            kmeans_iters: 12,
            seed: 0x1F09,
        }
    }
}

/// One entry of an inverted list: the vector id and its PQ code.
#[derive(Debug, Clone)]
struct PostedVector {
    id: u32,
    code: Vec<u8>,
}

/// The IVF-PQ index.
pub struct IvfPq<D> {
    base: Arc<VectorSet>,
    metric: D,
    coarse: KMeans,
    /// Per-subspace codebooks over residuals; `codebooks[s]` has
    /// `codebook_size` centroids of the sub-space dimension.
    codebooks: Vec<KMeans>,
    /// Sub-space boundaries: `splits[s]..splits[s+1]` of the full dimension.
    splits: Vec<usize>,
    lists: Vec<Vec<PostedVector>>,
    params: IvfPqParams,
}

fn subspace_splits(dim: usize, m: usize) -> Vec<usize> {
    let m = m.clamp(1, dim);
    let step = dim.div_ceil(m);
    let mut splits = vec![0usize];
    let mut at = 0;
    while at < dim {
        at = (at + step).min(dim);
        splits.push(at);
    }
    splits
}

impl<D: Distance> IvfPq<D> {
    /// Trains the coarse quantizer and the PQ codebooks on `base`, then
    /// encodes every base vector into its inverted list.
    pub fn build(base: Arc<VectorSet>, metric: D, params: IvfPqParams) -> Self {
        let dim = base.dim();
        let nlist = params.nlist.clamp(1, base.len().max(1));
        let coarse = KMeans::train(
            &base,
            KMeansParams {
                k: nlist,
                max_iters: params.kmeans_iters,
                seed: params.seed,
                ..Default::default()
            },
        );
        let splits = subspace_splits(dim, params.num_subquantizers);
        let num_sub = splits.len() - 1;

        // Residuals of every vector to its coarse centroid.
        let assignments: Vec<usize> = (0..base.len()).map(|i| coarse.assign(base.get(i))).collect();
        let mut residuals = VectorSet::with_capacity(dim, base.len());
        for (i, &cell) in assignments.iter().enumerate() {
            let c = coarse.centroids().get(cell);
            let r: Vec<f32> = base.get(i).iter().zip(c).map(|(x, y)| x - y).collect();
            residuals.push(&r);
        }

        // Train one codebook per sub-space of the residuals.
        let codebook_size = params.codebook_size.clamp(1, 256);
        let mut codebooks = Vec::with_capacity(num_sub);
        for s in 0..num_sub {
            let lo = splits[s];
            let hi = splits[s + 1];
            let mut sub = VectorSet::with_capacity(hi - lo, residuals.len());
            for r in residuals.iter() {
                sub.push(&r[lo..hi]);
            }
            codebooks.push(KMeans::train(
                &sub,
                KMeansParams {
                    k: codebook_size,
                    max_iters: params.kmeans_iters,
                    seed: params.seed.wrapping_add(1 + s as u64),
                    ..Default::default()
                },
            ));
        }

        // Encode and post every vector.
        let mut lists: Vec<Vec<PostedVector>> = vec![Vec::new(); coarse.k()];
        for i in 0..base.len() {
            let r = residuals.get(i);
            let code: Vec<u8> = (0..num_sub)
                .map(|s| codebooks[s].assign(&r[splits[s]..splits[s + 1]]) as u8)
                .collect();
            lists[assignments[i]].push(PostedVector { id: i as u32, code });
        }

        Self {
            base,
            metric,
            coarse,
            codebooks,
            splits,
            lists,
            params: IvfPqParams { nlist, codebook_size, ..params },
        }
    }

    /// Approximate (ADC) top candidates from the `nprobe` closest lists,
    /// together with the number of "distance computations" performed (coarse
    /// centroid distances plus per-candidate ADC evaluations), which is the
    /// cost measure of Figure 8.
    pub fn adc_candidates(&self, query: &[f32], k: usize, nprobe: usize) -> (Vec<Neighbor>, SearchStats) {
        let nprobe = nprobe.clamp(1, self.coarse.k().max(1));
        // Coarse assignment scores every centroid (not a base node, so it
        // counts toward the cost but not toward `visited`).
        let mut cost = self.coarse.k() as u64;
        let mut scanned = 0u64;
        let probes = self.coarse.assign_top(query, nprobe);
        let mut scored: Vec<Neighbor> = Vec::new();
        let num_sub = self.codebooks.len();
        // Per-list lookup tables of the query residual against every codeword
        // of every sub-space, in the flat row-major layout the shared ADC
        // kernel (`nsg_vectors::quant::adc_accumulate`) consumes: `width`
        // entries per sub-space, one contiguous `f32` block per probed list.
        let width = self.params.codebook_size;
        let mut tables: Vec<f32> = Vec::with_capacity(num_sub * width);
        // Resolve the ADC kernel once for the whole probe sweep (one table
        // read), not per posted vector: on AVX2 this is the 8-wide gather
        // kernel when `width >= 256`.
        let adc = nsg_vectors::simd::kernels().adc_accumulate;
        for list_id in probes {
            let centroid = self.coarse.centroids().get(list_id);
            let residual: Vec<f32> = query.iter().zip(centroid).map(|(x, y)| x - y).collect();
            tables.clear();
            for s in 0..num_sub {
                let lo = self.splits[s];
                let hi = self.splits[s + 1];
                let cb = self.codebooks[s].centroids();
                tables.extend((0..width).map(|c| {
                    if c < cb.len() {
                        squared_l2(&residual[lo..hi], cb.get(c))
                    } else {
                        // Padding for codebooks k-means shrank below the
                        // configured size; no stored code references them.
                        f32::INFINITY
                    }
                }));
            }
            for posted in &self.lists[list_id] {
                let d = adc(&tables, width, &posted.code);
                cost += 1;
                scanned += 1;
                scored.push(Neighbor::new(posted.id, d));
            }
        }
        scored.sort_unstable_by(Neighbor::ordering);
        scored.truncate(k.max(self.params.rerank));
        let stats = SearchStats {
            distance_computations: cost,
            hops: 0,
            visited: scanned,
        };
        (scored, stats)
    }

    /// Full search returning scored neighbors (ADC distances, or exact ones
    /// when re-ranking is enabled) and the search cost:
    /// `stats.distance_computations` is the Figure 8 cost measure (coarse +
    /// ADC + re-rank evaluations), `stats.visited` the number of distinct
    /// base vectors whose (approximate) distance was evaluated.
    pub fn search_counted(&self, query: &[f32], k: usize, nprobe: usize) -> (Vec<Neighbor>, SearchStats) {
        let (mut candidates, mut stats) = self.adc_candidates(query, k, nprobe);
        if self.params.rerank > 0 {
            for cand in candidates.iter_mut() {
                cand.dist = self.metric.distance(query, self.base.get(cand.id as usize));
                stats.distance_computations += 1;
            }
            candidates.sort_unstable_by(Neighbor::ordering);
        }
        candidates.truncate(k);
        (candidates, stats)
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }
}

impl<D: Distance> AnnIndex for IvfPq<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::new()
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let (neighbors, stats) = self.search_counted(query, request.k, request.quality.effort);
        ctx.results.clear();
        ctx.results.extend(neighbors);
        ctx.stats = stats;
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        let codes: usize = self.lists.iter().map(|l| l.iter().map(|p| p.code.len() + 4).sum::<usize>()).sum();
        let centroids = self.coarse.centroids().memory_bytes()
            + self.codebooks.iter().map(|c| c.centroids().memory_bytes()).sum::<usize>();
        codes + centroids
    }

    fn name(&self) -> &'static str {
        "Faiss-IVFPQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    fn batch_ids(index: &impl AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
        index.search_batch(queries, request).iter().map(|r| neighbor::ids(r)).collect()
    }

    fn test_index(n: usize, rerank: usize) -> (Arc<VectorSet>, VectorSet, IvfPq<SquaredEuclidean>) {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, n, 20, 7);
        let base = Arc::new(base);
        let params = IvfPqParams {
            nlist: 32,
            num_subquantizers: 8,
            codebook_size: 32,
            rerank,
            ..Default::default()
        };
        let index = IvfPq::build(Arc::clone(&base), SquaredEuclidean, params);
        (base, queries, index)
    }

    #[test]
    fn precision_improves_with_more_probes() {
        let (base, queries, index) = test_index(2000, 0);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let few = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(1));
        let many = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(16));
        let p_few = mean_precision(&few, &gt, 10);
        let p_many = mean_precision(&many, &gt, 10);
        assert!(p_many >= p_few, "precision fell with more probes: {p_few} -> {p_many}");
        assert!(p_many > 0.5, "IVFPQ precision too low at 16 probes: {p_many}");
    }

    #[test]
    fn reranking_raises_precision_over_adc_only() {
        let (base, queries, adc_only) = test_index(2000, 0);
        let (_, _, reranked) = test_index(2000, 100);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let a = batch_ids(&adc_only, &queries, &SearchRequest::new(10).with_effort(32));
        let b = batch_ids(&reranked, &queries, &SearchRequest::new(10).with_effort(32));
        assert!(mean_precision(&b, &gt, 10) >= mean_precision(&a, &gt, 10));
    }

    #[test]
    fn probing_every_list_with_reranking_is_nearly_exact() {
        let (base, queries, index) = test_index(1200, 400);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let results = batch_ids(&index, &queries, &SearchRequest::new(5).with_effort(index.nlist()));
        let p = mean_precision(&results, &gt, 5);
        assert!(p > 0.9, "full-probe reranked IVFPQ should be nearly exact, got {p}");
    }

    #[test]
    fn distance_count_grows_with_probes() {
        let (base, _, index) = test_index(1500, 0);
        let (_, s1) = index.search_counted(base.get(0), 10, 1);
        let (_, s8) = index.search_counted(base.get(0), 10, 8);
        assert!(s8.distance_computations > s1.distance_computations);
        assert!(s8.visited > s1.visited);
        // Probing every list scores every stored code once; `visited` counts
        // exactly the scanned base vectors, while the full cost also charges
        // the coarse-centroid table.
        let (_, sall) = index.search_counted(base.get(0), 10, index.nlist());
        assert_eq!(sall.visited, base.len() as u64);
        assert!(sall.distance_computations >= sall.visited + index.nlist() as u64);
    }

    #[test]
    fn code_layout_and_memory_are_consistent() {
        let (base, _, index) = test_index(800, 0);
        let per_vector_code = index.codebooks.len();
        assert!(index.memory_bytes() >= base.len() * per_vector_code);
        assert_eq!(index.name(), "Faiss-IVFPQ");
        // Every base vector is posted exactly once.
        let posted: usize = index.lists.iter().map(Vec::len).sum();
        assert_eq!(posted, base.len());
    }

    #[test]
    fn subspace_splits_cover_the_dimension() {
        assert_eq!(subspace_splits(128, 8), vec![0, 16, 32, 48, 64, 80, 96, 112, 128]);
        assert_eq!(subspace_splits(10, 3), vec![0, 4, 8, 10]);
        assert_eq!(subspace_splits(4, 8), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_base_builds_and_searches() {
        let base = Arc::new(nsg_vectors::synthetic::uniform(5, 8, 1));
        let index = IvfPq::build(Arc::clone(&base), SquaredEuclidean, IvfPqParams::default());
        let res = index.search(base.get(2), &SearchRequest::new(3).with_effort(64));
        assert_eq!(res.len(), 3);
    }
}
