//! Randomized KD-tree forest (FLANN-style), the tree-based baseline of the
//! paper ("Flann" in Figure 8, and the entry-point structure of Efanna).
//!
//! Each tree recursively splits the data at the median of a dimension chosen
//! at random among the few highest-variance dimensions, which is the
//! randomized KD-tree construction of Silpa-Anan & Hartley used by FLANN.
//! A query descends all trees with a shared best-first queue of unexplored
//! branches and stops after checking a caller-controlled number of points
//! (the `SearchQuality` effort), exactly the "checks" knob of FLANN.

use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Parameters of the randomized KD-tree forest.
#[derive(Debug, Clone, Copy)]
pub struct KdForestParams {
    /// Number of trees (FLANN's default range is 4–8).
    pub num_trees: usize,
    /// Maximum number of points per leaf.
    pub leaf_size: usize,
    /// How many of the top-variance dimensions the split dimension is drawn
    /// from (FLANN uses 5).
    pub split_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KdForestParams {
    fn default() -> Self {
        Self {
            num_trees: 4,
            leaf_size: 16,
            split_candidates: 5,
            seed: 0x7EE5,
        }
    }
}

/// A node of one randomized KD-tree, stored in an arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        points: Vec<u32>,
    },
    Internal {
        dim: usize,
        threshold: f32,
        left: u32,
        right: u32,
    },
}

/// One randomized KD-tree.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
    root: u32,
}

/// A forest of randomized KD-trees over a base set.
pub struct KdForest<D> {
    base: Arc<VectorSet>,
    metric: D,
    trees: Vec<Tree>,
    params: KdForestParams,
}

fn variance_per_dim(base: &VectorSet, ids: &[u32]) -> Vec<f64> {
    let dim = base.dim();
    let mut mean = vec![0.0f64; dim];
    for &id in ids {
        for (m, &x) in mean.iter_mut().zip(base.get(id as usize)) {
            *m += f64::from(x);
        }
    }
    let n = ids.len().max(1) as f64;
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; dim];
    for &id in ids {
        for ((v, &x), m) in var.iter_mut().zip(base.get(id as usize)).zip(&mean) {
            let d = f64::from(x) - m;
            *v += d * d;
        }
    }
    var
}

fn build_tree(base: &VectorSet, params: KdForestParams, seed: u64) -> Tree {
    let mut nodes = Vec::new();
    let ids: Vec<u32> = (0..base.len() as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let root = build_node(base, ids, params, &mut rng, &mut nodes);
    Tree { nodes, root }
}

fn build_node(
    base: &VectorSet,
    mut ids: Vec<u32>,
    params: KdForestParams,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> u32 {
    if ids.len() <= params.leaf_size.max(1) {
        nodes.push(Node::Leaf { points: ids });
        return (nodes.len() - 1) as u32;
    }
    // Pick the split dimension at random among the highest-variance dims.
    let var = variance_per_dim(base, &ids);
    let mut dims: Vec<usize> = (0..base.dim()).collect();
    dims.sort_unstable_by(|&a, &b| var[b].total_cmp(&var[a]));
    let top = params.split_candidates.clamp(1, dims.len());
    let dim = dims[rng.random_range(0..top)];

    // Median split on that dimension.
    ids.sort_unstable_by(|&a, &b| {
        base.get(a as usize)[dim].total_cmp(&base.get(b as usize)[dim])
    });
    let mid = ids.len() / 2;
    let threshold = base.get(ids[mid] as usize)[dim];
    let right_ids = ids.split_off(mid);
    let left_ids = ids;
    if left_ids.is_empty() || right_ids.is_empty() {
        // Degenerate split (all values equal): stop recursing.
        let mut all = left_ids;
        all.extend(right_ids);
        nodes.push(Node::Leaf { points: all });
        return (nodes.len() - 1) as u32;
    }
    let left = build_node(base, left_ids, params, rng, nodes);
    let right = build_node(base, right_ids, params, rng, nodes);
    nodes.push(Node::Internal { dim, threshold, left, right });
    (nodes.len() - 1) as u32
}

/// Priority-queue entry for best-first branch exploration, ordered by the
/// lower bound of the distance from the query to the branch's half-space.
#[derive(PartialEq)]
struct Branch {
    bound: f32,
    tree: usize,
    node: u32,
}

impl Eq for Branch {}
impl PartialOrd for Branch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Branch {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound.total_cmp(&other.bound).then(self.node.cmp(&other.node))
    }
}

impl<D: Distance> KdForest<D> {
    /// Builds the forest over `base`.
    pub fn build(base: Arc<VectorSet>, metric: D, params: KdForestParams) -> Self {
        let trees = (0..params.num_trees.max(1))
            .map(|t| build_tree(&base, params, params.seed.wrapping_add(t as u64)))
            .collect();
        Self { base, metric, trees, params }
    }

    /// Greedy descent of one tree collecting unexplored sibling branches.
    fn descend(
        &self,
        tree_idx: usize,
        query: &[f32],
        heap: &mut BinaryHeap<Reverse<Branch>>,
        out: &mut Vec<u32>,
        start_node: u32,
    ) {
        let tree = &self.trees[tree_idx];
        let mut node = start_node;
        loop {
            match &tree.nodes[node as usize] {
                Node::Leaf { points } => {
                    out.extend_from_slice(points);
                    return;
                }
                Node::Internal { dim, threshold, left, right } => {
                    let diff = query[*dim] - threshold;
                    let (near, far) = if diff < 0.0 { (*left, *right) } else { (*right, *left) };
                    heap.push(Reverse(Branch {
                        bound: diff * diff,
                        tree: tree_idx,
                        node: far,
                    }));
                    node = near;
                }
            }
        }
    }

    /// Returns the candidate ids visited while checking roughly
    /// `max_checks` points across the forest (FLANN's "checks" parameter).
    pub fn candidates(&self, query: &[f32], max_checks: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(max_checks.max(16));
        self.candidates_into(query, max_checks, &mut out);
        out
    }

    /// [`candidates`](Self::candidates) into a caller-provided buffer, so a
    /// reused [`SearchContext`] entry scratch avoids a per-query candidate
    /// allocation (the branch queue itself remains per-call).
    pub fn candidates_into(&self, query: &[f32], max_checks: usize, out: &mut Vec<u32>) {
        out.clear();
        let mut heap: BinaryHeap<Reverse<Branch>> = BinaryHeap::new();
        for t in 0..self.trees.len() {
            self.descend(t, query, &mut heap, out, self.trees[t].root);
            if out.len() >= max_checks {
                break;
            }
        }
        while out.len() < max_checks {
            let Some(Reverse(branch)) = heap.pop() else { break };
            self.descend(branch.tree, query, &mut heap, out, branch.node);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// The forest parameters.
    pub fn params(&self) -> &KdForestParams {
        &self.params
    }
}

impl<D: Distance> AnnIndex for KdForest<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::new()
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let checks = request.quality.effort.max(request.k);
        let mut entries = std::mem::take(&mut ctx.entries);
        self.candidates_into(query, checks, &mut entries);
        ctx.entries = entries;
        ctx.rerank_entries(&self.base, &self.metric, query, request.k);
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.nodes.len() * std::mem::size_of::<Node>()
                + t.nodes
                    .iter()
                    .map(|n| match n {
                        Node::Leaf { points } => points.len() * 4,
                        Node::Internal { .. } => 0,
                    })
                    .sum::<usize>())
            .sum()
    }

    fn name(&self) -> &'static str {
        "Flann-KD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::uniform;

    fn batch_ids(index: &impl AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
        index.search_batch(queries, request).iter().map(|r| neighbor::ids(r)).collect()
    }

    #[test]
    fn full_checks_recover_exact_neighbors() {
        let base = Arc::new(uniform(500, 8, 3));
        let queries = uniform(20, 8, 4);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        let results = batch_ids(&forest, &queries, &SearchRequest::new(5).with_effort(500));
        assert_eq!(mean_precision(&results, &gt, 5), 1.0);
    }

    #[test]
    fn more_checks_do_not_hurt_precision() {
        let base = Arc::new(uniform(2000, 16, 7));
        let queries = uniform(30, 16, 8);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        let few = batch_ids(&forest, &queries, &SearchRequest::new(10).with_effort(50));
        let many = batch_ids(&forest, &queries, &SearchRequest::new(10).with_effort(1000));
        let p_few = mean_precision(&few, &gt, 10);
        let p_many = mean_precision(&many, &gt, 10);
        assert!(p_many >= p_few);
        assert!(p_many > 0.8, "precision with 1000 checks too low: {p_many}");
    }

    #[test]
    fn candidate_count_tracks_effort() {
        let base = Arc::new(uniform(3000, 8, 9));
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        let small = forest.candidates(base.get(0), 32);
        let large = forest.candidates(base.get(0), 512);
        assert!(small.len() <= large.len());
        assert!(large.len() >= 256, "large candidate set unexpectedly small: {}", large.len());
    }

    #[test]
    fn duplicate_coordinates_build_without_infinite_recursion() {
        // All points identical: the degenerate-split guard must terminate.
        let base = Arc::new(VectorSet::from_rows(3, &[[1.0, 1.0, 1.0]; 64]));
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        let res = forest.search(&[1.0, 1.0, 1.0], &SearchRequest::new(3).with_effort(64));
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn tiny_base_is_handled() {
        let base = Arc::new(uniform(3, 4, 1));
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        let res = forest.search(base.get(1), &SearchRequest::new(5).with_effort(10));
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, 1);
        assert_eq!(res[0].dist, 0.0);
    }
}
