//! KGraph / GNNS baseline: Algorithm 1 run directly on the (approximate) kNN
//! graph with random entry points.
//!
//! This is the simplest graph baseline of the paper (Tables 2–4, Figure 6).
//! Its index is just the kNN graph, so its out-degree equals the graph's `k`
//! — which is why the paper reports KGraph's optimal degree in the hundreds
//! and a correspondingly large index.

use nsg_core::context::SearchContext;
use nsg_core::graph::CompactGraph;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::{exact_rerank, search_from_context_entries};
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::sample::query_salt;
use nsg_vectors::store::VectorStore;
use nsg_vectors::VectorSet;
use std::sync::Arc;

/// Parameters of the KGraph baseline.
#[derive(Debug, Clone, Copy)]
pub struct KGraphParams {
    /// kNN-graph construction parameters (the graph's `k` is its out-degree).
    pub knn: NnDescentParams,
    /// Minimum number of random entry points seeded into the pool per query.
    /// The search always draws at least the pool size `l`: a directed kNN
    /// graph has regions with no incoming edges from outside (poor
    /// connectivity is exactly the weakness Table 4 of the paper documents),
    /// so a handful of fixed entries can leave whole clusters unreachable.
    /// Filling the initial pool with random points is what the released
    /// KGraph/Efanna searches do, and is why Figure 8 charges KGraph a large
    /// distance-computation budget per query.
    pub num_entry_points: usize,
    /// RNG seed for entry-point selection.
    pub seed: u64,
}

impl Default for KGraphParams {
    fn default() -> Self {
        Self {
            knn: NnDescentParams { k: 40, ..Default::default() },
            num_entry_points: 4,
            seed: 0x4B47,
        }
    }
}

/// The KGraph index: a kNN graph (frozen into the contiguous CSR layout)
/// plus the base vectors.
///
/// Generic over the traversal [`VectorStore`] like [`NsgIndex`](nsg_core::nsg::NsgIndex):
/// built on `f32` rows, optionally re-frozen onto SQ8 codes with
/// [`quantize_sq8`](Self::quantize_sq8); two-phase requests
/// ([`SearchRequest::with_rerank`]) rescore against the retained rows.
pub struct KGraphIndex<D, S: VectorStore = VectorSet> {
    base: Arc<VectorSet>,
    store: Arc<S>,
    metric: D,
    graph: CompactGraph,
    params: KGraphParams,
}

impl<D: Distance + Sync> KGraphIndex<D> {
    /// Builds the kNN graph with NN-Descent and wraps it for searching.
    pub fn build(base: Arc<VectorSet>, metric: D, params: KGraphParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::from_knn_graph(base, metric, &knn, params)
    }

    /// Wraps an existing kNN graph (shared with Efanna / DPG experiments so
    /// the substrate is built once).
    pub fn from_knn_graph(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: KGraphParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let adjacency: Vec<Vec<u32>> = (0..knn.len() as u32).map(|v| knn.neighbor_ids(v).collect()).collect();
        Self {
            store: Arc::clone(&base),
            base,
            metric,
            graph: CompactGraph::from_adjacency(adjacency),
            params,
        }
    }

    /// Re-freezes the traversal onto SQ8 scalar-quantized codes (the kNN
    /// graph and retained `f32` rows are untouched).
    pub fn quantize_sq8(self) -> KGraphIndex<D, Sq8VectorSet> {
        KGraphIndex {
            store: Arc::new(Sq8VectorSet::encode(&self.base)),
            base: self.base,
            metric: self.metric,
            graph: self.graph,
            params: self.params,
        }
    }
}

impl<D: Distance + Sync, S: VectorStore> KGraphIndex<D, S> {
    /// The underlying frozen graph (for Table 2 / Table 4 statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync, S: VectorStore> AnnIndex for KGraphIndex<D, S> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.traversal_params();
        // Pool-filling random initialization (deterministic per query content).
        ctx.fill_random_entries(
            self.base.len(),
            self.params.num_entry_points.max(params.pool_size),
            self.params.seed,
            query_salt(query) ^ params.pool_size as u64,
        );
        search_from_context_entries(&self.graph, self.store.as_ref(), query, params, &self.metric, ctx);
        if request.rerank_factor() > 1 {
            exact_rerank(ctx, &self.base, &self.metric, query, request.k);
        }
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_fixed_degree()
    }

    fn name(&self) -> &'static str {
        "KGraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn kgraph_reaches_high_precision_with_large_pool() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 11);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(200))
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.85, "KGraph precision too low: {p}");
    }

    #[test]
    fn graph_out_degree_equals_knn_k() {
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 1500, 1, 3);
        let base = Arc::new(base);
        let params = KGraphParams {
            knn: NnDescentParams { k: 20, ..Default::default() },
            ..Default::default()
        };
        let index = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        assert_eq!(index.graph().max_out_degree(), 20);
        assert!(index.graph().average_out_degree() > 15.0);
    }

    #[test]
    fn self_queries_are_found() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 1200, 1, 5);
        let base = Arc::new(base);
        let index = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default());
        let request = SearchRequest::new(1).with_effort(60);
        let mut ctx = index.new_context();
        let mut hits = 0;
        for v in (0..base.len()).step_by(100) {
            if neighbor::ids(index.search_into(&mut ctx, &request, base.get(v))) == vec![v as u32] {
                hits += 1;
            }
        }
        assert!(hits >= 10, "only {hits}/12 self-queries found");
    }

    #[test]
    fn quantized_kgraph_with_rerank_matches_flat_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 20, 31);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let flat = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default());
        let request = SearchRequest::new(10).with_effort(200);
        let flat_results: Vec<Vec<u32>> = flat
            .search_batch(&queries, &request)
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let flat_p = mean_precision(&flat_results, &gt, 10);

        let quantized = flat.quantize_sq8();
        let results: Vec<Vec<u32>> = quantized
            .search_batch(&queries, &request.with_rerank(4))
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p >= flat_p * 0.99, "quantized KGraph precision {p} below 99% of flat {flat_p}");
    }

    #[test]
    fn memory_model_uses_fixed_degree_layout() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 400, 1, 5);
        let base = Arc::new(base);
        let index = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default());
        assert_eq!(
            index.memory_bytes(),
            index.graph().memory_bytes_fixed_degree()
        );
        assert_eq!(index.name(), "KGraph");
    }
}
