//! Lloyd's k-means with k-means++ initialization.
//!
//! Shared substrate of the quantization-based baseline (IVF-PQ): the coarse
//! quantizer and every product-quantizer codebook are trained with this
//! routine, mirroring how Faiss trains its IVFPQ indices.

use nsg_vectors::distance::{squared_l2, SquaredEuclidean, Distance};
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the k-means training loop.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of centroids.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop early when the relative improvement of the quantization error
    /// drops below this threshold.
    pub tolerance: f64,
    /// RNG seed of the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 20,
            tolerance: 1e-4,
            seed: 0xC1A0,
        }
    }
}

/// A trained codebook: `k` centroids of the training data's dimension.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: VectorSet,
}

impl KMeans {
    /// Trains a codebook on `data` (k-means++ init, Lloyd iterations).
    ///
    /// `k` is clamped to the number of training points; training on an empty
    /// set yields an empty codebook.
    pub fn train(data: &VectorSet, params: KMeansParams) -> Self {
        let n = data.len();
        let k = params.k.min(n).max(usize::from(n > 0));
        if n == 0 || k == 0 {
            return Self {
                centroids: VectorSet::new(data.dim().max(1)),
            };
        }
        let dim = data.dim();
        let mut rng = StdRng::seed_from_u64(params.seed);

        // k-means++ seeding.
        let mut centroids = VectorSet::with_capacity(dim, k);
        let first = rng.random_range(0..n);
        centroids.push(data.get(first));
        let mut min_dist: Vec<f32> = (0..n)
            .map(|i| squared_l2(data.get(i), centroids.get(0)))
            .collect();
        while centroids.len() < k {
            let total: f64 = min_dist.iter().map(|&d| f64::from(d)).sum();
            let next = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &d) in min_dist.iter().enumerate() {
                    target -= f64::from(d);
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.push(data.get(next));
            let new_c = centroids.len() - 1;
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d = squared_l2(data.get(i), centroids.get(new_c));
                if d < *md {
                    *md = d;
                }
            }
        }

        // Lloyd iterations.
        let mut assignment: Vec<usize> = vec![0; n];
        let mut prev_error = f64::INFINITY;
        for _ in 0..params.max_iters {
            // Assignment step (parallel).
            let scored: Vec<(usize, f32)> = (0..n)
                .into_par_iter()
                .map(|i| {
                    let v = data.get(i);
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for c in 0..centroids.len() {
                        let d = squared_l2(v, centroids.get(c));
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    (best, best_d)
                })
                .collect();
            let error: f64 = scored.iter().map(|&(_, d)| f64::from(d)).sum();
            for (i, &(c, _)) in scored.iter().enumerate() {
                assignment[i] = c;
            }

            // Update step.
            let mut sums = vec![vec![0.0f64; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(data.get(i)) {
                    *s += f64::from(x);
                }
            }
            let mut new_centroids = VectorSet::with_capacity(dim, centroids.len());
            for c in 0..centroids.len() {
                if counts[c] == 0 {
                    // Re-seed an empty cluster with a random point.
                    new_centroids.push(data.get(rng.random_range(0..n)));
                } else {
                    let row: Vec<f32> = sums[c].iter().map(|&s| (s / counts[c] as f64) as f32).collect();
                    new_centroids.push(&row);
                }
            }
            centroids = new_centroids;

            if prev_error.is_finite() {
                let improvement = (prev_error - error) / prev_error.max(1e-12);
                if improvement.abs() < params.tolerance {
                    break;
                }
            }
            prev_error = error;
        }

        Self { centroids }
    }

    /// The trained centroids.
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the centroid closest to `v`.
    pub fn assign(&self, v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for c in 0..self.centroids.len() {
            let d = squared_l2(v, self.centroids.get(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Indices of the `m` centroids closest to `v`, best first (used by IVF to
    /// pick the probed lists).
    pub fn assign_top(&self, v: &[f32], m: usize) -> Vec<usize> {
        let mut scored: Vec<(usize, f32)> = (0..self.centroids.len())
            .map(|c| (c, squared_l2(v, self.centroids.get(c))))
            .collect();
        scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(m);
        scored.into_iter().map(|(c, _)| c).collect()
    }

    /// Mean quantization error of `data` under this codebook.
    pub fn quantization_error(&self, data: &VectorSet) -> f64 {
        if data.is_empty() || self.centroids.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..data.len())
            .map(|i| {
                let v = data.get(i);
                f64::from(SquaredEuclidean.distance(v, self.centroids.get(self.assign(v))))
            })
            .sum();
        total / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::synthetic::{gaussian, uniform};

    #[test]
    fn recovers_well_separated_clusters() {
        // Two clusters far apart on a line.
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push([0.0 + (i % 5) as f32 * 0.01, 0.0]);
            rows.push([100.0 + (i % 5) as f32 * 0.01, 0.0]);
        }
        let data = VectorSet::from_rows(2, &rows);
        let km = KMeans::train(&data, KMeansParams { k: 2, ..Default::default() });
        assert_eq!(km.k(), 2);
        let c0 = km.centroids().get(0)[0];
        let c1 = km.centroids().get(1)[0];
        let (lo, hi) = if c0 < c1 { (c0, c1) } else { (c1, c0) };
        assert!(lo < 5.0 && hi > 95.0, "centroids {lo} {hi} did not separate the clusters");
        assert_ne!(km.assign(&[0.0, 0.0]), km.assign(&[100.0, 0.0]));
    }

    #[test]
    fn k_is_clamped_to_data_size() {
        let data = uniform(5, 4, 1);
        let km = KMeans::train(&data, KMeansParams { k: 50, ..Default::default() });
        assert_eq!(km.k(), 5);
    }

    #[test]
    fn empty_training_set_yields_empty_codebook() {
        let data = VectorSet::new(8);
        let km = KMeans::train(&data, KMeansParams::default());
        assert_eq!(km.k(), 0);
        assert_eq!(km.quantization_error(&data), 0.0);
    }

    #[test]
    fn more_centroids_reduce_quantization_error() {
        let data = gaussian(600, 8, 0.0, 1.0, 7);
        let small = KMeans::train(&data, KMeansParams { k: 4, seed: 1, ..Default::default() });
        let large = KMeans::train(&data, KMeansParams { k: 64, seed: 1, ..Default::default() });
        assert!(large.quantization_error(&data) < small.quantization_error(&data));
    }

    #[test]
    fn assign_top_orders_by_distance() {
        let data = uniform(200, 6, 9);
        let km = KMeans::train(&data, KMeansParams { k: 10, ..Default::default() });
        let q = data.get(0);
        let top = km.assign_top(q, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], km.assign(q));
        let d: Vec<f32> = top.iter().map(|&c| squared_l2(q, km.centroids().get(c))).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let data = uniform(300, 4, 11);
        let a = KMeans::train(&data, KMeansParams { k: 8, seed: 42, ..Default::default() });
        let b = KMeans::train(&data, KMeansParams { k: 8, seed: 42, ..Default::default() });
        assert_eq!(a.centroids(), b.centroids());
    }
}
