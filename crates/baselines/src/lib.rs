//! Baseline ANNS algorithms used in the paper's evaluation.
//!
//! One module per compared method, every index implementing
//! [`nsg_core::index::AnnIndex`] so the evaluation harness can sweep them
//! uniformly:
//!
//! | Module | Paper name | Family |
//! |--------|------------|--------|
//! | [`serial`] | Serial Scan | exact |
//! | [`kdtree`] | Flann (randomized KD-trees) | tree |
//! | [`lsh`] | FALCONN (multi-probe LSH) | hashing |
//! | [`kmeans`] + [`ivfpq`] | Faiss (IVFPQ) | quantization |
//! | [`kgraph`] | KGraph | graph (kNN graph) |
//! | [`efanna`] | Efanna | graph + trees |
//! | [`nsw`] | NSW | graph (small world) |
//! | [`hnsw`] | HNSW | graph (hierarchical) |
//! | [`fanng`] | FANNG | graph (RNG pruning) |
//! | [`dpg`] | DPG | graph (angle diversification) |
//! | [`nsg_naive`] | NSG-Naive | ablation of the NSG |

pub mod dpg;
pub mod efanna;
pub mod fanng;
pub mod hnsw;
pub mod ivfpq;
pub mod kdtree;
pub mod kgraph;
pub mod kmeans;
pub mod lsh;
pub mod nsg_naive;
pub mod nsw;
pub mod serial;

pub use dpg::{DpgIndex, DpgParams};
pub use efanna::{EfannaIndex, EfannaParams};
pub use fanng::{FanngIndex, FanngParams};
pub use hnsw::{HnswIndex, HnswParams};
pub use ivfpq::{IvfPq, IvfPqParams};
pub use kdtree::{KdForest, KdForestParams};
pub use kgraph::{KGraphIndex, KGraphParams};
pub use kmeans::{KMeans, KMeansParams};
pub use lsh::{LshIndex, LshParams};
pub use nsg_naive::{NsgNaiveIndex, NsgNaiveParams};
pub use nsw::{NswIndex, NswParams};
pub use serial::SerialScan;
