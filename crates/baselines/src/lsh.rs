//! Multi-probe random-hyperplane LSH (FALCONN-style), the hashing-based
//! baseline of Figure 8.
//!
//! Each of `num_tables` hash tables assigns a `num_bits`-bit signature to every
//! vector: bit `i` is the sign of the dot product with a random hyperplane.
//! At query time the query's bucket is probed first, then buckets whose keys
//! differ in a growing number of bits (multi-probe), until the caller's
//! candidate budget (`SearchQuality::effort`) is exhausted; candidates are
//! re-ranked with exact distances.

use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of the LSH index.
#[derive(Debug, Clone, Copy)]
pub struct LshParams {
    /// Number of independent hash tables.
    pub num_tables: usize,
    /// Bits (hyperplanes) per table; buckets per table is `2^num_bits`.
    pub num_bits: usize,
    /// RNG seed for the hyperplanes.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        Self {
            num_tables: 8,
            num_bits: 12,
            seed: 0x15A5,
        }
    }
}

/// One hash table: its hyperplanes and its bucket map.
struct HashTable {
    /// `num_bits` hyperplanes, each of the data dimension.
    hyperplanes: Vec<Vec<f32>>,
    buckets: HashMap<u32, Vec<u32>>,
}

impl HashTable {
    fn key(&self, v: &[f32]) -> u32 {
        let mut key = 0u32;
        for (bit, plane) in self.hyperplanes.iter().enumerate() {
            if nsg_vectors::distance::dot(v, plane) >= 0.0 {
                key |= 1 << bit;
            }
        }
        key
    }
}

/// Multi-probe hyperplane LSH index.
pub struct LshIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    tables: Vec<HashTable>,
    params: LshParams,
}

/// Draws a standard-normal sample via Box–Muller (keeps the crate free of an
/// extra distribution dependency).
fn normal(rng: &mut StdRng) -> f32 {
    use rand::Rng;
    loop {
        let u1: f32 = rng.random::<f32>();
        if u1 <= f32::EPSILON {
            continue;
        }
        let u2: f32 = rng.random::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

impl<D: Distance> LshIndex<D> {
    /// Builds the hash tables over `base`.
    ///
    /// Hyperplanes are centered on the dataset mean so that sign bits split
    /// the data roughly evenly even when components are non-negative (as in
    /// the SIFT-like datasets).
    pub fn build(base: Arc<VectorSet>, metric: D, params: LshParams) -> Self {
        let dim = base.dim();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let centroid = base.centroid();
        let num_bits = params.num_bits.clamp(1, 24);
        let tables = (0..params.num_tables.max(1))
            .map(|_| {
                let hyperplanes: Vec<Vec<f32>> = (0..num_bits)
                    .map(|_| (0..dim).map(|_| normal(&mut rng)).collect())
                    .collect();
                let mut table = HashTable {
                    hyperplanes,
                    buckets: HashMap::new(),
                };
                for (i, v) in base.iter().enumerate() {
                    let shifted: Vec<f32> = v.iter().zip(&centroid).map(|(x, c)| x - c).collect();
                    let key = table.key(&shifted);
                    table.buckets.entry(key).or_default().push(i as u32);
                }
                table
            })
            .collect();
        // Store the centroid inside the hyperplanes by translating each plane's
        // offset into the key function: we keep it simple by re-centering at
        // query time instead, so remember the centroid via a pseudo table? No —
        // store it in params-free field below.
        Self {
            base,
            metric,
            tables,
            params: LshParams { num_bits, ..params },
        }
    }

    fn centered(&self, v: &[f32]) -> Vec<f32> {
        let centroid = self.base.centroid();
        v.iter().zip(&centroid).map(|(x, c)| x - c).collect()
    }

    /// Collects candidate ids by probing buckets in increasing Hamming
    /// distance from the query's bucket until `max_candidates` candidates are
    /// gathered (or probes are exhausted).
    pub fn candidates(&self, query: &[f32], max_candidates: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(max_candidates);
        self.candidates_into(query, max_candidates, &mut out);
        out
    }

    /// [`candidates`](Self::candidates) into a caller-provided buffer, so a
    /// reused [`SearchContext`] entry scratch avoids the per-query candidate
    /// allocation (the centering scratch remains per-call).
    pub fn candidates_into(&self, query: &[f32], max_candidates: usize, out: &mut Vec<u32>) {
        out.clear();
        let centered = self.centered(query);
        // Probe sequence: exact bucket, then all 1-bit flips, then 2-bit flips.
        for radius in 0..=2u32 {
            for table in &self.tables {
                let key = table.key(&centered);
                match radius {
                    0 => {
                        if let Some(bucket) = table.buckets.get(&key) {
                            out.extend_from_slice(bucket);
                        }
                    }
                    1 => {
                        for bit in 0..self.params.num_bits {
                            if let Some(bucket) = table.buckets.get(&(key ^ (1 << bit))) {
                                out.extend_from_slice(bucket);
                            }
                            if out.len() >= max_candidates {
                                break;
                            }
                        }
                    }
                    _ => {
                        'outer: for b1 in 0..self.params.num_bits {
                            for b2 in (b1 + 1)..self.params.num_bits {
                                if let Some(bucket) = table.buckets.get(&(key ^ (1 << b1) ^ (1 << b2))) {
                                    out.extend_from_slice(bucket);
                                }
                                if out.len() >= max_candidates {
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
                if out.len() >= max_candidates {
                    break;
                }
            }
            if out.len() >= max_candidates {
                break;
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl<D: Distance> AnnIndex for LshIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::new()
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let budget = request.quality.effort.max(request.k);
        let mut entries = std::mem::take(&mut ctx.entries);
        self.candidates_into(query, budget, &mut entries);
        ctx.entries = entries;
        ctx.rerank_entries(&self.base, &self.metric, query, request.k);
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.hyperplanes.iter().map(|h| h.len() * 4).sum::<usize>()
                    + t.buckets.values().map(|b| b.len() * 4 + 8).sum::<usize>()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "FALCONN-LSH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    fn batch_ids(index: &impl AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
        index.search_batch(queries, request).iter().map(|r| neighbor::ids(r)).collect()
    }

    #[test]
    fn lsh_beats_random_guessing_and_improves_with_effort() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 3);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        let low = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(50));
        let high = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(1500));
        let p_low = mean_precision(&low, &gt, 10);
        let p_high = mean_precision(&high, &gt, 10);
        assert!(p_high >= p_low, "precision fell with more probes: {p_low} -> {p_high}");
        assert!(p_high > 0.5, "LSH precision too low even with many candidates: {p_high}");
    }

    #[test]
    fn candidate_budget_is_respected_roughly() {
        let (base, _) = base_and_queries(SyntheticKind::SiftLike, 1000, 1, 5);
        let base = Arc::new(base);
        let index = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        let few = index.candidates(base.get(0), 20);
        assert!(!few.is_empty());
        let many = index.candidates(base.get(0), 800);
        assert!(many.len() >= few.len());
    }

    #[test]
    fn query_on_base_vector_finds_itself_with_enough_probes() {
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 800, 1, 9);
        let base = Arc::new(base);
        let index = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        let request = SearchRequest::new(1).with_effort(400);
        let mut ctx = index.new_context();
        let mut hits = 0;
        for v in (0..base.len()).step_by(80) {
            let res = index.search_into(&mut ctx, &request, base.get(v));
            if neighbor::ids(res) == vec![v as u32] {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 self-queries found");
    }

    #[test]
    fn tiny_base_is_handled() {
        let base = Arc::new(nsg_vectors::synthetic::uniform(4, 8, 1));
        let index = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        let res = index.search(base.get(0), &SearchRequest::new(10).with_effort(100));
        assert!(!res.is_empty());
        assert_eq!(res[0].id, 0);
    }

    #[test]
    fn reports_name_and_memory() {
        let base = Arc::new(nsg_vectors::synthetic::uniform(50, 8, 1));
        let index = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        assert_eq!(index.name(), "FALCONN-LSH");
        assert!(index.memory_bytes() > 0);
    }
}
