//! NSG-Naive ablation baseline (§4.1.2 item 7 of the paper).
//!
//! NSG-Naive applies the MRNG edge-selection strategy **directly to the kNN
//! lists** — no navigating node, no search-collect candidate generation, no
//! connectivity repair — and searches with random initialization. The paper
//! uses it to demonstrate that the search-collect-select step and the
//! connectivity guarantee are what make the NSG a good MRNG approximation.

use nsg_core::context::SearchContext;
use nsg_core::graph::CompactGraph;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::mrng::mrng_select;
use nsg_core::neighbor::Neighbor;
use nsg_core::search::search_from_context_entries;
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::sample::query_salt;
use nsg_vectors::VectorSet;
use rayon::prelude::*;
use std::sync::Arc;

/// Parameters of the NSG-Naive ablation.
#[derive(Debug, Clone, Copy)]
pub struct NsgNaiveParams {
    /// kNN-graph parameters (candidates are exactly these lists).
    pub knn: NnDescentParams,
    /// Maximum out-degree after pruning.
    pub max_degree: usize,
    /// Minimum number of random entry points per query (no navigating node
    /// exists). As with KGraph, the search draws at least the pool size `l`
    /// random entries: the naively pruned graph has no connectivity repair,
    /// so sparse random seeding strands whole regions.
    pub num_entry_points: usize,
    /// RNG seed for entry-point selection.
    pub seed: u64,
}

impl Default for NsgNaiveParams {
    fn default() -> Self {
        Self {
            knn: NnDescentParams { k: 40, ..Default::default() },
            max_degree: 30,
            num_entry_points: 4,
            seed: 0x9A1F,
        }
    }
}

/// The NSG-Naive index.
pub struct NsgNaiveIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    graph: CompactGraph,
    params: NsgNaiveParams,
}

impl<D: Distance + Sync> NsgNaiveIndex<D> {
    /// Builds the kNN graph and prunes each list with the MRNG rule.
    pub fn build(base: Arc<VectorSet>, metric: D, params: NsgNaiveParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::from_knn_graph(base, metric, &knn, params)
    }

    /// Prunes an existing kNN graph.
    pub fn from_knn_graph(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: NsgNaiveParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let n = base.len();
        let adjacency: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let candidates: Vec<Neighbor> =
                    knn.neighbors(v as u32).iter().map(|nb| Neighbor::new(nb.id, nb.dist)).collect();
                mrng_select(&base, base.get(v), &candidates, params.max_degree.max(1), &metric)
            })
            .collect();
        Self {
            base,
            metric,
            graph: CompactGraph::from_adjacency(adjacency),
            params,
        }
    }

    /// The pruned graph, frozen for querying (for the ablation's statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync> AnnIndex for NsgNaiveIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.params();
        ctx.fill_random_entries(
            self.base.len(),
            self.params.num_entry_points.max(params.pool_size),
            self.params.seed,
            query_salt(query) ^ params.pool_size as u64,
        );
        search_from_context_entries(&self.graph, &self.base, query, params, &self.metric, ctx)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_fixed_degree()
    }

    fn name(&self) -> &'static str {
        "NSG-Naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    fn batch_ids(index: &impl AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
        index.search_batch(queries, request).iter().map(|r| neighbor::ids(r)).collect()
    }

    #[test]
    fn naive_pruning_searches_reasonably_but_below_full_nsg() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 20, 37);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);

        let naive = NsgNaiveIndex::build(Arc::clone(&base), SquaredEuclidean, NsgNaiveParams::default());
        let request = SearchRequest::new(10).with_effort(150);
        let naive_results = batch_ids(&naive, &queries, &request);
        let p_naive = mean_precision(&naive_results, &gt, 10);

        let nsg = nsg_core::nsg::NsgIndex::build(
            Arc::clone(&base),
            SquaredEuclidean,
            nsg_core::nsg::NsgParams {
                max_degree: 30,
                knn: NnDescentParams { k: 40, ..Default::default() },
                ..Default::default()
            },
        );
        let nsg_results = batch_ids(&nsg, &queries, &request);
        let p_nsg = mean_precision(&nsg_results, &gt, 10);

        assert!(p_naive > 0.6, "NSG-Naive precision unexpectedly low: {p_naive}");
        assert!(
            p_nsg + 1e-9 >= p_naive,
            "full NSG ({p_nsg}) should not lose to the naive ablation ({p_naive})"
        );
    }

    #[test]
    fn pruned_lists_are_subsets_of_the_knn_lists() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 500, 1, 41);
        let knn = nsg_knn::build_exact_knn_graph(&base, 12, &SquaredEuclidean);
        let base = Arc::new(base);
        let index = NsgNaiveIndex::from_knn_graph(
            Arc::clone(&base),
            SquaredEuclidean,
            &knn,
            NsgNaiveParams::default(),
        );
        for v in 0..base.len() as u32 {
            for &u in index.graph().neighbors(v) {
                assert!(knn.neighbor_ids(v).any(|x| x == u));
            }
        }
    }

    #[test]
    fn degree_cap_is_respected() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 500, 1, 43);
        let base = Arc::new(base);
        let params = NsgNaiveParams { max_degree: 8, ..Default::default() };
        let index = NsgNaiveIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        assert!(index.graph().max_out_degree() <= 8);
        assert_eq!(index.name(), "NSG-Naive");
    }
}
