//! NSW baseline (Malkov et al. 2014): incremental navigable-small-world graph.
//!
//! Points are inserted one at a time; each new point is connected
//! bidirectionally to the `m` nearest points found by a greedy search of the
//! graph built so far. Long-range links arise naturally because early
//! insertions connect points that are far apart in the final dataset. The
//! paper discusses NSW as the predecessor of HNSW whose degree grows too
//! large and whose connectivity is fragile — behaviour reproduced here.

use nsg_core::context::SearchContext;
use nsg_core::graph::{CompactGraph, DirectedGraph};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::{search_from_context_entries, search_on_graph, SearchParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::sample::query_salt;
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of the NSW baseline.
#[derive(Debug, Clone, Copy)]
pub struct NswParams {
    /// Number of bidirectional links created per inserted point.
    pub m: usize,
    /// Candidate pool size of the insertion-time search.
    pub ef_construction: usize,
    /// Minimum number of random entry points per query. As with KGraph, the
    /// search draws at least the pool size `l` random entries (the original
    /// NSW runs multiple restarts for the same reason: single-entry greedy
    /// search on a small world gets stuck in local minima).
    pub num_entry_points: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 60,
            num_entry_points: 4,
            seed: 0x4E57,
        }
    }
}

/// The NSW index: a single-layer undirected small-world graph, frozen into
/// the contiguous CSR layout once insertion finishes.
pub struct NswIndex<D> {
    base: Arc<VectorSet>,
    metric: D,
    graph: CompactGraph,
    params: NswParams,
}

impl<D: Distance + Sync> NswIndex<D> {
    /// Builds the graph by sequential insertion.
    pub fn build(base: Arc<VectorSet>, metric: D, params: NswParams) -> Self {
        let n = base.len();
        let mut graph = DirectedGraph::new(n);
        let mut rng = StdRng::seed_from_u64(params.seed);
        // Insert in a random order so early long-range links are not biased by
        // the generator's cluster ordering.
        let mut order: Vec<u32> = (0..n as u32).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);

        let mut inserted: Vec<u32> = Vec::with_capacity(n);
        for &v in &order {
            if inserted.is_empty() {
                inserted.push(v);
                continue;
            }
            // Search the partially built graph for the nearest already-inserted
            // points; the graph only contains inserted nodes, so restricting
            // the start node to one of them keeps the search inside them.
            let start = inserted[rng.random_range(0..inserted.len())];
            let result = search_on_graph(
                &graph,
                &base,
                base.get(v as usize),
                &[start],
                SearchParams::new(params.ef_construction.max(params.m), params.m.max(1)), // lint:allow(params-construction): NSW insertion search, effort fixed by ef_construction
                &metric,
            );
            for nb in result.neighbors.iter().take(params.m.max(1)) {
                graph.add_edge(v, nb.id);
                graph.add_edge(nb.id, v);
            }
            inserted.push(v);
        }
        // Insertions are over: freeze for the query path.
        Self { base, metric, graph: graph.freeze(), params }
    }

    /// The frozen small-world graph (for Table 2 / Table 4 statistics).
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }
}

impl<D: Distance + Sync> AnnIndex for NswIndex<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.params();
        ctx.fill_random_entries(
            self.base.len(),
            self.params.num_entry_points.max(params.pool_size),
            self.params.seed ^ 0xABCD,
            query_salt(query) ^ params.pool_size as u64,
        );
        search_from_context_entries(&self.graph, &self.base, query, params, &self.metric, ctx)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_exact()
    }

    fn name(&self) -> &'static str {
        "NSW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

    #[test]
    fn nsw_reaches_reasonable_precision() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 20, 47);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = NswIndex::build(Arc::clone(&base), SquaredEuclidean, NswParams::default());
        let results: Vec<Vec<u32>> = index
            .search_batch(&queries, &SearchRequest::new(10).with_effort(200))
            .iter()
            .map(|r| nsg_core::neighbor::ids(r))
            .collect();
        let p = mean_precision(&results, &gt, 10);
        assert!(p > 0.8, "NSW precision too low: {p}");
    }

    #[test]
    fn random_pool_initialization_keeps_clustered_self_queries_findable() {
        // Connectivity regression (ROADMAP open item): NSW now uses the same
        // pool-filling salted random initialization as KGraph, standing in
        // for the original algorithm's multi-restart searches.
        let (base, _) = base_and_queries(SyntheticKind::EcommerceLike, 1200, 1, 77);
        let base = Arc::new(base);
        let index = NswIndex::build(Arc::clone(&base), SquaredEuclidean, NswParams::default());
        let request = SearchRequest::new(1).with_effort(80);
        let mut ctx = index.new_context();
        let mut hits = 0;
        let mut tried = 0;
        for v in (0..base.len()).step_by(80) {
            tried += 1;
            if nsg_core::neighbor::ids(index.search_into(&mut ctx, &request, base.get(v)))
                == vec![v as u32]
            {
                hits += 1;
            }
        }
        assert!(hits >= tried - 2, "only {hits}/{tried} self-queries found on clustered data");
    }

    #[test]
    fn graph_is_undirected_by_construction() {
        let (base, _) = base_and_queries(SyntheticKind::RandUniform, 400, 1, 49);
        let base = Arc::new(base);
        let index = NswIndex::build(Arc::clone(&base), SquaredEuclidean, NswParams::default());
        for (v, u) in index.graph().edges() {
            assert!(index.graph().neighbors(u).contains(&v));
        }
    }

    #[test]
    fn average_degree_exceeds_m_due_to_reverse_links() {
        // Every insertion adds m out-edges plus reverse edges on its targets,
        // so hubs accumulate degree well beyond m — the degree-growth problem
        // the paper attributes to NSW.
        let (base, _) = base_and_queries(SyntheticKind::DeepLike, 800, 1, 51);
        let base = Arc::new(base);
        let params = NswParams { m: 8, ..Default::default() };
        let index = NswIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        assert!(index.graph().average_out_degree() > 8.0);
        assert!(index.graph().max_out_degree() > 16);
    }

    #[test]
    fn tiny_inputs_build_and_search() {
        let base = Arc::new(nsg_vectors::synthetic::uniform(3, 4, 1));
        let index = NswIndex::build(Arc::clone(&base), SquaredEuclidean, NswParams::default());
        let res = index.search(base.get(0), &SearchRequest::new(2).with_effort(10));
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, 0);
        assert_eq!(index.name(), "NSW");
    }
}
