//! Serial scan baseline (exact search by scanning the base data).

use nsg_core::index::{AnnIndex, SearchQuality};
use nsg_vectors::distance::Distance;
use nsg_vectors::ground_truth::exact_knn_single;
use nsg_vectors::VectorSet;

/// The "Serial Scan" baseline of Figure 6 / Table 5: an exact linear scan.
///
/// Its accuracy is always 1.0 and its cost is one distance computation per
/// base vector, which is the yardstick the paper uses when it reports that NSG
/// is "tens of times faster than the serial scan at 99% precision".
pub struct SerialScan<D> {
    base: VectorSet,
    metric: D,
}

impl<D: Distance> SerialScan<D> {
    /// Stores the base set; there is nothing to build.
    pub fn new(base: VectorSet, metric: D) -> Self {
        Self { base, metric }
    }

    /// The base set being scanned.
    pub fn base(&self) -> &VectorSet {
        &self.base
    }
}

impl<D: Distance> AnnIndex for SerialScan<D> {
    fn search(&self, query: &[f32], k: usize, _quality: SearchQuality) -> Vec<u32> {
        exact_knn_single(&self.base, query, k, &self.metric).0
    }

    fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "Serial-Scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;

    #[test]
    fn serial_scan_is_exact() {
        let base = uniform(100, 8, 1);
        let queries = uniform(10, 8, 2);
        let gt = nsg_vectors::ground_truth::exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let index = SerialScan::new(base, SquaredEuclidean);
        for q in 0..queries.len() {
            let got = index.search(queries.get(q), 5, SearchQuality::default());
            assert_eq!(got, gt.neighbors[q]);
        }
    }

    #[test]
    fn reports_memory_and_name() {
        let base = uniform(10, 4, 1);
        let index = SerialScan::new(base, SquaredEuclidean);
        assert_eq!(index.memory_bytes(), 10 * 4 * 4);
        assert_eq!(index.name(), "Serial-Scan");
    }
}
