//! Serial scan baseline (exact search by scanning the base data).

use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_core::search::SearchStats;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;

/// The "Serial Scan" baseline of Figure 6 / Table 5: an exact linear scan.
///
/// Its accuracy is always 1.0 and its cost is one distance computation per
/// base vector, which is the yardstick the paper uses when it reports that NSG
/// is "tens of times faster than the serial scan at 99% precision".
pub struct SerialScan<D> {
    base: VectorSet,
    metric: D,
}

impl<D: Distance> SerialScan<D> {
    /// Stores the base set; there is nothing to build.
    pub fn new(base: VectorSet, metric: D) -> Self {
        Self { base, metric }
    }

    /// The base set being scanned.
    pub fn base(&self) -> &VectorSet {
        &self.base
    }
}

impl<D: Distance> AnnIndex for SerialScan<D> {
    fn new_context(&self) -> SearchContext {
        SearchContext::new()
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let n = self.base.len();
        ctx.results.clear();
        ctx.stats = SearchStats::default();
        if n == 0 || request.k == 0 {
            return &ctx.results;
        }
        ctx.stats = SearchStats {
            distance_computations: n as u64,
            hops: 0,
            visited: n as u64,
        };
        // A bounded pool of the best k seen so far (same tie-breaking as the
        // ground-truth scan: ascending distance, then id).
        ctx.pool.reset(request.k.min(n));
        for (i, v) in self.base.iter().enumerate() {
            ctx.pool.insert(i as u32, self.metric.distance(query, v));
        }
        ctx.pool.top_k_into(request.k, &mut ctx.results);
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "Serial-Scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;

    #[test]
    fn serial_scan_is_exact() {
        let base = uniform(100, 8, 1);
        let queries = uniform(10, 8, 2);
        let gt = nsg_vectors::ground_truth::exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let index = SerialScan::new(base, SquaredEuclidean);
        let mut ctx = index.new_context();
        for q in 0..queries.len() {
            let got = index.search_into(&mut ctx, &SearchRequest::new(5), queries.get(q));
            assert_eq!(neighbor::ids(got), gt.neighbors[q]);
            let dists: Vec<f32> = got.iter().map(|nb| nb.dist).collect();
            assert_eq!(dists, gt.distances[q], "distances must match the ground truth");
            assert_eq!(ctx.stats().distance_computations, 100);
        }
    }

    #[test]
    fn reports_memory_and_name() {
        let base = uniform(10, 4, 1);
        let index = SerialScan::new(base, SquaredEuclidean);
        assert_eq!(index.memory_bytes(), 10 * 4 * 4);
        assert_eq!(index.name(), "Serial-Scan");
    }
}
