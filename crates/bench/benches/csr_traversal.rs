//! Nested-`Vec` versus frozen CSR adjacency under the Algorithm 1 hot loop.
//!
//! Both sides run the *same* generic `search_on_graph_into` over the *same*
//! NSG edges on the *same* reused context — the only difference is the memory
//! layout of the neighbor lists: per-node heap `Vec`s (a pointer chase per
//! hop) versus the one contiguous arena `CompactGraph` freezes into (plus
//! the next-candidate vector prefetch both paths share). The delta is the
//! tentpole claim of the frozen-graph refactor: flat adjacency is never
//! slower, and typically faster, than the nested build-time layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsg_bench::common::output_dir;
use nsg_core::context::SearchContext;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::search::{search_on_graph_into, SearchParams};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_layouts(c: &mut Criterion) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 3000, 16, 77);
    let base = Arc::new(base);
    let nsg = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 60,
            max_degree: 30,
            knn: NnDescentParams { k: 40, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        },
    );
    let frozen = nsg.graph();
    let nested = frozen.to_directed();
    let nav = nsg.navigating_node();

    let mut group = c.benchmark_group("csr_traversal");
    for &pool in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::new("nested_vec", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(
                    search_on_graph_into(
                        &nested,
                        &base,
                        queries.get(qi),
                        &[nav],
                        SearchParams::new(pool, 10),
                        &SquaredEuclidean,
                        &mut ctx,
                    )
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("csr", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(
                    search_on_graph_into(
                        frozen,
                        &base,
                        queries.get(qi),
                        &[nav],
                        SearchParams::new(pool, 10),
                        &SquaredEuclidean,
                        &mut ctx,
                    )
                    .len(),
                )
            })
        });
    }
    group.finish();

    // Registry-snapshot emission: a short measured pass over the same two
    // layouts publishes per-query latencies into the global `nsg-obs`
    // registry — which already holds the `nsg_build_*` phase counters the
    // index build above published — and the whole registry is written as
    // `BENCH_csr_traversal.json`.
    let obs = nsg_obs::global();
    let mut ctx = SearchContext::for_points(base.len());
    for (name, hist) in [
        ("csr_traversal_nested_vec", obs.histogram("csr_traversal_nested_vec")),
        ("csr_traversal_csr", obs.histogram("csr_traversal_csr")),
    ] {
        let dc = obs.counter(&format!("{name}_distance_computations"));
        for qi in 0..queries.len() {
            let started = std::time::Instant::now();
            let params = SearchParams::new(100, 10);
            let found = if name == "csr_traversal_csr" {
                search_on_graph_into(
                    frozen,
                    &base,
                    queries.get(qi),
                    &[nav],
                    params,
                    &SquaredEuclidean,
                    &mut ctx,
                )
                .len()
            } else {
                search_on_graph_into(
                    &nested,
                    &base,
                    queries.get(qi),
                    &[nav],
                    params,
                    &SquaredEuclidean,
                    &mut ctx,
                )
                .len()
            };
            hist.record(started.elapsed());
            dc.add(ctx.stats.distance_computations);
            black_box(found);
        }
    }
    obs.gauge("csr_traversal_nodes").set(base.len() as f64);
    let path = output_dir().join("BENCH_csr_traversal.json");
    if let Err(e) = std::fs::write(&path, obs.snapshot_json()) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_layouts
}
criterion_main!(benches);
