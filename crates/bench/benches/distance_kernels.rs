//! Micro-benchmarks of the distance kernels — the innermost loop of every
//! search in the workspace (the paper notes most search time is spent on
//! distance calculations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsg_vectors::distance::{dot, squared_l2};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for &dim in &[96usize, 128, 960] {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32).cos()).collect();
        group.bench_with_input(BenchmarkId::new("squared_l2", dim), &dim, |bench, _| {
            bench.iter(|| squared_l2(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
