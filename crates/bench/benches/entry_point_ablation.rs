//! Ablation bench: searching the NSG from its navigating node (the medoid)
//! versus from random entry points — §4.1.3 B.3 of the paper reports that
//! replacing the navigating node does not improve and sometimes hurts.

use criterion::{criterion_group, criterion_main, Criterion};
use nsg_core::context::SearchContext;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::search::{search_on_graph_into, SearchParams};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_entry(c: &mut Criterion) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 3000, 16, 31);
    let base = Arc::new(base);
    let nsg = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 60,
            max_degree: 30,
            knn: NnDescentParams { k: 40, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        },
    );
    let params = SearchParams::new(100, 10);
    let random_entries: Vec<u32> = (0..4u32).map(|i| (i * 733) % base.len() as u32).collect();

    let mut group = c.benchmark_group("entry_point_ablation");
    group.bench_function("navigating_node", |bench| {
        let mut ctx = SearchContext::for_points(base.len());
        let mut qi = 0;
        bench.iter(|| {
            qi = (qi + 1) % queries.len();
            black_box(search_on_graph_into(
                nsg.graph(),
                &base,
                queries.get(qi),
                &[nsg.navigating_node()],
                params,
                &SquaredEuclidean,
                &mut ctx,
            )
            .len())
        })
    });
    group.bench_function("random_entries", |bench| {
        let mut ctx = SearchContext::for_points(base.len());
        let mut qi = 0;
        bench.iter(|| {
            qi = (qi + 1) % queries.len();
            black_box(search_on_graph_into(
                nsg.graph(),
                &base,
                queries.get(qi),
                &random_entries,
                params,
                &SquaredEuclidean,
                &mut ctx,
            )
            .len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_entry
}
criterion_main!(benches);
