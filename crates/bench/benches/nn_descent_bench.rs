//! Benchmarks of the kNN-graph substrates: NN-Descent versus the brute-force
//! exact builder at increasing sizes (the n^1.14-ish versus n^2 contrast of
//! §3.5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsg_knn::{build_exact_knn_graph, build_nn_descent, NnDescentParams};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_graph_build");
    for &n in &[1000usize, 3000] {
        let (base, _) = base_and_queries(SyntheticKind::SiftLike, n, 1, 13);
        group.bench_with_input(BenchmarkId::new("nn_descent_k20", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(build_nn_descent(
                    &base,
                    NnDescentParams { k: 20, ..Default::default() },
                    &SquaredEuclidean,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_k20", n), &n, |bench, _| {
            bench.iter(|| black_box(build_exact_knn_graph(&base, 20, &SquaredEuclidean)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_knn
}
criterion_main!(benches);
