//! Benchmarks of the NSG construction pipeline: the NN-Descent kNN-graph
//! build versus Algorithm 2 (search-collect-select + tree spanning), the two
//! components Table 3 reports as t1 + t2.

use criterion::{criterion_group, criterion_main, Criterion};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_knn::{build_nn_descent, NnDescentParams};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_build(c: &mut Criterion) {
    let (base, _) = base_and_queries(SyntheticKind::SiftLike, 2000, 1, 99);
    let base = Arc::new(base);
    let knn_params = NnDescentParams { k: 30, ..Default::default() };
    let knn = build_nn_descent(&base, knn_params, &SquaredEuclidean);

    let mut group = c.benchmark_group("nsg_build");
    group.bench_function("nn_descent_t1", |bench| {
        bench.iter(|| black_box(build_nn_descent(&base, knn_params, &SquaredEuclidean)))
    });
    group.bench_function("algorithm2_t2", |bench| {
        bench.iter(|| {
            black_box(NsgIndex::build_from_knn(
                Arc::clone(&base),
                SquaredEuclidean,
                &knn,
                NsgParams {
                    build_pool_size: 60,
                    max_degree: 30,
                    knn: knn_params,
                    reverse_insert: true,
                    seed: 3,
                },
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
