//! Ablation bench for the DESIGN.md design decisions: MRNG edge selection
//! versus the exact RNG rule (Figure 3's comparison) and the NSG
//! search-collect-select candidate generation versus NSG-Naive's kNN-list-only
//! candidates.

use criterion::{criterion_group, criterion_main, Criterion};
use nsg_baselines::{NsgNaiveIndex, NsgNaiveParams};
use nsg_core::mrng::{build_mrng, build_rng_graph, MrngParams};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_pruning(c: &mut Criterion) {
    let (small, _) = base_and_queries(SyntheticKind::SiftLike, 400, 1, 5);
    let (base, _) = base_and_queries(SyntheticKind::SiftLike, 1500, 1, 6);
    let base = Arc::new(base);
    let knn = NnDescentParams { k: 40, ..Default::default() };

    let mut group = c.benchmark_group("pruning_ablation");
    group.bench_function("exact_mrng_400pts", |bench| {
        bench.iter(|| black_box(build_mrng(&small, MrngParams::default(), &SquaredEuclidean)))
    });
    group.bench_function("exact_rng_400pts", |bench| {
        bench.iter(|| black_box(build_rng_graph(&small, &SquaredEuclidean)))
    });
    group.bench_function("nsg_full_1500pts", |bench| {
        bench.iter(|| {
            black_box(NsgIndex::build(
                Arc::clone(&base),
                SquaredEuclidean,
                NsgParams { build_pool_size: 60, max_degree: 30, knn, reverse_insert: true, seed: 3 },
            ))
        })
    });
    group.bench_function("nsg_naive_1500pts", |bench| {
        bench.iter(|| {
            black_box(NsgNaiveIndex::build(
                Arc::clone(&base),
                SquaredEuclidean,
                NsgNaiveParams { knn, max_degree: 30, ..Default::default() },
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pruning
}
criterion_main!(benches);
