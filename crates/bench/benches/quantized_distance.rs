//! Flat `f32` versus SQ8 quantized kernels, at both altitudes the refactor
//! touches.
//!
//! * `kernel/*` — the raw distance kernels over one vector pair: `squared_l2`
//!   streaming 512 bytes per call versus `sq8_asym_l2` streaming 128 code
//!   bytes (plus the shared scale vector, resident after the first call).
//! * `traversal/*` — the *same* generic `search_on_graph_into` over the
//!   *same* frozen NSG and the *same* reused context, with only the
//!   [`VectorStore`] backend differing — the identical loop-shape discipline
//!   the `csr_traversal` bench uses, so the delta isolates vector bandwidth
//!   exactly as that bench isolates adjacency layout. The `sq8_rerank` rows
//!   add the two-phase exact-rerank tail (`r = 4`) on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsg_vectors::simd::{kernels, scalar_table};
use nsg_bench::common::output_dir;
use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::search::{search_on_graph_into, SearchParams};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::{squared_l2, SquaredEuclidean};
use nsg_vectors::quant::{sq8_asym_l2, Sq8VectorSet};
use nsg_vectors::store::{QueryScratch, VectorStore};
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_kernels(c: &mut Criterion) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2048, 16, 31);
    let store = Sq8VectorSet::encode(&base);
    let mut scratch = QueryScratch::new();
    store.prepare_query(&SquaredEuclidean, queries.get(0), &mut scratch);
    let q = queries.get(0);

    let mut group = c.benchmark_group("quantized_distance/kernel");
    group.bench_function("f32_squared_l2", |bench| {
        let mut i = 0;
        bench.iter(|| {
            i = (i + 1) % base.len();
            black_box(squared_l2(black_box(q), black_box(base.get(i))))
        })
    });
    group.bench_function("sq8_asym_l2", |bench| {
        let mut i = 0;
        bench.iter(|| {
            i = (i + 1) % store.len();
            black_box(sq8_asym_l2(
                black_box(scratch.prepared()),
                black_box(store.scales()),
                black_box(store.code(i)),
            ))
        })
    });
    group.finish();
}

/// Best-of-3 mean ns per call of `f` swept across `n` calls per repeat.
fn best_of_3_ns(n: usize, mut f: impl FnMut(usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        for i in 0..n {
            f(i);
        }
        best = best.min(started.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// Scalar-versus-detected comparison of every entry in the kernel table,
/// written as a registry snapshot to `BENCH_distance_kernels.json` at the
/// repository root — the committed perf-trajectory artifact. Gauges:
/// `kernel_<name>_scalar_ns`, `kernel_<name>_<level>_ns`, and
/// `kernel_<name>_speedup` (scalar ns / detected ns) for all five kernels.
fn bench_kernel_table(c: &mut Criterion) {
    let _ = c; // measurement is wall-clock best-of-3, not criterion-sampled
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2048, 4, 31);
    let store = Sq8VectorSet::encode(&base);
    let q = queries.get(0);
    let mut l2_scratch = QueryScratch::new();
    store.prepare_query(&SquaredEuclidean, q, &mut l2_scratch);
    let mut ip_scratch = QueryScratch::new();
    store.prepare_query(&nsg_vectors::distance::InnerProduct, q, &mut ip_scratch);

    // ADC inputs at the gather width: 16 subquantizers × 256 centroids.
    let adc_width = 256usize;
    let adc_m = 16usize;
    let adc_tables: Vec<f32> =
        (0..adc_width * adc_m).map(|i| (i % 1000) as f32 / 250.0).collect();
    let adc_codes: Vec<Vec<u8>> = (0..base.len())
        .map(|r| (0..adc_m).map(|m| ((r * 31 + m * 7) % adc_width) as u8).collect())
        .collect();

    let scalar = scalar_table();
    let detected = kernels();
    let registry = nsg_obs::Registry::new();
    let n = base.len();
    let mut sink = 0.0f32;

    for (name, scalar_ns, simd_ns) in [
        (
            "squared_l2",
            best_of_3_ns(n, |i| sink += (scalar.squared_l2)(q, base.get(i))),
            best_of_3_ns(n, |i| sink += (detected.squared_l2)(q, base.get(i))),
        ),
        (
            "dot",
            best_of_3_ns(n, |i| sink += (scalar.dot)(q, base.get(i))),
            best_of_3_ns(n, |i| sink += (detected.dot)(q, base.get(i))),
        ),
        (
            "sq8_asym_l2",
            best_of_3_ns(n, |i| {
                sink += (scalar.sq8_asym_l2)(l2_scratch.prepared(), store.scales(), store.code(i))
            }),
            best_of_3_ns(n, |i| {
                sink += (detected.sq8_asym_l2)(l2_scratch.prepared(), store.scales(), store.code(i))
            }),
        ),
        (
            "sq8_asym_dot",
            best_of_3_ns(n, |i| sink += (scalar.sq8_asym_dot)(ip_scratch.prepared(), store.code(i))),
            best_of_3_ns(n, |i| sink += (detected.sq8_asym_dot)(ip_scratch.prepared(), store.code(i))),
        ),
        (
            "adc_accumulate",
            best_of_3_ns(n, |i| sink += (scalar.adc_accumulate)(&adc_tables, adc_width, &adc_codes[i])),
            best_of_3_ns(n, |i| sink += (detected.adc_accumulate)(&adc_tables, adc_width, &adc_codes[i])),
        ),
    ] {
        registry.gauge(&format!("kernel_{name}_scalar_ns")).set(scalar_ns);
        registry.gauge(&format!("kernel_{name}_{}_ns", detected.level)).set(simd_ns);
        registry.gauge(&format!("kernel_{name}_speedup")).set(scalar_ns / simd_ns);
        println!(
            "kernel/{name}: scalar {scalar_ns:.1} ns, {} {simd_ns:.1} ns ({:.2}x)",
            detected.level,
            scalar_ns / simd_ns
        );
    }
    black_box(sink);

    // Committed at the repository root: the kernel perf trajectory the CI
    // thresholds in ISSUE 10 are checked against.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_distance_kernels.json");
    if let Err(e) = std::fs::write(&path, registry.snapshot_json()) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn bench_traversal(c: &mut Criterion) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 3000, 16, 77);
    let base = Arc::new(base);
    let nsg = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 60,
            max_degree: 30,
            knn: NnDescentParams { k: 40, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        },
    );
    let graph = nsg.graph().clone();
    let nav = nsg.navigating_node();
    let quantized = nsg.quantize_sq8();
    let store = Arc::clone(quantized.store());

    let mut group = c.benchmark_group("quantized_distance/traversal");
    for &pool in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::new("f32", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(
                    search_on_graph_into(
                        &graph,
                        base.as_ref(),
                        queries.get(qi),
                        &[nav],
                        SearchParams::new(pool, 10),
                        &SquaredEuclidean,
                        &mut ctx,
                    )
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sq8", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(
                    search_on_graph_into(
                        &graph,
                        store.as_ref(),
                        queries.get(qi),
                        &[nav],
                        SearchParams::new(pool, 10),
                        &SquaredEuclidean,
                        &mut ctx,
                    )
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sq8_rerank", pool), &pool, |bench, &pool| {
            let mut ctx = quantized.new_context();
            let request = SearchRequest::new(10).with_effort(pool).with_rerank(4);
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(quantized.search_into(&mut ctx, &request, queries.get(qi)).len())
            })
        });
    }
    group.finish();

    // Registry-snapshot emission: a short measured pass over the two store
    // backends (plus the rerank tail) publishes per-query latencies and
    // distance counts into the global `nsg-obs` registry — alongside the
    // `nsg_build_*` phase counters the build above published — and the
    // registry is written whole as `BENCH_quantized_distance.json`.
    let obs = nsg_obs::global();
    let mut ctx = SearchContext::for_points(base.len());
    let f32_hist = obs.histogram("quantized_traversal_f32");
    let f32_dc = obs.counter("quantized_traversal_f32_distance_computations");
    let sq8_hist = obs.histogram("quantized_traversal_sq8");
    let sq8_dc = obs.counter("quantized_traversal_sq8_distance_computations");
    for qi in 0..queries.len() {
        let started = std::time::Instant::now();
        black_box(
            search_on_graph_into(
                &graph,
                base.as_ref(),
                queries.get(qi),
                &[nav],
                SearchParams::new(100, 10),
                &SquaredEuclidean,
                &mut ctx,
            )
            .len(),
        );
        f32_hist.record(started.elapsed());
        f32_dc.add(ctx.stats.distance_computations);
        let started = std::time::Instant::now();
        black_box(
            search_on_graph_into(
                &graph,
                store.as_ref(),
                queries.get(qi),
                &[nav],
                SearchParams::new(100, 10),
                &SquaredEuclidean,
                &mut ctx,
            )
            .len(),
        );
        sq8_hist.record(started.elapsed());
        sq8_dc.add(ctx.stats.distance_computations);
    }
    let rerank_hist = obs.histogram("quantized_traversal_sq8_rerank");
    let mut qctx = quantized.new_context();
    let request = SearchRequest::new(10).with_effort(100).with_rerank(4);
    for qi in 0..queries.len() {
        let started = std::time::Instant::now();
        black_box(quantized.search_into(&mut qctx, &request, queries.get(qi)).len());
        rerank_hist.record(started.elapsed());
    }
    let path = output_dir().join("BENCH_quantized_distance.json");
    if let Err(e) = std::fs::write(&path, obs.snapshot_json()) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels, bench_kernel_table, bench_traversal
}
criterion_main!(benches);
