//! Benchmarks of Algorithm 1 on the NSG versus the unpruned kNN graph — the
//! `o × l` cost model of §3.1 in miniature: the pruned graph's lower
//! out-degree makes each hop cheaper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsg_core::context::SearchContext;
use nsg_core::graph::DirectedGraph;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::search::{search_on_graph_into, SearchParams};
use nsg_knn::{build_nn_descent, NnDescentParams};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_search(c: &mut Criterion) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 3000, 16, 77);
    let base = Arc::new(base);
    let knn_params = NnDescentParams { k: 40, ..Default::default() };
    let knn = build_nn_descent(&base, knn_params, &SquaredEuclidean);
    let knn_graph = DirectedGraph::from_adjacency(
        (0..knn.len() as u32).map(|v| knn.neighbor_ids(v).collect()).collect(),
    );
    let nsg = NsgIndex::build_from_knn(
        Arc::clone(&base),
        SquaredEuclidean,
        &knn,
        NsgParams { build_pool_size: 60, max_degree: 30, knn: knn_params, reverse_insert: true, seed: 3 },
    );

    // One reused context per benchmark: after the first iteration warms its
    // buffers, every measured search performs zero heap allocation (the
    // `alloc_guard` integration test enforces exactly this configuration).
    let mut group = c.benchmark_group("search_on_graph");
    for &pool in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::new("nsg", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(search_on_graph_into(
                    nsg.graph(),
                    &base,
                    queries.get(qi),
                    &[nsg.navigating_node()],
                    SearchParams::new(pool, 10),
                    &SquaredEuclidean,
                    &mut ctx,
                )
                .len())
            })
        });
        group.bench_with_input(BenchmarkId::new("knn_graph", pool), &pool, |bench, &pool| {
            let mut ctx = SearchContext::for_points(base.len());
            let mut qi = 0;
            bench.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(search_on_graph_into(
                    &knn_graph,
                    &base,
                    queries.get(qi),
                    &[nsg.navigating_node()],
                    SearchParams::new(pool, 10),
                    &SquaredEuclidean,
                    &mut ctx,
                )
                .len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_search
}
criterion_main!(benches);
