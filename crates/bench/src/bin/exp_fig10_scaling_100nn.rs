//! Figure 10: how 100-NN search time scales with the data size N, measured at
//! a fixed precision target (the paper uses 99%; the reproduction uses 95% so
//! every subset size reaches the target).
//!
//! Paper shape to check: the same near-logarithmic growth as the 1-NN case.

use nsg_bench::common::{output_dir, Scale};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::scaling::fit_power_law;
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::metrics::{cost_at_precision, CurvePoint};
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let max_n = scale.base_size() * 2;
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let target = 0.95;
    let k = 100.min(max_n / 20);

    let mut table = Table::new(vec!["dataset", "N", "search time at 95% (us/query)"]);
    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::GistLike].into_iter().enumerate() {
        let (full_base, queries) = base_and_queries(kind, max_n, scale.query_size(), 3100 + i as u64);
        let mut points = Vec::new();
        for &f in &fractions {
            let n = (max_n as f64 * f) as usize;
            let base = Arc::new(full_base.prefix(n));
            let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);
            let nsg = NsgIndex::build(
                Arc::clone(&base),
                SquaredEuclidean,
                NsgParams {
                    build_pool_size: 60,
                    max_degree: 30,
                    knn: NnDescentParams { k: 40, ..Default::default() },
                    reverse_insert: true,
                    seed: 3,
                },
            );
            let efforts = effort_ladder(k, 800, 1.6);
            let sweep = sweep_index(&nsg, &queries, &gt, k, &efforts);
            let curve: Vec<CurvePoint> = sweep
                .iter()
                .map(|p| CurvePoint { precision: p.precision, cost: p.mean_latency_us })
                .collect();
            match cost_at_precision(&curve, target) {
                Some(us) => {
                    points.push((n as f64, us));
                    table.add_row(vec![kind.short_name().to_string(), n.to_string(), fmt_f64(us, 1)]);
                }
                None => table.add_row(vec![kind.short_name().to_string(), n.to_string(), "-".to_string()]),
            }
        }
        if let Some(fit) = fit_power_law(&points) {
            println!(
                "{}: fitted 100-NN search-time exponent = {:.3} (R^2 = {:.3})",
                kind.short_name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }

    println!("\nFigure 10 — 100-NN search-time scaling with N (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig10_scaling_100nn.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
