//! Figure 11: how K-NN search time scales with K at a fixed dataset size and
//! precision target, with both candidate fits the paper reports
//! (`O(K^x)` and `O((log K)^x)`).
//!
//! Paper shape to check: sub-linear growth in K — the paper fits K^0.46 and
//! (log K)^2.7.

use nsg_bench::common::{output_dir, Scale};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::scaling::{fit_log_power_law, fit_power_law};
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::metrics::{cost_at_precision, CurvePoint};
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let n_base = scale.base_size();
    let target = 0.95;
    let ks = [1usize, 5, 10, 25, 50, 100];

    let mut table = Table::new(vec!["dataset", "K", "search time at 95% (us/query)"]);
    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::GistLike].into_iter().enumerate() {
        let (base, queries) = base_and_queries(kind, n_base, scale.query_size(), 3200 + i as u64);
        let base = Arc::new(base);
        let nsg = NsgIndex::build(
            Arc::clone(&base),
            SquaredEuclidean,
            NsgParams {
                build_pool_size: 60,
                max_degree: 30,
                knn: NnDescentParams { k: 40, ..Default::default() },
                reverse_insert: true,
                seed: 3,
            },
        );
        let max_gt = exact_knn(&base, &queries, *ks.last().unwrap(), &SquaredEuclidean);
        let mut points = Vec::new();
        for &k in &ks {
            let gt = max_gt.truncated(k);
            let efforts = effort_ladder(k.max(10), 800, 1.6);
            let sweep = sweep_index(&nsg, &queries, &gt, k, &efforts);
            let curve: Vec<CurvePoint> = sweep
                .iter()
                .map(|p| CurvePoint { precision: p.precision, cost: p.mean_latency_us })
                .collect();
            match cost_at_precision(&curve, target) {
                Some(us) => {
                    points.push((k as f64, us));
                    table.add_row(vec![kind.short_name().to_string(), k.to_string(), fmt_f64(us, 1)]);
                }
                None => table.add_row(vec![kind.short_name().to_string(), k.to_string(), "-".to_string()]),
            }
        }
        if let Some(fit) = fit_power_law(&points) {
            println!("{}: K-scaling exponent (power law) = {:.3}", kind.short_name(), fit.exponent);
        }
        if let Some(fit) = fit_log_power_law(&points) {
            println!("{}: K-scaling exponent (log power law) = {:.3}", kind.short_name(), fit.exponent);
        }
    }

    println!("\nFigure 11 — K-NN search-time scaling with K (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig11_scaling_k.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
