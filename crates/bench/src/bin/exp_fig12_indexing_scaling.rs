//! Figure 12: how the NSG indexing time (Algorithm 2, i.e. excluding the kNN
//! graph build) scales with the data size N, with the fitted power-law
//! exponent.
//!
//! Paper shape to check: the measured exponent sits near
//! O(N^{1 + 1/d} log N^{1/d}) ≈ N^1.1–1.3, i.e. slightly super-linear but far
//! below the O(N^2) of the exact MRNG construction.

use nsg_bench::common::{output_dir, standard_knn_params, Scale};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::scaling::fit_power_law;
use nsg_eval::timing::time_it;
use nsg_knn::build_nn_descent;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let max_n = scale.base_size() * 2;
    let fractions = [0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(vec!["dataset", "N", "algorithm-2 time (s)", "knn-graph time (s)"]);
    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::GistLike].into_iter().enumerate() {
        let (full_base, _) = base_and_queries(kind, max_n, 1, 3300 + i as u64);
        let mut points = Vec::new();
        for &f in &fractions {
            let n = (max_n as f64 * f) as usize;
            let base = Arc::new(full_base.prefix(n));
            let knn_params = standard_knn_params();
            let (knn, t_knn) = time_it(|| build_nn_descent(&base, knn_params, &SquaredEuclidean));
            let (_nsg, t_alg2) = time_it(|| {
                NsgIndex::build_from_knn(
                    Arc::clone(&base),
                    SquaredEuclidean,
                    &knn,
                    NsgParams {
                        build_pool_size: 60,
                        max_degree: 30,
                        knn: knn_params,
                        reverse_insert: true,
                        seed: 3,
                    },
                )
            });
            points.push((n as f64, t_alg2.as_secs_f64().max(1e-6)));
            table.add_row(vec![
                kind.short_name().to_string(),
                n.to_string(),
                fmt_f64(t_alg2.as_secs_f64(), 3),
                fmt_f64(t_knn.as_secs_f64(), 3),
            ]);
        }
        if let Some(fit) = fit_power_law(&points) {
            println!(
                "{}: fitted Algorithm-2 indexing-time exponent = {:.3} (R^2 = {:.3})",
                kind.short_name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }

    println!("\nFigure 12 — NSG indexing-time scaling with N (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig12_indexing_scaling.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
