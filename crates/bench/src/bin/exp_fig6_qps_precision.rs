//! Figure 6: queries-per-second versus precision for the graph-based methods
//! (plus the serial-scan reference) on the four million-scale stand-ins, in
//! the high-precision region.
//!
//! Paper shape to check: NSG dominates the other graph methods (top-right of
//! every plot), HNSW is the runner-up, NSG-Naive trails the full NSG, and the
//! gap widens on the higher-LID datasets (RAND / GAUSS).

use nsg_bench::common::{build_graph_methods, output_dir, Scale};
use nsg_baselines::SerialScan;
use nsg_core::index::AnnIndex;
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let efforts = effort_ladder(10, 400, 1.8);
    let mut table = Table::new(vec!["dataset", "algorithm", "effort", "precision", "qps"]);

    for (i, kind) in [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    {
        let (base, queries) = base_and_queries(kind, scale.base_size(), scale.query_size(), 1000 + i as u64);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

        let mut methods = build_graph_methods(&base);
        let serial: Box<dyn AnnIndex> = Box::new(SerialScan::new((*base).clone(), SquaredEuclidean));
        for b in methods.drain(..) {
            let points = sweep_index(b.index.as_ref(), &queries, &gt, k, &efforts);
            for p in points {
                table.add_row(vec![
                    kind.short_name().to_string(),
                    b.name.to_string(),
                    p.effort.to_string(),
                    fmt_f64(p.precision, 4),
                    fmt_f64(p.qps, 1),
                ]);
            }
        }
        // Serial scan: exact (precision 1.0), one operating point.
        let points = sweep_index(serial.as_ref(), &queries, &gt, k, &[1]);
        table.add_row(vec![
            kind.short_name().to_string(),
            "Serial-Scan".to_string(),
            "-".to_string(),
            fmt_f64(points[0].precision, 4),
            fmt_f64(points[0].qps, 1),
        ]);
    }

    println!("Figure 6 — QPS vs precision, graph-based methods (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig6_qps_precision.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
