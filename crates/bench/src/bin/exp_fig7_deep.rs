//! Figure 7: NSG versus Faiss-IVFPQ on the DEEP stand-in, including the
//! sharded NSG configuration (the paper's NSG-16core builds 16 NSGs on random
//! partitions and merges their answers) and the serial-scan reference.
//!
//! Paper shape to check: NSG outperforms IVFPQ decisively in the
//! high-precision region; the sharded NSG matches the single NSG's precision;
//! IVFPQ saturates below the graph methods' precision ceiling.

use nsg_bench::common::{output_dir, Scale};
use nsg_baselines::{IvfPq, IvfPqParams, SerialScan};
use nsg_core::index::AnnIndex;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::sharded::ShardedNsg;
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_eval::timing::{format_duration, time_it};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let n_base = scale.base_size() * 2; // the DEEP subset is the largest set in the paper
    let k = 10;
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, n_base, scale.query_size(), 4242);
    let base = Arc::new(base);
    let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

    let nsg_params = NsgParams {
        build_pool_size: 60,
        max_degree: 30,
        knn: NnDescentParams { k: 40, ..Default::default() },
        reverse_insert: true,
        seed: 11,
    };

    let (nsg, t_nsg) = time_it(|| NsgIndex::build(Arc::clone(&base), SquaredEuclidean, nsg_params));
    let (sharded, t_sharded) =
        time_it(|| ShardedNsg::build(&base, SquaredEuclidean, nsg_params, 16, 21));
    let (ivfpq, t_ivfpq) = time_it(|| {
        IvfPq::build(
            Arc::clone(&base),
            SquaredEuclidean,
            IvfPqParams { nlist: 128, num_subquantizers: 12, codebook_size: 64, ..Default::default() },
        )
    });
    let serial = SerialScan::new((*base).clone(), SquaredEuclidean);

    println!("Figure 7 — NSG vs Faiss-IVFPQ on the DEEP stand-in ({n_base} base vectors)\n");
    println!(
        "build times: NSG-1shard {}  NSG-16shard {}  IVFPQ {}\n",
        format_duration(t_nsg),
        format_duration(t_sharded),
        format_duration(t_ivfpq)
    );

    let mut table = Table::new(vec!["algorithm", "effort", "precision", "qps"]);
    let graph_efforts = effort_ladder(10, 400, 1.8);
    let probe_efforts = effort_ladder(1, 128, 2.0);

    let runs: Vec<(&str, &dyn AnnIndex, &[usize])> = vec![
        ("NSG-1shard", &nsg, &graph_efforts),
        ("NSG-16shard", &sharded, &graph_efforts),
        ("Faiss-IVFPQ", &ivfpq, &probe_efforts),
        ("Serial-Scan", &serial, &[1usize]),
    ];
    for (name, index, efforts) in runs {
        for p in sweep_index(index, &queries, &gt, k, efforts) {
            table.add_row(vec![
                name.to_string(),
                p.effort.to_string(),
                fmt_f64(p.precision, 4),
                fmt_f64(p.qps, 1),
            ]);
        }
    }

    println!("{}", table.render());
    let csv = output_dir().join("fig7_deep.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
