//! Figure 8: number of distance computations needed to reach a given
//! precision, comparing NSG against the non-graph baselines (randomized
//! KD-trees, LSH, IVFPQ).
//!
//! Paper shape to check: at equal precision NSG needs tens of times fewer
//! distance computations than every non-graph method, which is the paper's
//! explanation for the performance gap between the families.

use nsg_bench::common::{output_dir, Scale};
use nsg_baselines::{IvfPq, IvfPqParams, KdForest, KdForestParams, LshIndex, LshParams};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::sweep::effort_ladder;
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::metrics::mean_precision;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let mut table = Table::new(vec!["dataset", "algorithm", "effort", "precision", "avg distance calcs"]);

    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::GistLike].into_iter().enumerate() {
        let (base, queries) = base_and_queries(kind, scale.base_size(), scale.query_size(), 2000 + i as u64);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

        // NSG: the search context carries the exact distance-computation
        // count, read back per query on the allocation-free path.
        let nsg = NsgIndex::build(
            Arc::clone(&base),
            SquaredEuclidean,
            NsgParams {
                build_pool_size: 60,
                max_degree: 30,
                knn: NnDescentParams { k: 40, ..Default::default() },
                reverse_insert: true,
                seed: 5,
            },
        );
        let mut ctx = nsg.new_context();
        for effort in effort_ladder(10, 400, 2.0) {
            let request = SearchRequest::new(k).with_effort(effort).with_stats();
            let mut results = Vec::with_capacity(queries.len());
            let mut calcs = 0u64;
            for q in 0..queries.len() {
                let hits = nsg.search_into(&mut ctx, &request, queries.get(q));
                results.push(nsg_core::neighbor::ids(hits));
                calcs += ctx.stats().distance_computations;
            }
            table.add_row(vec![
                kind.short_name().to_string(),
                "NSG".to_string(),
                effort.to_string(),
                fmt_f64(mean_precision(&results, &gt, k), 4),
                fmt_f64(calcs as f64 / queries.len() as f64, 0),
            ]);
        }

        // Randomized KD-tree forest: distance computations = checked candidates.
        let forest = KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default());
        for effort in effort_ladder(50, 4000, 2.5) {
            let mut results = Vec::with_capacity(queries.len());
            let mut calcs = 0u64;
            for q in 0..queries.len() {
                let candidates = forest.candidates(queries.get(q), effort);
                calcs += candidates.len() as u64;
                let mut scored: Vec<(u32, f32)> = candidates
                    .into_iter()
                    .map(|id| (id, nsg_vectors::distance::squared_l2(queries.get(q), base.get(id as usize))))
                    .collect();
                scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                results.push(scored.into_iter().take(k).map(|(id, _)| id).collect());
            }
            table.add_row(vec![
                kind.short_name().to_string(),
                "Flann-KD".to_string(),
                effort.to_string(),
                fmt_f64(mean_precision(&results, &gt, k), 4),
                fmt_f64(calcs as f64 / queries.len() as f64, 0),
            ]);
        }

        // LSH: distance computations = re-ranked candidates.
        let lsh = LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default());
        for effort in effort_ladder(50, 4000, 2.5) {
            let mut results = Vec::with_capacity(queries.len());
            let mut calcs = 0u64;
            for q in 0..queries.len() {
                let candidates = lsh.candidates(queries.get(q), effort);
                calcs += candidates.len() as u64;
                let mut scored: Vec<(u32, f32)> = candidates
                    .into_iter()
                    .map(|id| (id, nsg_vectors::distance::squared_l2(queries.get(q), base.get(id as usize))))
                    .collect();
                scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                results.push(scored.into_iter().take(k).map(|(id, _)| id).collect());
            }
            table.add_row(vec![
                kind.short_name().to_string(),
                "FALCONN-LSH".to_string(),
                effort.to_string(),
                fmt_f64(mean_precision(&results, &gt, k), 4),
                fmt_f64(calcs as f64 / queries.len() as f64, 0),
            ]);
        }

        // IVFPQ: its search_counted reports coarse + ADC evaluations.
        let ivfpq = IvfPq::build(
            Arc::clone(&base),
            SquaredEuclidean,
            IvfPqParams { nlist: 64, num_subquantizers: 8, codebook_size: 64, ..Default::default() },
        );
        for effort in effort_ladder(1, 64, 2.0) {
            let mut results = Vec::with_capacity(queries.len());
            let mut calcs = 0u64;
            for q in 0..queries.len() {
                let (neighbors, stats) = ivfpq.search_counted(queries.get(q), k, effort);
                calcs += stats.distance_computations;
                results.push(nsg_core::neighbor::ids(&neighbors));
            }
            table.add_row(vec![
                kind.short_name().to_string(),
                "Faiss-IVFPQ".to_string(),
                effort.to_string(),
                fmt_f64(mean_precision(&results, &gt, k), 4),
                fmt_f64(calcs as f64 / queries.len() as f64, 0),
            ]);
        }
    }

    println!("Figure 8 — distance computations vs precision (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig8_distance_calcs.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
