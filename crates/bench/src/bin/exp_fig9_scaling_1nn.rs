//! Figure 9: how 1-NN search time scales with the data size N on the SIFT-like
//! and GIST-like datasets, measured at a fixed precision target, together with
//! the fitted power-law exponent.
//!
//! Paper shape to check: the exponent is far below linear (close to
//! logarithmic — the paper fits O(N^{1/d} log N^{1/d}) with d near the
//! intrinsic dimension).

use nsg_bench::common::{output_dir, Scale};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::scaling::fit_power_law;
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::metrics::{cost_at_precision, CurvePoint};
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

/// Measures the per-query search time (µs) needed to reach `target` precision
/// for `k`-NN on one base set, or `None` if unreachable.
pub fn time_at_precision(
    base: Arc<nsg_vectors::VectorSet>,
    queries: &nsg_vectors::VectorSet,
    k: usize,
    target: f64,
) -> Option<f64> {
    let gt = exact_knn(&base, queries, k, &SquaredEuclidean);
    let nsg = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 60,
            max_degree: 30,
            knn: NnDescentParams { k: 40, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        },
    );
    let efforts = effort_ladder(k.max(10), 500, 1.6);
    let points = sweep_index(&nsg, queries, &gt, k, &efforts);
    let curve: Vec<CurvePoint> = points
        .iter()
        .map(|p| CurvePoint { precision: p.precision, cost: p.mean_latency_us })
        .collect();
    cost_at_precision(&curve, target)
}

fn main() {
    let scale = Scale::from_env();
    let max_n = scale.base_size() * 2;
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let target = 0.95;
    let k = 1;

    let mut table = Table::new(vec!["dataset", "N", "search time at 95% (us/query)"]);
    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::GistLike].into_iter().enumerate() {
        let (full_base, queries) = base_and_queries(kind, max_n, scale.query_size(), 3000 + i as u64);
        let mut points = Vec::new();
        for &f in &fractions {
            let n = (max_n as f64 * f) as usize;
            let base = Arc::new(full_base.prefix(n));
            if let Some(us) = time_at_precision(base, &queries, k, target) {
                points.push((n as f64, us));
                table.add_row(vec![kind.short_name().to_string(), n.to_string(), fmt_f64(us, 1)]);
            } else {
                table.add_row(vec![kind.short_name().to_string(), n.to_string(), "-".to_string()]);
            }
        }
        if let Some(fit) = fit_power_law(&points) {
            println!(
                "{}: fitted 1-NN search-time exponent = {:.3} (R^2 = {:.3})",
                kind.short_name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }

    println!("\nFigure 9 — 1-NN search-time scaling with N (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("fig9_scaling_1nn.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
