//! Live-mutation envelope: recall, insert latency and compaction cost as
//! the delta layer grows.
//!
//! Runs the `nsg-eval` recall-vs-delta-fraction sweep at 0% / 5% / 10%
//! delta: each point freezes an NSG over the older part of the corpus,
//! streams the remainder in through `MutableIndex::insert` (timing every
//! insert), measures merged base+delta recall@10 against exact ground truth
//! over the full corpus, then times `compact()` — the full Algorithm 2
//! rebuild — and re-measures on the compacted index. The committed
//! `BENCH_live_mutation.json` tracks the subsystem's contract: merged
//! recall within 1% of the rebuild up to a 10% delta fraction.
//!
//! Environment knobs: `NSG_SCALE=small` shrinks the corpus (CI smoke).

use nsg_bench::common::{json, output_dir, Scale};
use nsg_core::index::SearchRequest;
use nsg_core::nsg::NsgParams;
use nsg_eval::mutation::{sweep_delta_fractions, DeltaSweepPoint};
use nsg_eval::report::{fmt_f64, Table};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

const K: usize = 10;
const EFFORT: usize = 40;
const FRACTIONS: [f64; 3] = [0.0, 0.05, 0.10];

fn point_json(p: &DeltaSweepPoint) -> String {
    json::object(&[
        ("delta_fraction", json::number(p.delta_fraction)),
        ("base_len", json::number(p.base_len as f64)),
        ("delta_len", json::number(p.delta_len as f64)),
        ("merged_recall_at_10", json::number(p.merged_recall)),
        ("rebuilt_recall_at_10", json::number(p.rebuilt_recall)),
        ("recall_gap", json::number(p.recall_gap())),
        ("mean_query_us", json::number(p.mean_query_us)),
        ("insert_p50_us", json::number(p.insert_p50_us)),
        ("insert_p99_us", json::number(p.insert_p99_us)),
        ("compact_wall_ms", json::number(p.compact_wall.as_secs_f64() * 1e3)),
    ])
}

fn main() {
    let scale = Scale::from_env();
    let (corpus, queries) =
        base_and_queries(SyntheticKind::SiftLike, scale.base_size(), scale.query_size(), 77);
    let gt = exact_knn(&corpus, &queries, K, &SquaredEuclidean);
    let request = SearchRequest::new(K).with_effort(EFFORT);
    // The workspace-standard comparison parameters (Tables 2-4): weaker
    // builds leave the base NSG in an unstable-recall regime where
    // build-to-build variance across slightly different corpora swamps the
    // merged-vs-rebuilt gap this experiment is measuring.
    let params = NsgParams {
        build_pool_size: 60,
        max_degree: 30,
        knn: NnDescentParams { k: 40, ..Default::default() },
        reverse_insert: true,
        seed: 7,
    };

    println!(
        "Live mutation — {} pts dim {}, {} queries, recall@{K} at effort {EFFORT}\n",
        corpus.len(),
        corpus.dim(),
        queries.len()
    );
    let points = sweep_delta_fractions(&corpus, &queries, &gt, &request, &params, &FRACTIONS);

    let mut table = Table::new(vec![
        "delta",
        "base",
        "inserted",
        "merged_r@10",
        "rebuilt_r@10",
        "gap",
        "query_us",
        "ins_p50_us",
        "ins_p99_us",
        "compact_ms",
    ]);
    for p in &points {
        table.add_row(vec![
            format!("{:.0}%", p.delta_fraction * 100.0),
            p.base_len.to_string(),
            p.delta_len.to_string(),
            fmt_f64(p.merged_recall, 4),
            fmt_f64(p.rebuilt_recall, 4),
            fmt_f64(p.recall_gap(), 4),
            fmt_f64(p.mean_query_us, 1),
            fmt_f64(p.insert_p50_us, 1),
            fmt_f64(p.insert_p99_us, 1),
            fmt_f64(p.compact_wall.as_secs_f64() * 1e3, 1),
        ]);
    }
    println!("{}", table.render());
    println!(
        "merged = base CSR + delta graph with tombstone filtering; rebuilt = the same points\n\
         after compact() (full Algorithm 2 rebuild). The subsystem's contract is gap <= 0.01\n\
         up to a 10% delta fraction; compaction folds the delta away before it outgrows that."
    );

    let point_docs: Vec<String> = points.iter().map(point_json).collect();
    let doc = json::object(&[
        ("experiment", json::string("live_mutation")),
        (
            "scale",
            json::string(match scale {
                Scale::Small => "small",
                Scale::Default => "default",
            }),
        ),
        ("corpus", json::number(corpus.len() as f64)),
        ("dim", json::number(corpus.dim() as f64)),
        ("queries", json::number(queries.len() as f64)),
        ("k", json::number(K as f64)),
        ("effort", json::number(EFFORT as f64)),
        ("points", json::array(&point_docs)),
    ]);
    let path = output_dir().join("BENCH_live_mutation.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
