//! Recall vs. vector memory: the f32-vs-SQ8 tradeoff table.
//!
//! The paper's Table 2 and §6 make index memory the deciding factor for
//! billion-scale deployment; this experiment extends that accounting to the
//! *vector* payload, which dominates once graphs are pruned NSG-tight. One
//! NSG is built per clustered dataset on `f32` rows, then re-frozen onto the
//! SQ8 store ([`NsgIndex::quantize_sq8`]), and the same query batch is swept
//! across rerank factors. Shape to check:
//!
//! * the SQ8 store is ≤ ~30% of the flat `f32` vector bytes (codes are 1
//!   byte per coordinate + two `f32` affine parameters per dimension),
//! * two-phase search recovers ≥ 99% of the f32 recall@10 at a small rerank
//!   factor — quantization costs memory-bandwidth-bound accuracy, and the
//!   exact-rerank phase buys it back for `r·k` extra row reads per query.

use nsg_bench::common::{output_dir, Scale};
use nsg_core::index::SearchRequest;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::sweep::{memory_recall_row, MemoryRecallRow};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::store::VectorStore;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

const K: usize = 10;
const EFFORT: usize = 120;
const RERANK_FACTORS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(vec![
        "dataset",
        "store",
        "rerank",
        "vector bytes",
        "vs f32",
        "recall@10",
        "vs f32 recall",
        "qps",
        "mean dists",
    ]);
    let mut all_pass = true;

    for (i, kind) in [SyntheticKind::SiftLike, SyntheticKind::DeepLike]
        .into_iter()
        .enumerate()
    {
        let (base, queries) = base_and_queries(kind, scale.base_size(), scale.query_size(), 400 + i as u64);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, K, &SquaredEuclidean);
        let flat = NsgIndex::build(
            Arc::clone(&base),
            SquaredEuclidean,
            NsgParams {
                build_pool_size: 60,
                max_degree: 30,
                knn: NnDescentParams { k: 40, ..Default::default() },
                reverse_insert: true,
                seed: 11,
            },
        );
        let flat_bytes = base.memory_bytes();
        let request = SearchRequest::new(K).with_effort(EFFORT);
        let f32_row = memory_recall_row("f32", flat_bytes, &flat, &queries, &gt, request);
        let f32_recall = f32_row.point.precision;
        push_row(&mut table, kind.short_name(), &f32_row, flat_bytes, f32_recall);

        let quantized = flat.quantize_sq8();
        let sq8_bytes = quantized.store().as_ref().memory_bytes();
        let mut best_ratio = 0.0f64;
        for factor in RERANK_FACTORS {
            let row = memory_recall_row(
                format!("sq8 r={factor}"),
                sq8_bytes,
                &quantized,
                &queries,
                &gt,
                request.with_rerank(factor),
            );
            best_ratio = best_ratio.max(row.point.precision / f32_recall.max(1e-12));
            push_row(&mut table, kind.short_name(), &row, flat_bytes, f32_recall);
        }

        let bytes_ok = sq8_bytes as f64 <= flat_bytes as f64 * 0.30;
        let recall_ok = best_ratio >= 0.99;
        all_pass &= bytes_ok && recall_ok;
        println!(
            "{}: SQ8 store = {:.1}% of f32 bytes ({}), best two-phase recall ratio = {:.4} ({})",
            kind.short_name(),
            sq8_bytes as f64 / flat_bytes as f64 * 100.0,
            if bytes_ok { "ok: <= 30%" } else { "FAIL: > 30%" },
            best_ratio,
            if recall_ok { "ok: >= 0.99" } else { "FAIL: < 0.99" },
        );
    }

    println!("\nRecall vs vector memory — f32 rows vs SQ8 codes (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("memory_recall.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
    if !all_pass {
        std::process::exit(1);
    }
}

fn push_row(table: &mut Table, dataset: &str, row: &MemoryRecallRow, flat_bytes: usize, f32_recall: f64) {
    table.add_row(vec![
        dataset.to_string(),
        row.label.clone(),
        row.point.rerank.to_string(),
        row.vector_bytes.to_string(),
        fmt_f64(row.vector_bytes as f64 / flat_bytes as f64 * 100.0, 1) + "%",
        fmt_f64(row.point.precision, 4),
        fmt_f64(row.point.precision / f32_recall.max(1e-12), 4),
        fmt_f64(row.point.qps, 0),
        fmt_f64(row.point.mean_distance_computations, 0),
    ]);
}
