//! Serving throughput/latency sweep: worker count × offered load against a
//! live `nsg-serve` server.
//!
//! Two load-generation modes per worker count:
//!
//! * **closed-loop** — `2 × workers` client threads, each submitting its next
//!   query the moment the previous answer arrives (blocking submits, never
//!   rejected). Measures the service's saturation throughput and the latency
//!   at saturation.
//! * **open-loop** — a dispatcher fires queries at a fixed offered rate
//!   (independent of completions, the "users don't wait for each other"
//!   model), fire-and-forget through a slot pool, with non-blocking submits:
//!   a full admission queue rejects. Swept at 50% / 90% / 120% of the
//!   measured closed-loop capacity to show the SLO story — comfortable,
//!   near-saturated, and overloaded (where rejection, not latency collapse,
//!   absorbs the excess).
//!
//! Environment knobs: `NSG_SCALE=small` shrinks the dataset and the worker
//! sweep (CI smoke), `NSG_SERVE_CELL_MS` sets the measurement window per
//! table cell (default 250ms small / 1000ms default).

use nsg_bench::common::{json, output_dir, Scale};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::{fmt_f64, Table};
use nsg_knn::NnDescentParams;
use nsg_serve::{ResponseSlot, ServeError, Server, ServerConfig};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use nsg_vectors::VectorSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cell_duration(scale: Scale) -> Duration {
    let default_ms = match scale {
        Scale::Small => 250,
        Scale::Default => 1000,
    };
    let ms = std::env::var("NSG_SERVE_CELL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_ms)
        .max(50);
    Duration::from_millis(ms)
}

/// One measured table cell.
struct Cell {
    workers: usize,
    mode: String,
    offered_qps: Option<f64>,
    achieved_qps: f64,
    p50: Duration,
    p99: Duration,
    rejection_rate: f64,
}

/// Closed loop: `clients` threads in lock-step with their own answers.
fn run_closed_loop(
    index: &Arc<dyn AnnIndex>,
    queries: &Arc<VectorSet>,
    request: &SearchRequest,
    workers: usize,
    window: Duration,
) -> Cell {
    let server = Arc::new(Server::start(
        Arc::clone(index),
        ServerConfig::with_workers(workers).queue_capacity(workers * 8),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..workers * 2)
        .map(|c| {
            let server = Arc::clone(&server);
            let queries = Arc::clone(queries);
            let stop = Arc::clone(&stop);
            let request = *request;
            std::thread::spawn(move || {
                let slot = Arc::new(ResponseSlot::new());
                let mut q = c;
                while !stop.load(Ordering::Relaxed) {
                    let query = queries.get(q % queries.len());
                    if server.submit(&slot, query, &request, None).is_err() {
                        break;
                    }
                    let _ = slot.wait();
                    q += 1;
                }
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    let elapsed = started.elapsed();
    let snap = server.metrics().snapshot();
    Cell {
        workers,
        mode: format!("closed({}c)", workers * 2),
        offered_qps: None,
        achieved_qps: snap.completed as f64 / elapsed.as_secs_f64(),
        p50: snap.p50,
        p99: snap.p99,
        rejection_rate: snap.rejection_rate(),
    }
}

/// Open loop: fire `rate` queries per second regardless of completions.
fn run_open_loop(
    index: &Arc<dyn AnnIndex>,
    queries: &Arc<VectorSet>,
    request: &SearchRequest,
    workers: usize,
    rate: f64,
    label: &str,
    window: Duration,
) -> Cell {
    // The dispatcher paces in 1ms ticks, so a tick's burst can reach
    // rate/1000 requests; the queue must absorb a burst or rejection would
    // measure dispatcher burstiness instead of sustained overload.
    let queue_capacity = ((rate / 1000.0).ceil() as usize * 2).max(workers * 16);
    let server = Server::start(
        Arc::clone(index),
        ServerConfig::with_workers(workers).queue_capacity(queue_capacity),
    );
    // Enough slots that a slot is never still pending when its turn comes
    // around again (in-flight ≤ queue + workers); rejected/completed slots
    // are reused fire-and-forget.
    let slots: Vec<Arc<ResponseSlot>> = (0..queue_capacity + workers + 8)
        .map(|_| Arc::new(ResponseSlot::new()))
        .collect();
    let offered = AtomicU64::new(0);
    let started = Instant::now();
    let tick = Duration::from_millis(1);
    let mut next_slot = 0usize;
    let mut fired = 0f64;
    while started.elapsed() < window {
        // Fire everything due by now, then sleep one tick. If the dispatcher
        // itself falls hopelessly behind (single-core contention), rebase
        // rather than spin: offered_qps reports what was actually fired.
        let due = rate * started.elapsed().as_secs_f64();
        if due - fired > 4.0 * queue_capacity as f64 {
            fired = due - queue_capacity as f64;
        }
        while fired < due {
            let slot = &slots[next_slot];
            next_slot = (next_slot + 1) % slots.len();
            let query = queries.get((fired as usize) % queries.len());
            match server.try_submit(slot, query, request, None) {
                Ok(()) | Err(ServeError::Overloaded) => {
                    offered.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServeError::SlotBusy) => { /* saturated far past capacity */ }
                Err(e) => panic!("unexpected submit failure: {e}"),
            }
            fired += 1.0;
        }
        std::thread::sleep(tick);
    }
    let elapsed = started.elapsed();
    // Drain: let in-flight work finish before reading the histogram.
    for slot in &slots {
        while slot.is_pending() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let snap = server.metrics().snapshot();
    server.shutdown();
    Cell {
        workers,
        mode: format!("open-{label}"),
        offered_qps: Some(offered.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()),
        achieved_qps: snap.completed as f64 / elapsed.as_secs_f64(),
        p50: snap.p50,
        p99: snap.p99,
        rejection_rate: snap.rejection_rate(),
    }
}

fn fmt_us(d: Duration) -> String {
    format!("{:.1}", d.as_nanos() as f64 / 1000.0)
}

fn cell_json(cell: &Cell) -> String {
    json::object(&[
        ("workers", json::number(cell.workers as f64)),
        ("mode", json::string(&cell.mode)),
        (
            "offered_qps",
            cell.offered_qps.map_or_else(|| "null".to_string(), json::number),
        ),
        ("achieved_qps", json::number(cell.achieved_qps)),
        ("p50_us", json::number(cell.p50.as_nanos() as f64 / 1000.0)),
        ("p99_us", json::number(cell.p99.as_nanos() as f64 / 1000.0)),
        ("rejection_rate", json::number(cell.rejection_rate)),
    ])
}

fn main() {
    let scale = Scale::from_env();
    let window = cell_duration(scale);
    let worker_counts: &[usize] = match scale {
        Scale::Small => &[1, 2],
        Scale::Default => &[1, 2, 4, 8],
    };

    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, scale.base_size(), 256, 77);
    let base = Arc::new(base);
    let queries = Arc::new(queries);
    let index: Arc<dyn AnnIndex> = Arc::new(NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 24,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 7,
        },
    ));
    let request = SearchRequest::new(10).with_effort(60).with_stats();

    println!(
        "Serving throughput — NSG over {} pts, effort 60, k 10, {}ms per cell\n",
        base.len(),
        window.as_millis()
    );
    let mut table = Table::new(vec![
        "workers",
        "mode",
        "offered_qps",
        "achieved_qps",
        "p50_us",
        "p99_us",
        "rejected",
    ]);
    let mut cell_docs: Vec<String> = Vec::new();
    for &workers in worker_counts {
        let closed = run_closed_loop(&index, &queries, &request, workers, window);
        let capacity = closed.achieved_qps.max(1.0);
        let mut cells = vec![closed];
        for (fraction, label) in [(0.5, "50%"), (0.9, "90%"), (1.2, "120%")] {
            cells.push(run_open_loop(
                &index,
                &queries,
                &request,
                workers,
                capacity * fraction,
                label,
                window,
            ));
        }
        for cell in cells {
            cell_docs.push(cell_json(&cell));
            table.add_row(vec![
                cell.workers.to_string(),
                cell.mode.clone(),
                cell.offered_qps.map_or_else(|| "-".to_string(), |o| fmt_f64(o, 0)),
                fmt_f64(cell.achieved_qps, 0),
                fmt_us(cell.p50),
                fmt_us(cell.p99),
                format!("{:.1}%", cell.rejection_rate * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "closed(Nc) = N lock-step clients (saturation); open-X% = fixed offered rate at X% of\n\
         the measured closed-loop capacity. Past saturation the bounded queue caps queueing\n\
         delay and sheds the sustained excess as rejections."
    );

    let doc = json::object(&[
        ("experiment", json::string("serving_throughput")),
        (
            "scale",
            json::string(match scale {
                Scale::Small => "small",
                Scale::Default => "default",
            }),
        ),
        ("corpus", json::number(base.len() as f64)),
        ("dim", json::number(base.dim() as f64)),
        ("cell_ms", json::number(window.as_millis() as f64)),
        ("cells", json::array(&cell_docs)),
    ]);
    let path = output_dir().join("BENCH_serving_throughput.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
