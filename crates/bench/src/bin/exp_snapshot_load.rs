//! Snapshot open vs streaming decode: the zero-copy load-time experiment.
//!
//! The NSG2 snapshot's contract is an O(1) open: map the file, validate the
//! section table, borrow the arenas in place. The streaming NSG1+NSQ8 path
//! by contrast decodes every record into fresh owned arenas — O(index) work
//! before the first query can run. This experiment times both *cold paths to
//! a serving index* across increasing index sizes:
//!
//! * legacy: read the NSG1+NSQ8 composite + the fvecs base file, decode all
//!   three arenas, reassemble the two-phase index;
//! * snapshot: `Snapshot::open` (mmap + table validation) + `into_index`.
//!
//! Shape to check: legacy load grows linearly with the index while the
//! snapshot open stays flat, and at the default scale the snapshot path is
//! at least 10x faster. Both loaded indices must answer a probe query
//! identically to each other (bit-exact), or the speedup is measuring a
//! wrong answer.
//!
//! Environment knobs: `NSG_SCALE=small` shrinks the corpus (CI smoke).

use nsg_bench::common::{json, output_dir, Scale};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::serialize::{quantized_index_from_bytes, quantized_index_to_bytes};
use nsg_core::snapshot::{write_quantized_snapshot, Snapshot};
use nsg_eval::report::{fmt_f64, Table};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::io::{read_fvecs_from, write_fvecs_to};
use nsg_vectors::synthetic::uniform;
use std::sync::Arc;
use std::time::Instant;

const DIM: usize = 32;
const ITERATIONS: usize = 9;
const SPEEDUP_BAR: f64 = 10.0;

struct Point {
    n: usize,
    file_bytes: u64,
    legacy_decode_us: f64,
    snapshot_open_us: f64,
    speedup: f64,
}

/// Median of `ITERATIONS` timed runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..ITERATIONS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    let sizes: &[usize] = match scale {
        Scale::Small => &[500, 1000],
        Scale::Default => &[1500, 3000, 6000],
    };
    let dir = std::env::temp_dir().join(format!("nsg_snapshot_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let params = NsgParams {
        build_pool_size: 60,
        max_degree: 30,
        knn: NnDescentParams { k: 40, ..Default::default() },
        reverse_insert: true,
        seed: 13,
    };
    let request = SearchRequest::new(10).with_effort(100).with_rerank(4);

    println!(
        "Snapshot open vs streaming decode — dim {DIM}, {ITERATIONS} iterations per point (median)\n"
    );
    let mut points: Vec<Point> = Vec::new();
    for &n in sizes {
        let base = Arc::new(uniform(n, DIM, 17));
        let owned =
            NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params).quantize_sq8();

        // Legacy artifact: the NSG1+NSQ8 composite plus the fvecs base rows
        // (the pre-snapshot serving loadout for a two-phase index).
        let legacy_path = dir.join(format!("legacy_{n}.nsg"));
        let fvecs_path = dir.join(format!("legacy_{n}.fvecs"));
        let composite =
            quantized_index_to_bytes(owned.graph(), owned.navigating_node(), owned.store())
                .expect("encode composite");
        std::fs::write(&legacy_path, &composite).expect("write composite");
        let mut fvecs = Vec::new();
        write_fvecs_to(&mut fvecs, &base).expect("encode fvecs");
        std::fs::write(&fvecs_path, &fvecs).expect("write fvecs");

        // Snapshot artifact: one NSG2 file carrying the same index.
        let snap_path = dir.join(format!("snapshot_{n}.nsg2"));
        write_quantized_snapshot(&snap_path, &owned).expect("write snapshot");
        let file_bytes = std::fs::metadata(&snap_path).expect("stat snapshot").len();

        // Probe answers must be bit-identical across the three indices, or
        // the timing compares paths that do different things.
        let probe = base.get(0).to_vec();
        let want = owned.search(&probe, &request);

        let legacy_decode_us = median_us(|| {
            let composite = std::fs::read(&legacy_path).expect("read composite");
            let (graph, nav, store) =
                quantized_index_from_bytes(&composite).expect("decode composite");
            let rows = read_fvecs_from(std::io::Cursor::new(
                std::fs::read(&fvecs_path).expect("read fvecs"),
            ))
            .expect("decode fvecs");
            let index = NsgIndex::from_store_parts(
                Arc::new(store),
                Arc::new(rows),
                SquaredEuclidean,
                graph,
                nav,
                NsgParams::default(),
            );
            assert_eq!(index.search(&probe, &request), want, "legacy decode changed answers");
        });

        let snapshot_open_us = median_us(|| {
            let index = Snapshot::open(&snap_path).expect("open snapshot").into_index(
                NsgParams::default(),
            );
            let mut ctx = index.new_context();
            assert_eq!(
                index.search_into(&mut ctx, &request, &probe),
                want.as_slice(),
                "snapshot open changed answers"
            );
        });

        let speedup = legacy_decode_us / snapshot_open_us.max(1e-9);
        println!(
            "n = {n}: legacy decode {legacy_decode_us:.0} us, snapshot open {snapshot_open_us:.0} us, speedup {speedup:.1}x"
        );
        points.push(Point { n, file_bytes, legacy_decode_us, snapshot_open_us, speedup });
    }

    let mut table =
        Table::new(vec!["n", "file bytes", "legacy decode us", "snapshot open us", "speedup"]);
    for p in &points {
        table.add_row(vec![
            p.n.to_string(),
            p.file_bytes.to_string(),
            fmt_f64(p.legacy_decode_us, 1),
            fmt_f64(p.snapshot_open_us, 1),
            fmt_f64(p.speedup, 1) + "x",
        ]);
    }
    println!("\n{}", table.render());
    // The snapshot-open timing includes the probe query, so it is an upper
    // bound on the pure open; the flatness claim reads through that noise.
    let first = &points[0];
    let last = &points[points.len() - 1];
    println!(
        "open-time growth across a {:.1}x size range: {:.2}x (flat = O(1) open; decode grew {:.2}x)",
        last.n as f64 / first.n as f64,
        last.snapshot_open_us / first.snapshot_open_us.max(1e-9),
        last.legacy_decode_us / first.legacy_decode_us.max(1e-9),
    );

    let point_docs: Vec<String> = points
        .iter()
        .map(|p| {
            json::object(&[
                ("n", json::number(p.n as f64)),
                ("dim", json::number(DIM as f64)),
                ("snapshot_file_bytes", json::number(p.file_bytes as f64)),
                ("legacy_decode_us", json::number(p.legacy_decode_us)),
                ("snapshot_open_us", json::number(p.snapshot_open_us)),
                ("speedup", json::number(p.speedup)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("snapshot_load")),
        (
            "scale",
            json::string(match scale {
                Scale::Small => "small",
                Scale::Default => "default",
            }),
        ),
        ("iterations", json::number(ITERATIONS as f64)),
        ("speedup_bar", json::number(SPEEDUP_BAR)),
        ("points", json::array(&point_docs)),
    ]);
    let path = output_dir().join("BENCH_snapshot_load.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
    std::fs::remove_dir_all(&dir).ok();

    // Acceptance: at the default scale the largest point must clear the bar.
    if matches!(scale, Scale::Default) && last.speedup < SPEEDUP_BAR {
        eprintln!(
            "FAIL: snapshot open is only {:.1}x faster than streaming decode at n = {} (bar: {SPEEDUP_BAR}x)",
            last.speedup, last.n
        );
        std::process::exit(1);
    }
    println!("ok: snapshot open clears the {SPEEDUP_BAR}x bar at n = {}", last.n);
}
