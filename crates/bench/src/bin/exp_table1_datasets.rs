//! Table 1: dataset statistics — dimension, local intrinsic dimension (LID),
//! number of base vectors and number of query vectors — for the laptop-scale
//! stand-ins of the paper's datasets.
//!
//! Paper reference values (at full scale): SIFT1M D=128 LID=12.9,
//! GIST1M D=960 LID=29.1, RAND4M D=128 LID=49.5, GAUSS5M D=128 LID=48.1.

use nsg_bench::common::{output_dir, Scale};
use nsg_eval::report::{fmt_f64, Table};
use nsg_vectors::lid::{estimate_lid, LidConfig};
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};

fn main() {
    let scale = Scale::from_env();
    let n_base = scale.base_size();
    let n_query = scale.query_size();

    let mut table = Table::new(vec!["dataset", "paper-name", "D", "LID", "No. of base", "No. of query"]);
    for (i, kind) in [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    {
        let (base, queries) = base_and_queries(kind, n_base, n_query, 1000 + i as u64);
        let lid = estimate_lid(
            &base,
            LidConfig {
                k: 20,
                sample: 300.min(base.len()),
                seed: 42,
            },
        )
        .unwrap_or(f64::NAN);
        table.add_row(vec![
            kind.short_name().to_string(),
            kind.paper_name().to_string(),
            base.dim().to_string(),
            fmt_f64(lid, 1),
            base.len().to_string(),
            queries.len().to_string(),
        ]);
    }

    println!("Table 1 — dataset statistics (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("table1_datasets.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
