//! Table 2: graph-index statistics — memory under the fixed-degree layout,
//! average out-degree (AOD), maximum out-degree (MOD) and the percentage of
//! nodes linked to their exact nearest neighbor (NN%) — for every graph-based
//! method on each dataset.
//!
//! Paper shape to check: NSG has the smallest memory and the lowest AOD among
//! the graph methods while keeping NN% near 100; HNSW/FANNG lose a large
//! fraction of nearest-neighbor edges; DPG/KGraph/Efanna carry far larger
//! indices.

use nsg_bench::common::{build_graph_methods, output_dir, Scale};
use nsg_core::stats::{graph_index_stats, nn_percentage_from_exact};
use nsg_eval::report::{fmt_f64, Table};
use nsg_knn::build_exact_knn_graph;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(vec![
        "dataset", "algorithm", "memory(MB)", "AOD", "MOD", "NN(%)",
    ]);

    for (i, kind) in [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    {
        let (base, _) = base_and_queries(kind, scale.base_size(), scale.query_size(), 1000 + i as u64);
        let base = Arc::new(base);
        // Exact 1-NN reference used by the NN% column for every method.
        let exact = build_exact_knn_graph(&base, 1, &SquaredEuclidean);
        let built = build_graph_methods(&base);
        for b in &built {
            let stats = graph_index_stats(&b.graph, &base, &SquaredEuclidean);
            let nn_pct = nn_percentage_from_exact(&b.graph, &exact);
            table.add_row(vec![
                kind.short_name().to_string(),
                b.name.to_string(),
                fmt_f64(b.index.memory_bytes() as f64 / (1024.0 * 1024.0), 2),
                fmt_f64(stats.average_out_degree, 1),
                stats.max_out_degree.to_string(),
                fmt_f64(nn_pct, 1),
            ]);
        }
    }

    println!("Table 2 — graph-index statistics (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("table2_graph_stats.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
