//! Table 3: indexing time of all graph-based methods.
//!
//! The paper reports NSG's time as `t1 + t2` (kNN-graph construction plus
//! Algorithm 2); this binary does the same by timing the two NSG phases
//! separately, and reports a single wall-clock figure for every other method.
//!
//! Paper shape to check: NSG's own preprocessing (t2) is comparable to the
//! kNN-graph construction; FANNG is by far the slowest; KGraph/Efanna/DPG sit
//! between.

use nsg_bench::common::{build_graph_methods, output_dir, standard_knn_params, Scale};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_eval::report::Table;
use nsg_eval::timing::{format_duration, time_it};
use nsg_knn::build_nn_descent;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(vec!["dataset", "algorithm", "time"]);

    for (i, kind) in [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    {
        let (base, _) = base_and_queries(kind, scale.base_size(), scale.query_size(), 1000 + i as u64);
        let base = Arc::new(base);

        // NSG reported as t1 (kNN graph) + t2 (Algorithm 2).
        let knn_params = standard_knn_params();
        let (knn, t1) = time_it(|| build_nn_descent(&base, knn_params, &SquaredEuclidean));
        let (_nsg, t2) = time_it(|| {
            NsgIndex::build_from_knn(
                Arc::clone(&base),
                SquaredEuclidean,
                &knn,
                NsgParams {
                    build_pool_size: 60,
                    max_degree: 30,
                    knn: knn_params,
                    reverse_insert: true,
                    seed: 7,
                },
            )
        });
        table.add_row(vec![
            kind.short_name().to_string(),
            "NSG (t1+t2)".to_string(),
            format!("{}+{}", format_duration(t1), format_duration(t2)),
        ]);

        for b in build_graph_methods(&base) {
            if b.name == "NSG" {
                continue; // already reported as the split t1 + t2 row
            }
            table.add_row(vec![
                kind.short_name().to_string(),
                b.name.to_string(),
                format_duration(b.build_time),
            ]);
        }
    }

    println!("Table 3 — indexing time of the graph-based methods (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("table3_indexing_time.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
