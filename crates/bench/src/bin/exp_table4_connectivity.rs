//! Table 4: connectivity of the graph indices — the number of strongly
//! connected components (SCC) for the methods whose search starts from a
//! random node, and reachability-from-the-entry-point (recorded as 1 when
//! every node is reachable) for NSG and HNSW.
//!
//! Paper shape to check: only NSG and HNSW guarantee connectivity on every
//! dataset; the other methods fragment into multiple SCCs, increasingly so on
//! the harder (higher-LID) datasets.

use nsg_bench::common::{build_graph_methods, output_dir, Scale};
use nsg_core::stats::connectivity_metric;
use nsg_eval::report::Table;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(vec!["dataset", "algorithm", "SCC amount"]);

    for (i, kind) in [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    {
        let (base, _) = base_and_queries(kind, scale.base_size(), scale.query_size(), 1000 + i as u64);
        let base = Arc::new(base);
        for b in build_graph_methods(&base) {
            let scc = connectivity_metric(&b.graph, b.fixed_entry);
            table.add_row(vec![
                kind.short_name().to_string(),
                b.name.to_string(),
                scc.to_string(),
            ]);
        }
    }

    println!("Table 4 — graph connectivity (reproduction scale)\n");
    println!("{}", table.render());
    let csv = output_dir().join("table4_connectivity.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
