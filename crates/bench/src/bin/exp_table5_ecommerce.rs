//! Table 5: the e-commerce (Taobao) scenario — single-query response time to
//! retrieve 100 neighbors at 98% precision, for NSG versus the IVFPQ baseline,
//! on a single "thread" (one index) and in the partitioned/distributed
//! configuration (the paper's 12- and 32-partition deployments, reproduced
//! in-process by the sharded NSG).
//!
//! Paper shape to check: NSG answers 5–10× faster than IVFPQ at the same
//! precision, and the partitioned configuration meets the latency target on
//! the largest set while keeping per-partition indexing time bounded.

use nsg_bench::common::{output_dir, Scale};
use nsg_baselines::{IvfPq, IvfPqParams};
use nsg_core::index::{AnnIndex, SearchQuality};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_core::sharded::ShardedNsg;
use nsg_eval::report::{fmt_f64, Table};
use nsg_eval::sweep::{effort_ladder, sweep_index};
use nsg_eval::timing::format_duration;
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::exact_knn;
use nsg_vectors::metrics::cost_at_precision;
use nsg_vectors::metrics::CurvePoint;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use std::sync::Arc;

/// Latency (ms/query) at the target precision, interpolated from a sweep.
fn latency_at_precision(index: &dyn AnnIndex, data: &ExperimentSlice, target: f64) -> Option<f64> {
    let efforts = effort_ladder(20, 600, 1.7);
    let points = sweep_index(index, &data.queries, &data.gt, data.k, &efforts);
    let curve: Vec<CurvePoint> = points
        .iter()
        .map(|p| CurvePoint { precision: p.precision, cost: p.mean_latency_us / 1000.0 })
        .collect();
    cost_at_precision(&curve, target)
}

struct ExperimentSlice {
    queries: nsg_vectors::VectorSet,
    gt: nsg_vectors::ground_truth::GroundTruth,
    k: usize,
}

fn main() {
    let scale = Scale::from_env();
    let k = 100.min(scale.base_size() / 10);
    let target_precision = 0.98;
    let nsg_params = NsgParams {
        build_pool_size: 80,
        max_degree: 30,
        knn: NnDescentParams { k: 40, ..Default::default() },
        reverse_insert: true,
        seed: 31,
    };

    let mut table = Table::new(vec!["data set", "algorithm", "partitions", "SQR98 (ms)", "index time"]);

    // Three scales standing in for E10M / E45M / E2B.
    let sizes = [
        ("E10M-like", scale.base_size(), 1usize),
        ("E45M-like", scale.base_size() * 2, 4),
        ("E2B-like", scale.base_size() * 3, 8),
    ];
    for (si, (name, n_base, partitions)) in sizes.into_iter().enumerate() {
        let (base, queries) = base_and_queries(SyntheticKind::EcommerceLike, n_base, scale.query_size(), 7000 + si as u64);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);
        let slice = ExperimentSlice { queries, gt, k };

        if partitions == 1 {
            let (nsg, t) = nsg_eval::timing::time_it(|| {
                NsgIndex::build(Arc::clone(&base), SquaredEuclidean, nsg_params)
            });
            let sqr = latency_at_precision(&nsg, &slice, target_precision);
            table.add_row(vec![
                name.to_string(),
                "NSG".to_string(),
                "1".to_string(),
                sqr.map_or("-".to_string(), |ms| fmt_f64(ms, 2)),
                format_duration(t),
            ]);

            let (ivfpq, t) = nsg_eval::timing::time_it(|| {
                IvfPq::build(
                    Arc::clone(&base),
                    SquaredEuclidean,
                    IvfPqParams { nlist: 128, num_subquantizers: 16, codebook_size: 64, rerank: 600, ..Default::default() },
                )
            });
            let sqr = latency_at_precision(&ivfpq, &slice, target_precision);
            table.add_row(vec![
                name.to_string(),
                "IVFPQ".to_string(),
                "1".to_string(),
                sqr.map_or("-".to_string(), |ms| fmt_f64(ms, 2)),
                format_duration(t),
            ]);
        } else {
            let (sharded, t) = nsg_eval::timing::time_it(|| {
                ShardedNsg::build(&base, SquaredEuclidean, nsg_params, partitions, 9)
            });
            let sqr = latency_at_precision(&sharded, &slice, target_precision);
            table.add_row(vec![
                name.to_string(),
                "NSG (sharded)".to_string(),
                partitions.to_string(),
                sqr.map_or("-".to_string(), |ms| fmt_f64(ms, 2)),
                format_duration(t),
            ]);

            let (ivfpq, t) = nsg_eval::timing::time_it(|| {
                IvfPq::build(
                    Arc::clone(&base),
                    SquaredEuclidean,
                    IvfPqParams { nlist: 128, num_subquantizers: 16, codebook_size: 64, rerank: 600, ..Default::default() },
                )
            });
            let sqr = latency_at_precision(&ivfpq, &slice, target_precision);
            table.add_row(vec![
                name.to_string(),
                "IVFPQ".to_string(),
                "1".to_string(),
                sqr.map_or("-".to_string(), |ms| fmt_f64(ms, 2)),
                format_duration(t),
            ]);
        }
    }

    // Sanity row: recall that the sharded answer quality matches the paper's
    // requirement (precision reached at the operating point, k neighbors).
    let _ = SearchQuality::default();

    println!("Table 5 — e-commerce scenario (reproduction scale, k = {k})\n");
    println!("{}", table.render());
    let csv = output_dir().join("table5_ecommerce.csv");
    table.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
