//! Shared plumbing of the experiment binaries: experiment scale selection,
//! standard index construction for the graph-method comparisons, and output
//! locations.

use nsg_baselines::{
    DpgIndex, DpgParams, EfannaIndex, EfannaParams, FanngIndex, FanngParams, HnswIndex, HnswParams,
    KGraphIndex, KGraphParams, NsgNaiveIndex, NsgNaiveParams,
};
use nsg_core::graph::CompactGraph;
use nsg_core::index::AnnIndex;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_knn::NnDescentParams;
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::VectorSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Experiment scale, selected with the `NSG_SCALE` environment variable
/// (`small` for quick smoke runs, anything else for the default scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick smoke-test scale (used by CI and the binaries' own tests).
    Small,
    /// Default laptop scale used for the recorded EXPERIMENTS.md numbers.
    Default,
}

impl Scale {
    /// Reads the scale from the `NSG_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("NSG_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            _ => Scale::Default,
        }
    }

    /// Base-set size for the million-scale stand-ins.
    pub fn base_size(self) -> usize {
        match self {
            Scale::Small => 1500,
            Scale::Default => 6000,
        }
    }

    /// Query-set size.
    pub fn query_size(self) -> usize {
        match self {
            Scale::Small => 40,
            Scale::Default => 100,
        }
    }
}

/// Where experiment CSVs are written (`target/experiments/`).
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Minimal JSON emission for the committed `BENCH_*.json` artifacts.
///
/// The offline build's serde shim strips the derives to no-ops, so the
/// experiment binaries render their machine-readable summaries by hand.
/// The fragment combinators live in `nsg-obs` now — the registry's own
/// [`snapshot_json`](nsg_obs::Registry::snapshot_json) exporter is built on
/// them — and are re-exported here so every experiment binary keeps its
/// `common::json::*` call sites.
pub use nsg_obs::json;

/// A built graph-based index together with the pieces the tables report:
/// its name, its graph view, its fixed entry point (if any) and its build
/// time.
pub struct BuiltGraphIndex {
    /// Paper name of the algorithm.
    pub name: &'static str,
    /// The searchable index.
    pub index: Box<dyn AnnIndex>,
    /// The frozen graph the index traverses (HNSW reports its bottom layer).
    pub graph: CompactGraph,
    /// The fixed entry point, for the connectivity metric of Table 4
    /// (`None` for methods that start from random nodes).
    pub fixed_entry: Option<u32>,
    /// Wall-clock build time.
    pub build_time: Duration,
}

/// Standard kNN-graph parameters of the graph-method comparison (the paper
/// builds all kNN-graph-based methods from comparable substrates).
pub fn standard_knn_params() -> NnDescentParams {
    NnDescentParams { k: 40, ..Default::default() }
}

/// Builds every graph-based method of Tables 2–4 / Figure 6 on one dataset.
pub fn build_graph_methods(base: &Arc<VectorSet>) -> Vec<BuiltGraphIndex> {
    let knn = standard_knn_params();
    let mut out = Vec::new();

    let (nsg, t) = nsg_eval::timing::time_it(|| {
        NsgIndex::build(
            Arc::clone(base),
            SquaredEuclidean,
            NsgParams {
                build_pool_size: 60,
                max_degree: 30,
                knn,
                reverse_insert: true,
                seed: 7,
            },
        )
    });
    out.push(BuiltGraphIndex {
        name: "NSG",
        graph: nsg.graph().clone(),
        fixed_entry: Some(nsg.navigating_node()),
        build_time: t,
        index: Box::new(nsg),
    });

    let (hnsw, t) = nsg_eval::timing::time_it(|| {
        HnswIndex::build(Arc::clone(base), SquaredEuclidean, HnswParams { m: 16, ..Default::default() })
    });
    out.push(BuiltGraphIndex {
        name: "HNSW",
        graph: hnsw.bottom_layer_graph().clone(),
        fixed_entry: Some(hnsw.entry_point()),
        build_time: t,
        index: Box::new(hnsw),
    });

    let (fanng, t) = nsg_eval::timing::time_it(|| {
        FanngIndex::build(Arc::clone(base), SquaredEuclidean, FanngParams { knn, ..Default::default() })
    });
    out.push(BuiltGraphIndex {
        name: "FANNG",
        graph: fanng.graph().clone(),
        fixed_entry: None,
        build_time: t,
        index: Box::new(fanng),
    });

    let (efanna, t) = nsg_eval::timing::time_it(|| {
        EfannaIndex::build(Arc::clone(base), SquaredEuclidean, EfannaParams { knn, ..Default::default() })
    });
    out.push(BuiltGraphIndex {
        name: "Efanna",
        graph: efanna.graph().clone(),
        fixed_entry: None,
        build_time: t,
        index: Box::new(efanna),
    });

    let (kgraph, t) = nsg_eval::timing::time_it(|| {
        KGraphIndex::build(Arc::clone(base), SquaredEuclidean, KGraphParams { knn, ..Default::default() })
    });
    out.push(BuiltGraphIndex {
        name: "KGraph",
        graph: kgraph.graph().clone(),
        fixed_entry: None,
        build_time: t,
        index: Box::new(kgraph),
    });

    let (dpg, t) = nsg_eval::timing::time_it(|| {
        DpgIndex::build(Arc::clone(base), SquaredEuclidean, DpgParams { knn, ..Default::default() })
    });
    out.push(BuiltGraphIndex {
        name: "DPG",
        graph: dpg.graph().clone(),
        fixed_entry: None,
        build_time: t,
        index: Box::new(dpg),
    });

    let (naive, t) = nsg_eval::timing::time_it(|| {
        NsgNaiveIndex::build(
            Arc::clone(base),
            SquaredEuclidean,
            NsgNaiveParams { knn, max_degree: 30, ..Default::default() },
        )
    });
    out.push(BuiltGraphIndex {
        name: "NSG-Naive",
        graph: naive.graph().clone(),
        fixed_entry: None,
        build_time: t,
        index: Box::new(naive),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::synthetic::uniform;

    #[test]
    fn scale_from_env_is_well_formed() {
        let s = Scale::from_env();
        assert!(matches!(s, Scale::Small | Scale::Default));
        assert!(Scale::Small.base_size() < Scale::Default.base_size());
        assert!(Scale::Small.query_size() < Scale::Default.query_size());
    }

    #[test]
    fn json_fragments_compose_into_valid_documents() {
        assert_eq!(json::string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json::number(0.25), "0.25");
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::number(f64::INFINITY), "null");
        let doc = json::object(&[
            ("name", json::string("nsg")),
            ("points", json::array(&[json::number(1.0), json::number(2.5)])),
        ]);
        assert_eq!(doc, "{\"name\": \"nsg\", \"points\": [1, 2.5]}");
    }

    #[test]
    fn all_seven_graph_methods_build_on_a_small_set() {
        let base = Arc::new(uniform(400, 8, 3));
        let built = build_graph_methods(&base);
        let names: Vec<&str> = built.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["NSG", "HNSW", "FANNG", "Efanna", "KGraph", "DPG", "NSG-Naive"]
        );
        for b in &built {
            assert_eq!(b.graph.num_nodes(), 400);
            assert!(b.build_time.as_nanos() > 0);
        }
    }
}
