//! Shared helpers for the experiment binaries and Criterion benches.

pub mod common;
