//! Reusable per-thread search scratch: [`SearchContext`].
//!
//! Every query needs a visited set, a candidate pool and a result buffer.
//! Allocating them per query is pure overhead on the hot path the paper's
//! whole evaluation measures (§4, Figs. 6–11), so the query API threads a
//! [`SearchContext`] through every search instead: create one per worker
//! thread with [`AnnIndex::new_context`](crate::index::AnnIndex::new_context),
//! reuse it across queries, and the hot loop performs **zero heap
//! allocation** after the first search warms the buffers (guarded by the
//! `alloc_guard` integration test).
//!
//! # Context-reuse contract
//!
//! * A context is scratch for **one thread**: it is `Send` but not shared —
//!   batch search hands one context to each worker.
//! * A context may be reused freely across queries, requests and indices;
//!   buffers grow to the largest size seen and stay warm.
//! * After `search_into` returns, [`results`](SearchContext::results) holds
//!   the answer and [`stats`](SearchContext::stats) the instrumentation of
//!   that search — both are overwritten by the next search.

use crate::neighbor::{CandidatePool, Neighbor};
use crate::search::{SearchStats, VisitedSet};
use nsg_obs::{QueryTrace, TraceRecorder};
use nsg_vectors::distance::Distance;
use nsg_vectors::store::QueryScratch;
use nsg_vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reusable per-thread scratch for the query hot path.
///
/// The fields are public so index implementations in other crates can use the
/// buffers directly; applications should treat a context as an opaque token
/// and only read [`results`](Self::results) / [`stats`](Self::stats).
#[derive(Debug, Clone)]
pub struct SearchContext {
    /// Epoch-based visited bitmap, sized to the largest base set searched.
    pub visited: VisitedSet,
    /// The Algorithm 1 candidate pool, re-targeted per request.
    pub pool: CandidatePool,
    /// The answer of the last search (ascending distance).
    pub results: Vec<Neighbor>,
    /// Entry-point scratch (random or tree-provided start nodes).
    pub entries: Vec<u32>,
    /// Scored-candidate scratch for rerank / merge style indices.
    pub scored: Vec<Neighbor>,
    /// Prepared-query scratch of the [`VectorStore`](nsg_vectors::store::VectorStore)
    /// protocol: the search loop prepares the query here once per search, so
    /// quantized stores get their expanded query form without a per-query
    /// allocation.
    pub query_scratch: QueryScratch,
    /// Instrumentation of the last search.
    pub stats: SearchStats,
    /// Sampled query-path tracer: indices arm it per request
    /// (`SearchRequest::with_trace(n)` traces 1-in-`n` queries), the shared
    /// search loop timestamps stages into it, and
    /// [`trace`](Self::trace) surfaces the breakdown of a sampled query.
    pub tracer: TraceRecorder,
}

impl SearchContext {
    /// Creates an empty context; buffers grow on first use.
    pub fn new() -> Self {
        Self::for_points(0)
    }

    /// Creates a context pre-sized for an index over `num_points` vectors,
    /// so even the first search avoids resizing the visited set.
    pub fn for_points(num_points: usize) -> Self {
        Self {
            visited: VisitedSet::new(num_points),
            pool: CandidatePool::new(1),
            results: Vec::new(),
            entries: Vec::new(),
            scored: Vec::new(),
            query_scratch: QueryScratch::new(),
            stats: SearchStats::default(),
            tracer: TraceRecorder::new(),
        }
    }

    /// The answer of the last `search_into` call (ascending distance).
    pub fn results(&self) -> &[Neighbor] {
        &self.results
    }

    /// Instrumentation of the last `search_into` call.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// The per-stage trace of the last `search_into` call, present iff that
    /// query was sampled (`SearchRequest::with_trace`). Like
    /// [`results`](Self::results), it is overwritten by the next search.
    pub fn trace(&self) -> Option<QueryTrace> {
        self.tracer.trace()
    }

    /// Scores every candidate id currently in [`entries`](Self::entries)
    /// against `query` and leaves the best `k` in [`results`](Self::results)
    /// — the shared tail of the rerank-style baselines (KD-tree forest,
    /// multi-probe LSH): gather candidates, re-rank with exact distances,
    /// truncate. Stats report one distance computation per candidate; an
    /// empty candidate set or `k == 0` yields empty results and zero stats.
    pub fn rerank_entries<D: Distance + ?Sized>(
        &mut self,
        base: &VectorSet,
        metric: &D,
        query: &[f32],
        k: usize,
    ) {
        self.results.clear();
        self.stats = SearchStats::default();
        if self.entries.is_empty() || k == 0 {
            return;
        }
        self.pool.reset(k.min(self.entries.len()));
        let entries = &self.entries;
        let pool = &mut self.pool;
        for &id in entries {
            pool.insert(id, metric.distance(query, base.get(id as usize)));
        }
        self.pool.top_k_into(k, &mut self.results);
        self.stats = SearchStats {
            distance_computations: self.entries.len() as u64,
            hops: 0,
            visited: self.entries.len() as u64,
        };
    }

    /// Fills [`entries`](Self::entries) with `count` random node ids drawn
    /// from `0..num_points`, seeded by `seed ^ salt`.
    ///
    /// This is the pool-filling random initialization the released
    /// KGraph/Efanna searches use (and Figure 8's reason for charging the
    /// random-entry methods a large distance budget): seeding the *entire*
    /// pool with random points keeps weakly-connected regions of a directed
    /// graph reachable. The salt must vary per query (see
    /// `nsg_vectors::sample::query_salt`) so entry points are deterministic
    /// per query content but not shared across queries.
    pub fn fill_random_entries(&mut self, num_points: usize, count: usize, seed: u64, salt: u64) {
        self.entries.clear();
        if num_points == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ salt);
        self.entries
            .extend((0..count.max(1)).map(|_| rng.random_range(0..num_points as u32)));
    }
}

impl Default for SearchContext {
    fn default() -> Self {
        Self::new()
    }
}

/// A lazily created, **worker-pinned** [`SearchContext`] — the one shared
/// helper behind every "one context per worker thread" call site:
/// [`AnnIndex::search_batch`](crate::index::AnnIndex::search_batch) hands one
/// to each fork-join worker via the rayon `map_init` hook, and `nsg-serve`
/// pins one to each long-lived serving thread.
///
/// The context is created from the **first** index searched (pre-sized for
/// it) and then reused for every later query — including queries against a
/// *different* index, as the context-reuse contract allows: buffers grow once
/// per new high-water mark (e.g. after a hot-swap to a larger index) and stay
/// warm after, so the steady-state query path allocates nothing.
#[derive(Debug, Default)]
pub struct PinnedContext {
    ctx: Option<SearchContext>,
}

impl PinnedContext {
    /// Creates an empty pin; the context materializes on the first search.
    pub fn new() -> Self {
        Self { ctx: None }
    }

    /// Answers one query on `index`, creating the context on first use and
    /// reusing it afterwards. Returns the scored neighbors exactly as
    /// [`AnnIndex::search_into`](crate::index::AnnIndex::search_into) does;
    /// [`results`](Self::results) and [`stats`](Self::stats) hold the same
    /// answer until the next search.
    pub fn search<'a, I>(
        &'a mut self,
        index: &I,
        request: &crate::index::SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor]
    where
        I: crate::index::AnnIndex + ?Sized,
    {
        let ctx = self.ctx.get_or_insert_with(|| index.new_context());
        index.search_into(ctx, request, query)
    }

    /// The answer of the last [`search`](Self::search) (empty before any).
    pub fn results(&self) -> &[Neighbor] {
        self.ctx.as_ref().map(|c| c.results()).unwrap_or(&[])
    }

    /// Instrumentation of the last [`search`](Self::search).
    pub fn stats(&self) -> SearchStats {
        self.ctx.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The per-stage trace of the last [`search`](Self::search), present iff
    /// that query was sampled (`SearchRequest::with_trace`).
    pub fn trace(&self) -> Option<QueryTrace> {
        self.ctx.as_ref().and_then(|c| c.trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_is_empty() {
        let ctx = SearchContext::new();
        assert!(ctx.results().is_empty());
        assert_eq!(ctx.stats(), SearchStats::default());
    }

    #[test]
    fn random_entries_are_in_range_and_salted() {
        let mut ctx = SearchContext::for_points(100);
        ctx.fill_random_entries(50, 16, 7, 1);
        assert_eq!(ctx.entries.len(), 16);
        assert!(ctx.entries.iter().all(|&e| e < 50));
        let first = ctx.entries.clone();
        ctx.fill_random_entries(50, 16, 7, 2);
        assert_ne!(first, ctx.entries, "different salts must move the entry points");
        ctx.fill_random_entries(50, 16, 7, 1);
        assert_eq!(first, ctx.entries, "same seed and salt must be deterministic");
    }

    #[test]
    fn empty_base_yields_no_entries() {
        let mut ctx = SearchContext::new();
        ctx.fill_random_entries(0, 8, 3, 9);
        assert!(ctx.entries.is_empty());
    }
}
