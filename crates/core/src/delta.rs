//! Live mutation: a delta layer over a frozen [`NsgIndex`].
//!
//! NSG's offline pipeline (Algorithm 2) produces a frozen CSR graph that
//! cannot absorb inserts or deletes. A [`MutableIndex`] makes the frozen
//! index serve a churning corpus by layering three small structures on top:
//!
//! * a **delta graph** — an NSW-style incrementally built [`DirectedGraph`]
//!   over the vectors inserted since the last freeze. Malkov & Yashunin's
//!   observation that "insertions are handled the same way as queries"
//!   applies directly: a new point is located by running Algorithm 1 against
//!   the frozen base *and* the current delta graph, then linked
//!   bidirectionally to its nearest delta neighbors (degree-capped with a
//!   distance prune, as in the NSW baseline);
//! * **anchors** — for every inserted point, the ids of its nearest frozen
//!   base neighbors found at insert time. Queries seed the delta search from
//!   the anchors adjacent to their base answer (plus salted random entries),
//!   so the delta traversal starts inside the query's true neighborhood
//!   instead of relying on random entries alone;
//! * a **tombstone bitmap** over the combined `base + delta` id space.
//!   Deleting is setting a bit. Tombstoned nodes keep their edges and stay
//!   traversable — removing them would disconnect the graph — and are
//!   filtered only when results are extracted, so navigability is unaffected.
//!
//! Search runs Algorithm 1 on the base CSR, runs the same loop on the delta
//! graph, and merges both answers through the context's scored buffer; the
//! warm mutate-free query path performs **zero heap allocation** (enforced
//! by `tests/alloc_guard.rs`). Readers hold the state read-lock for the
//! duration of one query; writers serialize on the write lock.
//!
//! [`compact`](MutableIndex::compact) folds the layers back down: it gathers
//! the live rows (base + delta minus tombstones), re-runs the full Algorithm 2
//! build over them, and returns a successor index with an empty delta. The
//! old index is **sealed** — replaying any mutation that raced the rebuild
//! into the successor first — so a serving layer can install the successor
//! (e.g. via `IndexHandle::swap`) without losing writes: mutations rejected
//! with [`MutateError::Sealed`] are retried against the successor. External
//! ids are renumbered by compaction; they are only meaningful relative to
//! the index generation that returned them.

use crate::context::SearchContext;
use crate::graph::DirectedGraph;
use crate::index::{AnnIndex, SearchRequest};
use crate::neighbor::Neighbor;
use crate::nsg::{NsgIndex, NsgParams};
use crate::search::{
    search_from_context_entries, search_on_graph_into, SearchParams, SearchStats,
};
use nsg_obs::TraceStage;
use nsg_vectors::distance::Distance;
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::sample::query_salt;
use nsg_vectors::store::VectorStore;
use nsg_vectors::VectorSet;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Growable tombstone bitmap over the combined `base + delta` id space
/// (the `fixedbitset` shape: one bit per id, 64 ids per word).
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    bits: Vec<u64>,
    population: usize,
}

impl Tombstones {
    /// An empty set; words are allocated on first `set`.
    pub fn new() -> Self {
        Self { bits: Vec::new(), population: 0 }
    }

    /// Marks `id` dead. Returns `false` if it already was.
    pub fn set(&mut self, id: u32) -> bool {
        let word = id as usize / 64;
        let mask = 1u64 << (id % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.population += 1;
        true
    }

    /// Whether `id` is tombstoned. Ids past the allocated words are live —
    /// the query path probes with delta ids that may postdate the last `set`.
    // lint:hot-path
    pub fn contains(&self, id: u32) -> bool {
        self.bits
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of tombstoned ids.
    pub fn count(&self) -> usize {
        self.population
    }

    /// Whether no id is tombstoned.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    /// Resident bytes of the bitmap.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>() + std::mem::size_of::<usize>()
    }
}

/// Construction knobs of the delta layer. The defaults are derived from the
/// base index's [`NsgParams`] so the delta search effort matches what the
/// frozen graph was built with.
#[derive(Debug, Clone, Copy)]
pub struct DeltaConfig {
    /// Out-degree target `m` of delta nodes: each insert links to its `m`
    /// nearest delta neighbors bidirectionally, and a node whose in-links
    /// push it past `2m` is pruned back to its `m` closest.
    pub max_degree: usize,
    /// Candidate pool `l` of the insert-time searches (both the base-anchor
    /// search and the delta link search).
    pub build_pool_size: usize,
    /// How many frozen-base neighbors are recorded as anchors per insert.
    pub anchor_count: usize,
    /// Seed of the salted random entries of the delta search.
    pub seed: u64,
}

impl DeltaConfig {
    /// Derives a delta configuration from the base index's build parameters.
    pub fn from_nsg(params: &NsgParams) -> Self {
        Self {
            max_degree: params.max_degree.max(1),
            build_pool_size: params.build_pool_size.max(1),
            anchor_count: 4,
            seed: params.seed,
        }
    }
}

impl Default for DeltaConfig {
    fn default() -> Self {
        Self::from_nsg(&NsgParams::default())
    }
}

/// A point-in-time census of the delta layer, used by serving layers to
/// decide when to compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Rows in the frozen base.
    pub base_len: usize,
    /// Rows inserted since the last freeze.
    pub delta_len: usize,
    /// Tombstoned ids (base or delta).
    pub tombstones: usize,
    /// Whether a completed compaction sealed this index.
    pub sealed: bool,
}

impl DeltaStats {
    /// Total addressable ids (live + tombstoned).
    pub fn total(&self) -> usize {
        self.base_len + self.delta_len
    }

    /// Ids that a search may return.
    pub fn live(&self) -> usize {
        self.total().saturating_sub(self.tombstones)
    }

    /// Fraction of the corpus living in the delta graph (0 when empty).
    pub fn delta_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.delta_len as f64 / self.total() as f64
        }
    }

    /// Fraction of ids that are tombstoned (0 when empty).
    pub fn tombstone_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.tombstones as f64 / self.total() as f64
        }
    }
}

/// Why a mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutateError {
    /// A completed compaction sealed this index; retry against the
    /// successor returned by [`MutableIndex::compact`].
    Sealed,
    /// The vector's dimensionality differs from the base set's.
    DimMismatch {
        /// The base set's dimensionality.
        expected: usize,
        /// The submitted vector's length.
        got: usize,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::Sealed => {
                write!(f, "index sealed by compaction; mutate the successor")
            }
            MutateError::DimMismatch { expected, got } => {
                write!(f, "vector has {got} dimensions, index expects {expected}")
            }
        }
    }
}

impl std::error::Error for MutateError {}

/// The mutable half of [`MutableIndex`], guarded by one `RwLock`: queries
/// take it shared for the duration of a search, mutations take it exclusive.
#[derive(Debug)]
struct DeltaState {
    /// Vectors inserted since the last freeze (delta id = row index).
    rows: VectorSet,
    /// NSW-style incremental graph over the delta rows.
    links: DirectedGraph,
    /// Frozen base id → delta ids anchored to it at insert time.
    anchors: HashMap<u32, Vec<u32>>,
    /// Dead ids over the combined `base + delta` space.
    tombstones: Tombstones,
    /// Reused scratch of the insert-time searches.
    writer: SearchContext,
    /// Set once a compaction has replayed this state into its successor;
    /// all further mutations are rejected with [`MutateError::Sealed`].
    sealed: bool,
}

/// What [`MutableIndex::compact`] gathered, kept so mutations that raced the
/// rebuild can be replayed into the successor before the old index seals.
struct ReplayPlan {
    /// Old external id → compacted id (`u32::MAX` for dropped rows).
    old_to_new: Vec<u32>,
    /// Delta length at gather time; later rows are replayed as inserts.
    gathered_delta: usize,
    /// Tombstones at gather time; bits set later are replayed as deletes.
    gathered_tombstones: Tombstones,
}

/// A frozen [`NsgIndex`] plus a mutable delta layer: the serving-time
/// insert/delete story (see the module docs for the design).
///
/// Cloning is deliberately not offered: wrap the index in an [`Arc`] and
/// share it — queries only need `&self`.
pub struct MutableIndex<D, S: VectorStore = VectorSet> {
    base: NsgIndex<D, S>,
    /// Copy of the base metric, taken once at construction so the query and
    /// insert paths stay monomorphized without touching the accessor.
    metric: D,
    config: DeltaConfig,
    state: RwLock<DeltaState>,
}

impl<D: Distance + Clone + Sync, S: VectorStore> MutableIndex<D, S> {
    /// Wraps a frozen index with an empty delta layer; the delta
    /// configuration is derived from the base build parameters.
    pub fn new(base: NsgIndex<D, S>) -> Self {
        let config = DeltaConfig::from_nsg(base.params());
        Self::with_config(base, config)
    }

    /// Wraps a frozen index with an explicit delta configuration.
    pub fn with_config(base: NsgIndex<D, S>, config: DeltaConfig) -> Self {
        // lint:allow(dyn-distance): one-time metric copy at construction keeps the hot paths monomorphized
        let metric = base.metric().clone();
        let dim = base.base().dim();
        Self {
            base,
            metric,
            config,
            state: RwLock::new(DeltaState {
                rows: VectorSet::new(dim),
                links: DirectedGraph::new(0),
                anchors: HashMap::new(),
                tombstones: Tombstones::new(),
                writer: SearchContext::new(),
                sealed: false,
            }),
        }
    }

    /// The frozen base index.
    pub fn base(&self) -> &NsgIndex<D, S> {
        &self.base
    }

    /// The delta-layer configuration.
    pub fn config(&self) -> &DeltaConfig {
        &self.config
    }

    /// A point-in-time census of the delta layer.
    pub fn delta_stats(&self) -> DeltaStats {
        let st = self.state.read();
        DeltaStats {
            base_len: self.base.base().len(),
            delta_len: st.rows.len(),
            tombstones: st.tombstones.count(),
            sealed: st.sealed,
        }
    }

    /// Inserts a vector, returning its external id (`base_len + delta id`).
    ///
    /// The new point is located with the same searches a query runs (base
    /// CSR from the navigating node, delta graph from salted random
    /// entries), linked bidirectionally to its nearest delta neighbors, and
    /// anchored to its nearest frozen base neighbors so later queries seed
    /// the delta search from it. The insert path may allocate — only the
    /// mutate-free query path carries the zero-allocation contract.
    pub fn insert(&self, vector: &[f32]) -> Result<u32, MutateError> {
        let dim = self.base.base().dim();
        if vector.len() != dim {
            return Err(MutateError::DimMismatch { expected: dim, got: vector.len() });
        }
        let mut guard = self.state.write();
        let st = &mut *guard;
        if st.sealed {
            return Err(MutateError::Sealed);
        }
        let base_len = self.base.base().len();
        let effort = self.config.build_pool_size.max(self.config.max_degree).max(1);
        // Insert-time candidate searches use the build pool `l`, exactly like
        // the NSW baseline's construction searches.
        // lint:allow(params-construction): build-time search, not a query-path effort knob
        let params = SearchParams::new(effort, effort);

        // Anchor candidates: Algorithm 1 on the frozen base.
        st.writer.scored.clear();
        if base_len > 0 {
            search_on_graph_into(
                self.base.graph(),
                self.base.store().as_ref(),
                vector,
                &[self.base.navigating_node()],
                params,
                &self.metric,
                &mut st.writer,
            );
            let scored = &mut st.writer.scored;
            scored.extend_from_slice(&st.writer.results);
        }

        // Link candidates: the same loop on the current delta graph, seeded
        // from salted random entries plus delta nodes anchored near the base
        // answer.
        let internal = st.rows.len() as u32;
        if !st.rows.is_empty() {
            let entry_count = params.pool_size.min(st.rows.len());
            st.writer.fill_random_entries(
                st.rows.len(),
                entry_count,
                self.config.seed,
                query_salt(vector),
            );
            for i in 0..st.writer.scored.len() {
                if let Some(anchored) = st.anchors.get(&st.writer.scored[i].id) {
                    st.writer.entries.extend_from_slice(anchored);
                }
            }
            search_from_context_entries(&st.links, &st.rows, vector, params, &self.metric, &mut st.writer);
        } else {
            st.writer.results.clear();
        }

        // Append the node and link it into the delta graph.
        st.rows.push(vector);
        let node = st.links.push_node();
        debug_assert_eq!(node, internal);
        let m = self.config.max_degree.max(1);
        for i in 0..st.writer.results.len().min(m) {
            let cand = st.writer.results[i].id;
            st.links.add_edge(internal, cand);
            st.links.add_edge(cand, internal);
            if st.links.out_degree(cand) > 2 * m {
                prune_delta_node(&mut st.links, &st.rows, &self.metric, cand, m);
            }
        }

        // Record the frozen-base anchors.
        let anchor_n = self.config.anchor_count.min(st.writer.scored.len());
        for i in 0..anchor_n {
            let base_id = st.writer.scored[i].id;
            st.anchors.entry(base_id).or_default().push(internal);
        }
        Ok(base_len as u32 + internal)
    }

    /// Tombstones an external id (base or delta). Returns `Ok(true)` when
    /// the id was live, `Ok(false)` when it was already dead or out of
    /// range; the vector and its edges remain in the graph (navigability is
    /// preserved), it just stops being returned.
    pub fn delete(&self, id: u32) -> Result<bool, MutateError> {
        let mut guard = self.state.write();
        let st = &mut *guard;
        if st.sealed {
            return Err(MutateError::Sealed);
        }
        let total = self.base.base().len() + st.rows.len();
        if (id as usize) >= total {
            return Ok(false);
        }
        Ok(st.tombstones.set(id))
    }

    /// Gathers the live rows (base + delta minus tombstones) and the replay
    /// bookkeeping for [`seal_and_replay`](Self::seal_and_replay).
    fn gather_live(&self) -> (VectorSet, ReplayPlan) {
        let st = self.state.read();
        let base_rows = self.base.base();
        let base_len = base_rows.len();
        let total = base_len + st.rows.len();
        let mut rows = VectorSet::with_capacity(base_rows.dim(), total);
        let mut old_to_new = vec![u32::MAX; total];
        for (ext, slot) in old_to_new.iter_mut().enumerate() {
            if st.tombstones.contains(ext as u32) {
                continue;
            }
            let row = if ext < base_len {
                base_rows.get(ext)
            } else {
                st.rows.get(ext - base_len)
            };
            *slot = rows.len() as u32;
            rows.push(row);
        }
        let plan = ReplayPlan {
            old_to_new,
            gathered_delta: st.rows.len(),
            gathered_tombstones: st.tombstones.clone(),
        };
        (rows, plan)
    }

    /// Replays every mutation that landed after `plan` was gathered into
    /// `fresh`, then seals `self`. Runs under the exclusive state lock, so
    /// once this returns no write can ever land on `self` again — the
    /// successor misses nothing.
    fn seal_and_replay<S2: VectorStore>(&self, plan: &ReplayPlan, fresh: &MutableIndex<D, S2>) {
        let mut guard = self.state.write();
        let st = &mut *guard;
        let base_len = self.base.base().len();
        // Inserts that postdate the gather (skipping ones already deleted).
        for internal in plan.gathered_delta..st.rows.len() {
            let ext = (base_len + internal) as u32;
            if st.tombstones.contains(ext) {
                continue;
            }
            // Same dimensionality and an unsealed successor: cannot fail.
            let _ = fresh.insert(st.rows.get(internal));
        }
        // Deletes that postdate the gather, remapped to compacted ids.
        let gathered_total = base_len + plan.gathered_delta;
        for ext in 0..gathered_total as u32 {
            if st.tombstones.contains(ext) && !plan.gathered_tombstones.contains(ext) {
                let new_id = plan.old_to_new[ext as usize];
                if new_id != u32::MAX {
                    let _ = fresh.delete(new_id);
                }
            }
        }
        st.sealed = true;
    }

    /// The merged query: Algorithm 1 on the frozen base, the same loop on
    /// the delta graph (anchor- and random-seeded), a sorted merge through
    /// the context's scored buffer with tombstones filtered at extraction,
    /// and an optional exact-rerank pass spanning both row sets. Zero heap
    /// allocation once `ctx` is warm.
    // lint:hot-path
    fn merged_search(
        &self,
        st: &DeltaState,
        ctx: &mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) {
        ctx.tracer.arm(request.trace);
        let base_len = self.base.base().len();
        let mut params = request.traversal_params();
        // Tombstoned candidates are dropped at extraction, so widen each
        // graph's extraction budget by the tombstone count (bounded by the
        // pool) — filtering must not underfill `k`.
        params.k = params.k.saturating_add(st.tombstones.count()).min(params.pool_size);

        // Phase 1: the frozen base, exactly as the frozen index runs it.
        if base_len > 0 {
            search_on_graph_into(
                self.base.graph(),
                self.base.store().as_ref(),
                query,
                &[self.base.navigating_node()],
                params,
                &self.metric,
                ctx,
            );
        } else {
            ctx.results.clear();
            ctx.stats = SearchStats::default();
        }
        let base_stats = ctx.stats;
        ctx.scored.clear();
        ctx.scored.extend_from_slice(&ctx.results);

        // Phase 2: the delta graph, seeded from salted random entries plus
        // the delta nodes anchored near the base answer. The shared loop's
        // traversal time is attributed to the delta stage for this pass.
        if !st.rows.is_empty() {
            let entry_count = params.pool_size.min(st.rows.len());
            ctx.fill_random_entries(st.rows.len(), entry_count, self.config.seed, query_salt(query));
            for i in 0..ctx.scored.len() {
                if let Some(anchored) = st.anchors.get(&ctx.scored[i].id) {
                    ctx.entries.extend_from_slice(anchored);
                }
            }
            ctx.tracer.set_traversal_stage(TraceStage::DeltaTraversal);
            search_from_context_entries(&st.links, &st.rows, query, params, &self.metric, ctx);
            ctx.tracer.set_traversal_stage(TraceStage::BaseTraversal);
            ctx.stats.accumulate(base_stats);
            let merge_timer = ctx.tracer.begin();
            for i in 0..ctx.results.len() {
                let nb = ctx.results[i];
                ctx.scored.push(Neighbor::new(nb.id + base_len as u32, nb.dist));
            }
            ctx.scored.sort_unstable_by(Neighbor::ordering);
            ctx.tracer.finish(TraceStage::SortedMerge, merge_timer, 0);
        } else {
            ctx.stats = base_stats;
        }

        // Phase 3: tombstone-filtered extraction. Dead nodes were traversed
        // (the graph stays navigable) but never surface in the answer.
        let filter_timer = ctx.tracer.begin();
        let keep = if request.rerank_factor() > 1 { request.rerank_candidates() } else { request.k };
        ctx.results.clear();
        for i in 0..ctx.scored.len() {
            if ctx.results.len() == keep {
                break;
            }
            let nb = ctx.scored[i];
            if st.tombstones.contains(nb.id) {
                continue;
            }
            ctx.results.push(nb);
        }
        ctx.tracer.finish(TraceStage::TombstoneFilter, filter_timer, 0);

        // Phase 4: exact rerank across both row sets when requested (the
        // shared `exact_rerank` only addresses base rows, so the dual-source
        // row lookup lives here).
        if request.rerank_factor() > 1 {
            let rerank_timer = ctx.tracer.begin();
            let rescored = ctx.results.len() as u64;
            let base_rows = self.base.base();
            for i in 0..ctx.results.len() {
                let id = ctx.results[i].id as usize;
                let row = if id < base_len { base_rows.get(id) } else { st.rows.get(id - base_len) };
                ctx.results[i].dist = self.metric.distance(query, row);
            }
            ctx.stats.distance_computations += rescored;
            ctx.results.sort_unstable_by(Neighbor::ordering);
            ctx.results.truncate(request.k);
            ctx.tracer.finish(TraceStage::ExactRerank, rerank_timer, rescored);
        }
    }
}

/// Publishes one compaction run (count + wall time) to the process-wide
/// registry. The gather/rebuild/replay whole is timed here; the Algorithm 2
/// rebuild inside additionally publishes its per-phase `nsg_build_*` counters.
fn publish_compaction(started: std::time::Instant) {
    let g = nsg_obs::global();
    g.counter("nsg_compaction_runs").inc();
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    g.counter("nsg_compaction_nanos").add(nanos);
}

/// Degree prune of the NSW insertion: keep node `v`'s `m` closest neighbors
/// by exact distance (build-time path, may allocate).
fn prune_delta_node<D: Distance>(
    links: &mut DirectedGraph,
    rows: &VectorSet,
    metric: &D,
    v: u32,
    m: usize,
) {
    let own = rows.get(v as usize);
    let mut scored: Vec<Neighbor> = links
        .neighbors(v)
        .iter()
        .map(|&u| Neighbor::new(u, metric.distance(own, rows.get(u as usize))))
        .collect();
    scored.sort_unstable_by(Neighbor::ordering);
    scored.truncate(m);
    links.set_neighbors(v, scored.iter().map(|nb| nb.id).collect());
}

impl<D: Distance + Clone + Sync> MutableIndex<D, VectorSet> {
    /// Re-runs the full Algorithm 2 build over the live rows (base + delta
    /// minus tombstones) and returns the successor with an empty delta.
    /// `self` is sealed: mutations that raced the rebuild are replayed into
    /// the successor first, then every later mutation is rejected with
    /// [`MutateError::Sealed`]. Compaction renumbers external ids.
    pub fn compact(&self) -> MutableIndex<D, VectorSet> {
        let started = std::time::Instant::now();
        let (rows, plan) = self.gather_live();
        let fresh_base = NsgIndex::build(Arc::new(rows), self.metric.clone(), *self.base.params());
        let fresh = MutableIndex::with_config(fresh_base, self.config);
        self.seal_and_replay(&plan, &fresh);
        publish_compaction(started);
        fresh
    }
}

impl<D: Distance + Clone + Sync> MutableIndex<D, Sq8VectorSet> {
    /// [`compact`](MutableIndex::compact) for the quantized specialization:
    /// the rebuild runs on the retained `f32` rows, then freezes back into
    /// SQ8 form (`quantize_sq8`), preserving the memory footprint across
    /// compactions.
    pub fn compact(&self) -> MutableIndex<D, Sq8VectorSet> {
        let started = std::time::Instant::now();
        let (rows, plan) = self.gather_live();
        let fresh_base = NsgIndex::build(Arc::new(rows), self.metric.clone(), *self.base.params())
            .quantize_sq8();
        let fresh = MutableIndex::with_config(fresh_base, self.config);
        self.seal_and_replay(&plan, &fresh);
        publish_compaction(started);
        fresh
    }
}

impl<D: Distance + Clone + Sync, S: VectorStore> AnnIndex for MutableIndex<D, S> {
    fn new_context(&self) -> SearchContext {
        let st = self.state.read();
        SearchContext::for_points(self.base.base().len() + st.rows.len())
    }

    // lint:hot-path
    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let st = self.state.read();
        if st.rows.is_empty() && st.tombstones.is_empty() {
            // Mutation-free: delegate so the answer is byte-identical to the
            // frozen index's (the `properties` suite proves it).
            drop(st);
            return self.base.search_into(ctx, request, query);
        }
        self.merged_search(&st, ctx, request, query);
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        let st = self.state.read();
        let anchors: usize = st
            .anchors
            .values()
            .map(|v| v.len() * std::mem::size_of::<u32>() + std::mem::size_of::<(u32, Vec<u32>)>())
            .sum();
        self.base.memory_bytes()
            + st.links.memory_bytes_exact()
            + st.tombstones.memory_bytes()
            + anchors
    }

    fn name(&self) -> &'static str {
        "NSG+delta"
    }
}

/// Object-safe mutation surface for serving layers that hold the index as a
/// trait object (`nsg-serve` routes `submit_insert`/`submit_delete` through
/// this). [`compact_sealed`](Self::compact_sealed) returns *both* trait
/// views of the successor, pointing at one allocation, so the caller can
/// install the query view (e.g. `IndexHandle::swap`) and keep mutating
/// through the other without trait upcasting.
pub trait MutableAnnIndex: AnnIndex {
    /// See [`MutableIndex::insert`].
    fn insert(&self, vector: &[f32]) -> Result<u32, MutateError>;
    /// See [`MutableIndex::delete`].
    fn delete(&self, id: u32) -> Result<bool, MutateError>;
    /// See [`MutableIndex::delta_stats`].
    fn delta_stats(&self) -> DeltaStats;
    /// See [`MutableIndex::compact`]; the successor is returned as both a
    /// query view and a mutation view of the same index.
    fn compact_sealed(&self) -> CompactedPair;
}

/// The two trait views of a compaction's successor (one shared allocation).
pub struct CompactedPair {
    /// Query view, ready for a serving handle swap.
    pub index: Arc<dyn AnnIndex>,
    /// Mutation view; later inserts/deletes go here.
    pub mutable: Arc<dyn MutableAnnIndex>,
}

impl<D: Distance + Clone + Send + Sync + 'static> MutableAnnIndex for MutableIndex<D, VectorSet> {
    fn insert(&self, vector: &[f32]) -> Result<u32, MutateError> {
        MutableIndex::insert(self, vector)
    }

    fn delete(&self, id: u32) -> Result<bool, MutateError> {
        MutableIndex::delete(self, id)
    }

    fn delta_stats(&self) -> DeltaStats {
        MutableIndex::delta_stats(self)
    }

    fn compact_sealed(&self) -> CompactedPair {
        let fresh = Arc::new(self.compact());
        CompactedPair { index: Arc::<MutableIndex<D, VectorSet>>::clone(&fresh), mutable: fresh }
    }
}

impl<D: Distance + Clone + Send + Sync + 'static> MutableAnnIndex for MutableIndex<D, Sq8VectorSet> {
    fn insert(&self, vector: &[f32]) -> Result<u32, MutateError> {
        MutableIndex::insert(self, vector)
    }

    fn delete(&self, id: u32) -> Result<bool, MutateError> {
        MutableIndex::delete(self, id)
    }

    fn delta_stats(&self) -> DeltaStats {
        MutableIndex::delta_stats(self)
    }

    fn compact_sealed(&self) -> CompactedPair {
        let fresh = Arc::new(self.compact());
        CompactedPair { index: Arc::<MutableIndex<D, Sq8VectorSet>>::clone(&fresh), mutable: fresh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_knn::NnDescentParams;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::uniform;

    fn small_params() -> NsgParams {
        NsgParams {
            build_pool_size: 40,
            max_degree: 16,
            knn: NnDescentParams { k: 24, ..Default::default() },
            reverse_insert: true,
            seed: 11,
        }
    }

    fn build_mutable(n: usize, dim: usize, seed: u64) -> (Arc<VectorSet>, MutableIndex<SquaredEuclidean>) {
        let base = Arc::new(uniform(n, dim, seed));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        (base, MutableIndex::new(index))
    }

    #[test]
    fn tombstones_set_contains_count() {
        let mut t = Tombstones::new();
        assert!(t.is_empty());
        assert!(!t.contains(1000));
        assert!(t.set(3));
        assert!(!t.set(3), "setting twice reports already dead");
        assert!(t.set(200));
        assert!(t.contains(3));
        assert!(t.contains(200));
        assert!(!t.contains(4));
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn inserted_vector_is_its_own_nearest_neighbor() {
        let (_, index) = build_mutable(300, 12, 1);
        let extra = uniform(20, 12, 77);
        let mut ids = Vec::new();
        for i in 0..extra.len() {
            ids.push(index.insert(extra.get(i)).unwrap());
        }
        assert_eq!(index.delta_stats().delta_len, 20);
        let mut ctx = index.new_context();
        let request = SearchRequest::new(5).with_effort(60);
        for (i, &id) in ids.iter().enumerate() {
            let hits = index.search_into(&mut ctx, &request, extra.get(i));
            assert_eq!(hits[0].id, id, "inserted point must be its own top hit");
            assert_eq!(hits[0].dist, 0.0);
        }
    }

    #[test]
    fn deleted_ids_never_surface_but_stay_traversable() {
        let (base, index) = build_mutable(300, 12, 2);
        let request = SearchRequest::new(5).with_effort(60);
        let mut ctx = index.new_context();
        let victim_query: Vec<f32> = base.get(42).to_vec();
        let before = index.search_into(&mut ctx, &request, &victim_query).to_vec();
        assert_eq!(before[0].id, 42);
        assert!(index.delete(42).unwrap());
        assert!(!index.delete(42).unwrap(), "double delete is a no-op");
        let after = index.search_into(&mut ctx, &request, &victim_query);
        assert_eq!(after.len(), 5, "tombstone filtering must not underfill k");
        assert!(after.iter().all(|nb| nb.id != 42), "tombstoned id surfaced");
    }

    #[test]
    fn delete_out_of_range_is_a_noop() {
        let (_, index) = build_mutable(50, 8, 3);
        assert!(!index.delete(10_000).unwrap());
        assert_eq!(index.delta_stats().tombstones, 0);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let (_, index) = build_mutable(50, 8, 4);
        let err = index.insert(&[0.0; 7]).unwrap_err();
        assert_eq!(err, MutateError::DimMismatch { expected: 8, got: 7 });
    }

    #[test]
    fn insert_into_empty_base_works() {
        let base = Arc::new(VectorSet::new(6));
        let frozen = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let index = MutableIndex::new(frozen);
        let extra = uniform(30, 6, 5);
        for i in 0..extra.len() {
            index.insert(extra.get(i)).unwrap();
        }
        let mut ctx = index.new_context();
        let hits = index.search_into(&mut ctx, &SearchRequest::new(3).with_effort(40), extra.get(7));
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[0].dist, 0.0);
    }

    /// Acceptance criterion: at a 10% delta fraction, merged recall@10 stays
    /// within 1% of a full offline rebuild over the same rows.
    #[test]
    fn merged_recall_within_one_percent_of_rebuild_at_ten_percent_delta() {
        let dim = 12;
        let all = uniform(1000, dim, 6);
        let queries = uniform(50, dim, 61);
        let base_n = 900;
        let (base_rows, delta_rows) = all.split_at(base_n);
        let base_rows = Arc::new(base_rows);

        let frozen = NsgIndex::build(Arc::clone(&base_rows), SquaredEuclidean, small_params());
        let mutable = MutableIndex::new(frozen);
        for i in 0..delta_rows.len() {
            mutable.insert(delta_rows.get(i)).unwrap();
        }

        let all = Arc::new(all);
        let rebuilt = NsgIndex::build(Arc::clone(&all), SquaredEuclidean, small_params());
        let gt = exact_knn(&all, &queries, 10, &SquaredEuclidean);

        let request = SearchRequest::new(10).with_effort(100);
        let recall = |index: &dyn AnnIndex| {
            let mut ctx = index.new_context();
            let ids: Vec<Vec<u32>> = (0..queries.len())
                .map(|q| {
                    index
                        .search_into(&mut ctx, &request, queries.get(q))
                        .iter()
                        .map(|nb| nb.id)
                        .collect()
                })
                .collect();
            mean_precision(&ids, &gt, 10)
        };
        let merged = recall(&mutable);
        let offline = recall(&rebuilt);
        assert!(
            merged >= offline - 0.01,
            "merged recall {merged:.4} fell more than 1% below rebuild recall {offline:.4}"
        );
    }

    #[test]
    fn compact_folds_delta_and_tombstones_into_a_fresh_base() {
        let (_, index) = build_mutable(300, 10, 7);
        let extra = uniform(30, 10, 71);
        for i in 0..extra.len() {
            index.insert(extra.get(i)).unwrap();
        }
        for id in [5u32, 17, 301] {
            assert!(index.delete(id).unwrap());
        }
        let stats = index.delta_stats();
        assert_eq!((stats.delta_len, stats.tombstones), (30, 3));

        let fresh = index.compact();
        let fresh_stats = fresh.delta_stats();
        assert_eq!(fresh_stats.base_len, 300 + 30 - 3);
        assert_eq!(fresh_stats.delta_len, 0);
        assert_eq!(fresh_stats.tombstones, 0);
        assert!(!fresh_stats.sealed);

        // The old index is sealed; mutations are rejected.
        assert!(index.delta_stats().sealed);
        assert_eq!(index.insert(extra.get(0)), Err(MutateError::Sealed));
        assert_eq!(index.delete(0), Err(MutateError::Sealed));

        // A surviving delta vector is findable in the compacted index.
        let mut ctx = fresh.new_context();
        let hits = fresh.search_into(&mut ctx, &SearchRequest::new(3).with_effort(60), extra.get(9));
        assert_eq!(hits[0].dist, 0.0, "compacted index lost a live delta row");
    }

    #[test]
    fn compact_sealed_returns_both_views_of_one_successor() {
        let (_, index) = build_mutable(200, 8, 8);
        let extra = uniform(10, 8, 81);
        for i in 0..extra.len() {
            MutableAnnIndex::insert(&index, extra.get(i)).unwrap();
        }
        let pair = index.compact_sealed();
        assert_eq!(pair.mutable.delta_stats().base_len, 210);
        // Mutating through one view is visible through the other (same index).
        pair.mutable.insert(extra.get(0)).unwrap();
        let mut ctx = pair.index.new_context();
        let hits = pair.index.search_into(&mut ctx, &SearchRequest::new(1).with_effort(40), extra.get(0));
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn quantized_mutable_index_round_trips_and_compacts() {
        let base = Arc::new(uniform(300, 10, 9));
        let quantized = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params()).quantize_sq8();
        let index = MutableIndex::new(quantized);
        let extra = uniform(20, 10, 91);
        for i in 0..extra.len() {
            index.insert(extra.get(i)).unwrap();
        }
        let mut ctx = index.new_context();
        let request = SearchRequest::new(5).with_effort(60).with_rerank(2);
        let hits = index.search_into(&mut ctx, &request, extra.get(3));
        assert_eq!(hits[0].dist, 0.0, "reranked merged search must find the exact delta row");

        let fresh = index.compact();
        assert_eq!(fresh.delta_stats().base_len, 320);
        let hits = fresh.search_into(&mut ctx, &request, extra.get(3));
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn memory_bytes_grows_with_the_delta() {
        let (_, index) = build_mutable(200, 8, 10);
        let before = index.memory_bytes();
        let extra = uniform(50, 8, 13);
        for i in 0..extra.len() {
            index.insert(extra.get(i)).unwrap();
        }
        index.delete(0).unwrap();
        assert!(index.memory_bytes() > before);
        assert_eq!(index.name(), "NSG+delta");
    }
}
