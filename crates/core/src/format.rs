//! Single source of truth for the on-disk format constants.
//!
//! Every magic number, section tag and fixed header size of the three
//! serialized layouts lives here; the encoder ([`crate::serialize`],
//! [`crate::snapshot`]) and the decoders both read from this table, so the
//! formats cannot drift apart.
//!
//! # Layouts (all integers little-endian)
//!
//! **NSG1 — streaming graph** (record-oriented, decoded with one bounded pass)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"NSG1"` ([`GRAPH_MAGIC`]) |
//! | 4      | 4    | navigating node id |
//! | 8      | 4    | node count `n` |
//! | 12     | …    | `n` records: `u32` degree, then that many `u32` neighbor ids |
//!
//! **NSQ8 — SQ8 quantized store** (follows an NSG1 section in the quantized
//! composite; embedded byte-for-byte as one section of an NSG2 snapshot)
//!
//! | offset | size    | field |
//! |-------:|--------:|-------|
//! | 0      | 4       | magic `"NSQ8"` ([`SQ8_MAGIC`]) |
//! | 4      | 4       | dimension `d` |
//! | 8      | 4       | vector count `n` |
//! | 12     | 4·d     | per-dimension `min` (`f32`) |
//! | 12+4d  | 4·d     | per-dimension `scale` (`f32`) |
//! | 12+8d  | n·d     | row-major code arena (`u8`) |
//!
//! **NSG2 — aligned zero-copy snapshot** (mapped, never parsed per-record)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"NSG2"` ([`SNAPSHOT_MAGIC`]) |
//! | 4      | 4    | version ([`SNAPSHOT_VERSION`]) |
//! | 8      | 4    | section count `k` |
//! | 12     | 4    | reserved (0) |
//! | 16     | 32·k | section table, one [`SECTION_ENTRY_LEN`]-byte entry per section |
//! | …      | …    | section payloads, each starting at a [`SECTION_ALIGN`]-byte boundary, zero-padded between |
//!
//! Each section-table entry:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | tag (FourCC, one of the `SEC_*` constants) |
//! | 4      | 4    | element alignment in bytes (divides the section offset) |
//! | 8      | 8    | byte offset of the payload from the start of the file |
//! | 16     | 8    | payload length in bytes (exact, before padding) |
//! | 24     | 8    | reserved (0) |
//!
//! Snapshot sections:
//!
//! | tag | contents |
//! |-----|----------|
//! | [`SEC_META`] | the 12-byte NSG1 header embedded byte-for-byte (magic, navigating node, `n`), then `u32` dim, `u32` metric code, `u32` flags ([`FLAG_HAS_SQ8`]), `u64` edge count `m`, `u32` reserved — [`META_LEN`] bytes |
//! | [`SEC_GRAPH_OFFSETS`] | `n + 1` `u32` CSR row offsets |
//! | [`SEC_GRAPH_TARGETS`] | `m` `u32` neighbor ids — the byte-identical concatenation of the NSG1 records' id runs |
//! | [`SEC_VECTORS`] | `n·d` `f32` row-major base vectors |
//! | [`SEC_SQ8`] | a full NSQ8 payload embedded byte-for-byte (optional; present iff [`FLAG_HAS_SQ8`]) |

use nsg_vectors::DistanceKind;

/// Magic number of the streaming graph format ("NSG1").
pub const GRAPH_MAGIC: u32 = 0x4E53_4731;

/// Magic number of the SQ8 quantized-store section ("NSQ8").
pub const SQ8_MAGIC: u32 = 0x4E53_5138;

/// Magic number of the aligned zero-copy snapshot format ("NSG2").
pub const SNAPSHOT_MAGIC: u32 = 0x4E53_4732;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed NSG1 / NSQ8 header size: magic + two `u32` fields.
pub const HEADER_LEN: usize = 12;

/// Fixed NSG2 file header size: magic, version, section count, reserved.
pub const SNAPSHOT_HEADER_LEN: usize = 16;

/// Size of one snapshot section-table entry.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Every snapshot section payload starts at a multiple of this (one cache
/// line; also the base-address guarantee of the mmap shim's `BASE_ALIGN`, so
/// "aligned offset" implies "aligned address").
pub const SECTION_ALIGN: usize = 64;

/// Snapshot section tag: index metadata (FourCC "META").
pub const SEC_META: u32 = four_cc(*b"META");

/// Snapshot section tag: CSR row offsets (FourCC "GOFF").
pub const SEC_GRAPH_OFFSETS: u32 = four_cc(*b"GOFF");

/// Snapshot section tag: CSR edge arena (FourCC "GTGT").
pub const SEC_GRAPH_TARGETS: u32 = four_cc(*b"GTGT");

/// Snapshot section tag: flat `f32` base vectors (FourCC "VECS").
pub const SEC_VECTORS: u32 = four_cc(*b"VECS");

/// Snapshot section tag: embedded NSQ8 payload (FourCC "NSQ8").
pub const SEC_SQ8: u32 = four_cc(*b"NSQ8");

/// META payload length: NSG1 header (12) + dim (4) + metric (4) + flags (4)
/// + edge count (8) + reserved (4).
pub const META_LEN: usize = 36;

/// META flag bit: an [`SEC_SQ8`] section is present.
pub const FLAG_HAS_SQ8: u32 = 1;

/// Builds a FourCC tag the way the magics above are spelled: big-endian byte
/// order of the ASCII name, so `four_cc(*b"NSG1") == GRAPH_MAGIC`.
pub const fn four_cc(name: [u8; 4]) -> u32 {
    u32::from_be_bytes(name)
}

/// On-disk code of a [`DistanceKind`] (META's metric field).
pub fn metric_code(kind: DistanceKind) -> u32 {
    match kind {
        DistanceKind::SquaredEuclidean => 0,
        DistanceKind::Euclidean => 1,
        DistanceKind::InnerProduct => 2,
    }
}

/// Decodes META's metric field; `None` for unknown codes (corrupt snapshot).
pub fn metric_from_code(code: u32) -> Option<DistanceKind> {
    match code {
        0 => Some(DistanceKind::SquaredEuclidean),
        1 => Some(DistanceKind::Euclidean),
        2 => Some(DistanceKind::InnerProduct),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magics_spell_their_ascii_names() {
        assert_eq!(four_cc(*b"NSG1"), GRAPH_MAGIC);
        assert_eq!(four_cc(*b"NSQ8"), SQ8_MAGIC);
        assert_eq!(four_cc(*b"NSG2"), SNAPSHOT_MAGIC);
        assert_eq!(SEC_META, u32::from_be_bytes(*b"META"));
    }

    #[test]
    fn metric_codes_round_trip() {
        for kind in [
            DistanceKind::SquaredEuclidean,
            DistanceKind::Euclidean,
            DistanceKind::InnerProduct,
        ] {
            assert_eq!(metric_from_code(metric_code(kind)), Some(kind));
        }
        assert_eq!(metric_from_code(3), None);
        assert_eq!(metric_from_code(u32::MAX), None);
    }

    #[test]
    fn section_tags_are_distinct() {
        let tags = [SEC_META, SEC_GRAPH_OFFSETS, SEC_GRAPH_TARGETS, SEC_VECTORS, SEC_SQ8];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
