//! Directed graph adjacency used by every graph index in the workspace.
//!
//! Two representations share one read interface ([`GraphView`]):
//!
//! * [`DirectedGraph`] — the **build-time** structure: per-node `Vec<u32>`
//!   lists that NN-Descent, Algorithm 2's pruning passes and the
//!   connectivity repair mutate freely (`add_edge` / `set_neighbors`).
//! * [`CompactGraph`] — the **frozen query-time** structure: one contiguous
//!   CSR neighbor arena plus an offsets array, mirroring the released
//!   NSG / HNSW layout in which neighbor lists are contiguous so each hop of
//!   Algorithm 1 reads one dense `u32` run instead of chasing a `Vec`
//!   pointer per node (Table 2 reports index sizes computed from exactly
//!   this flat layout). Construction finishes, the graph is frozen once,
//!   and every query path — `NsgIndex`, `ShardedNsg`, the graph baselines,
//!   `nsg-serve` snapshots — traverses the frozen form.

use nsg_vectors::Arena;
use serde::{Deserialize, Serialize};

/// Read-only adjacency interface shared by the build-time
/// [`DirectedGraph`] and the frozen [`CompactGraph`] — the form Algorithm 1
/// and the graph analytics are generic over.
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    fn neighbors(&self, v: u32) -> &[u32];

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Total number of directed edges.
    fn num_edges(&self) -> usize {
        (0..self.num_nodes() as u32).map(|v| self.out_degree(v)).sum()
    }

    /// Average out-degree (the paper's AOD column in Table 2).
    fn average_out_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree (the paper's MOD column in Table 2).
    fn max_out_degree(&self) -> usize {
        (0..self.num_nodes() as u32).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Index memory in bytes under the fixed-degree layout the paper uses for
    /// Table 2: every node is allocated `max_out_degree` u32 slots plus one
    /// u32 degree counter, enabling contiguous access during search.
    fn memory_bytes_fixed_degree(&self) -> usize {
        let width = self.max_out_degree();
        self.num_nodes() * (width + 1) * std::mem::size_of::<u32>()
    }

    /// Index memory in bytes when lists are stored exactly (the CSR layout
    /// [`CompactGraph`] actually uses: one offsets array + one edge arena).
    fn memory_bytes_exact(&self) -> usize {
        (self.num_edges() + self.num_nodes() + 1) * std::mem::size_of::<u32>()
    }
}

/// A directed graph on nodes `0..n` with per-node out-neighbor lists.
///
/// This is the *mutable build-time* representation; freeze it into a
/// [`CompactGraph`] once construction finishes and query through that.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DirectedGraph {
    adjacency: Vec<Vec<u32>>,
}

impl DirectedGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Wraps prebuilt adjacency lists.
    ///
    /// # Panics
    /// Panics if any edge points outside `0..n`.
    pub fn from_adjacency(adjacency: Vec<Vec<u32>>) -> Self {
        let n = adjacency.len() as u32;
        for (v, list) in adjacency.iter().enumerate() {
            for &u in list {
                assert!(u < n, "edge {v} -> {u} points outside the graph");
            }
        }
        Self { adjacency }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Appends an isolated node, growing the graph by one, and returns its
    /// id. The delta layer (`nsg_core::delta`) grows its incrementally built
    /// graph this way, one node per insertion.
    pub fn push_node(&mut self) -> u32 {
        self.adjacency.push(Vec::new());
        (self.adjacency.len() - 1) as u32
    }

    /// Adds the directed edge `from -> to` if it is not already present.
    /// Returns `true` when the edge was inserted.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range (both endpoints are checked
    /// with the same diagnostic).
    pub fn add_edge(&mut self, from: u32, to: u32) -> bool {
        let n = self.adjacency.len();
        assert!((from as usize) < n, "edge source {from} out of range (n = {n})");
        assert!((to as usize) < n, "edge target {to} out of range (n = {n})");
        let list = &mut self.adjacency[from as usize];
        if list.contains(&to) {
            false
        } else {
            list.push(to);
            true
        }
    }

    /// Replaces the out-neighbor list of `v`.
    ///
    /// # Panics
    /// Panics if `v` or any listed neighbor is out of range.
    pub fn set_neighbors(&mut self, v: u32, neighbors: Vec<u32>) {
        let n = self.adjacency.len() as u32;
        for &u in &neighbors {
            assert!(u < n, "edge {v} -> {u} points outside the graph");
        }
        self.adjacency[v as usize] = neighbors;
    }

    /// Average out-degree (the paper's AOD column in Table 2).
    pub fn average_out_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree (the paper's MOD column in Table 2).
    pub fn max_out_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// See [`GraphView::memory_bytes_fixed_degree`].
    pub fn memory_bytes_fixed_degree(&self) -> usize {
        GraphView::memory_bytes_fixed_degree(self)
    }

    /// See [`GraphView::memory_bytes_exact`].
    pub fn memory_bytes_exact(&self) -> usize {
        GraphView::memory_bytes_exact(self)
    }

    /// Iterates over `(node, neighbor)` edge pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(v, list)| list.iter().map(move |&u| (v as u32, u)))
    }

    /// Consumes the graph, returning the adjacency lists.
    pub fn into_adjacency(self) -> Vec<Vec<u32>> {
        self.adjacency
    }

    /// Returns the reverse graph (every edge flipped).
    pub fn reversed(&self) -> DirectedGraph {
        let mut rev = vec![Vec::new(); self.num_nodes()];
        for (v, u) in self.edges() {
            rev[u as usize].push(v);
        }
        DirectedGraph { adjacency: rev }
    }

    /// Freezes this graph into the contiguous query-time representation.
    /// Convenience for [`CompactGraph::from_directed`].
    pub fn freeze(&self) -> CompactGraph {
        CompactGraph::from_directed(self)
    }
}

impl GraphView for DirectedGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    #[inline]
    fn out_degree(&self, v: u32) -> usize {
        self.adjacency[v as usize].len()
    }

    fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    fn max_out_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The frozen query-time adjacency: CSR (compressed sparse row) layout.
///
/// `targets[offsets[v] .. offsets[v + 1]]` is the out-neighbor list of `v`.
/// All lists live in **one** contiguous arena, so the per-hop neighbor
/// expansion of Algorithm 1 streams through a single dense `u32` run —
/// no per-node heap pointer, no per-node allocation on load, and a layout
/// the on-disk format of [`crate::serialize`] maps onto record-for-record.
///
/// A `CompactGraph` is immutable by design: build with [`DirectedGraph`],
/// freeze once via [`CompactGraph::from_directed`] (or `From<&DirectedGraph>`),
/// then share the frozen graph on the query path.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct CompactGraph {
    /// `n + 1` row offsets into `targets`; `offsets[0] == 0`.
    offsets: Arena<u32>,
    /// Concatenated out-neighbor lists.
    targets: Arena<u32>,
}

impl CompactGraph {
    /// An empty graph with zero nodes.
    pub fn empty() -> Self {
        Self { offsets: Arena::from_vec(vec![0]), targets: Arena::new() }
    }

    /// Freezes a [`DirectedGraph`] into CSR form.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` nodes or edges (the CSR
    /// offsets are `u32`, matching the compact id space of the paper's
    /// released implementation).
    pub fn from_directed(graph: &DirectedGraph) -> Self {
        Self::from_view(graph)
    }

    /// Freezes any [`GraphView`] into CSR form — one pass, no intermediate
    /// adjacency clone (HNSW freezes each level through its build-time view
    /// this way).
    ///
    /// # Panics
    /// Panics if any edge points outside `0..n`, or on `u32` overflow as in
    /// [`from_directed`](Self::from_directed).
    pub fn from_view<G: GraphView + ?Sized>(graph: &G) -> Self {
        let n = graph.num_nodes();
        assert!(n <= u32::MAX as usize, "graph has {n} nodes; CSR ids are u32");
        let m = graph.num_edges();
        assert!(m <= u32::MAX as usize, "graph has {m} edges; CSR offsets are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        offsets.push(0u32);
        for v in 0..n as u32 {
            let list = graph.neighbors(v);
            for &u in list {
                assert!((u as usize) < n, "edge {v} -> {u} points outside the graph");
            }
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        Self { offsets: Arena::from_vec(offsets), targets: Arena::from_vec(targets) }
    }

    /// Freezes prebuilt adjacency lists directly (validating every edge),
    /// without materializing an intermediate [`DirectedGraph`].
    ///
    /// # Panics
    /// Panics if any edge points outside `0..n`, or on `u32` overflow as in
    /// [`from_directed`](Self::from_directed).
    pub fn from_adjacency(adjacency: Vec<Vec<u32>>) -> Self {
        let n = adjacency.len();
        assert!(n <= u32::MAX as usize, "graph has {n} nodes; CSR ids are u32");
        let m: usize = adjacency.iter().map(Vec::len).sum();
        assert!(m <= u32::MAX as usize, "graph has {m} edges; CSR offsets are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        offsets.push(0u32);
        for (v, list) in adjacency.iter().enumerate() {
            for &u in list {
                assert!((u as usize) < n, "edge {v} -> {u} points outside the graph");
            }
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        Self { offsets: Arena::from_vec(offsets), targets: Arena::from_vec(targets) }
    }

    /// Assembles a graph from already-validated CSR parts (the streaming
    /// deserializer validates while filling, so re-walking the arena here
    /// would be redundant).
    ///
    /// Invariants the caller must uphold: `offsets` is non-empty, starts at
    /// 0, is non-decreasing, ends at `targets.len()`, and every target is
    /// `< offsets.len() - 1`.
    pub(crate) fn from_validated_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(offsets.last().map(|&o| o as usize), Some(targets.len()));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(targets.iter().all(|&u| (u as usize) < offsets.len() - 1));
        Self { offsets: Arena::from_vec(offsets), targets: Arena::from_vec(targets) }
    }

    /// Assembles a graph over arenas that may borrow from a mapped snapshot
    /// region. Only the O(1) ends of the CSR invariant are checked here (the
    /// snapshot section table already bounded every length); full monotone /
    /// in-range validation is [`CompactGraph::validate_csr`], which snapshot
    /// verification runs on demand.
    pub(crate) fn from_arena_parts(offsets: Arena<u32>, targets: Arena<u32>) -> Result<Self, String> {
        let Some(&first) = offsets.as_slice().first() else {
            return Err("CSR offsets array is empty".to_string());
        };
        if first != 0 {
            return Err(format!("CSR offsets must start at 0, found {first}"));
        }
        let last = offsets.as_slice()[offsets.len() - 1] as usize;
        if last != targets.len() {
            return Err(format!(
                "CSR offsets end at {last} but the edge arena holds {} targets",
                targets.len()
            ));
        }
        Ok(Self { offsets, targets })
    }

    /// Deep O(n + m) CSR validation: offsets monotone non-decreasing, every
    /// target inside `0..n`. The streaming decoder enforces this shape while
    /// filling; mapped snapshots opt in via `Snapshot::verify`.
    pub fn validate_csr(&self) -> Result<(), String> {
        let offs = self.offsets.as_slice();
        if let Some(w) = offs.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!("CSR offsets decrease: {} then {}", w[0], w[1]));
        }
        let n = self.num_nodes();
        if let Some(&u) = self.targets.as_slice().iter().find(|&&u| (u as usize) >= n) {
            return Err(format!("edge target {u} points outside the {n}-node graph"));
        }
        Ok(())
    }

    /// Whether the CSR arenas are borrowed from a mapped region rather than
    /// owned by this graph.
    pub fn is_borrowed(&self) -> bool {
        self.targets.is_borrowed()
    }

    /// The raw `n + 1` CSR row offsets (the snapshot writer serializes these
    /// verbatim).
    pub(crate) fn csr_offsets(&self) -> &[u32] {
        self.offsets.as_slice()
    }

    /// The raw concatenated edge arena.
    pub(crate) fn csr_targets(&self) -> &[u32] {
        self.targets.as_slice()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of directed edges — O(1) in the frozen layout.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`: one contiguous slice of the shared arena.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    // lint:hot-path
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        // CSR invariant: offsets are monotone non-decreasing, so the slice
        // bounds can never be inverted.
        let offs = self.offsets.as_slice();
        debug_assert!(offs[v] <= offs[v + 1]);
        &self.targets.as_slice()[offs[v] as usize..offs[v + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        let v = v as usize;
        let offs = self.offsets.as_slice();
        (offs[v + 1] - offs[v]) as usize
    }

    /// Average out-degree (the paper's AOD column in Table 2).
    pub fn average_out_degree(&self) -> f64 {
        GraphView::average_out_degree(self)
    }

    /// Maximum out-degree (the paper's MOD column in Table 2).
    pub fn max_out_degree(&self) -> usize {
        self.offsets.as_slice().windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }

    /// See [`GraphView::memory_bytes_fixed_degree`].
    pub fn memory_bytes_fixed_degree(&self) -> usize {
        GraphView::memory_bytes_fixed_degree(self)
    }

    /// Actual resident bytes of the frozen structure (offsets + arena) —
    /// identical to the [`GraphView::memory_bytes_exact`] model, because the
    /// frozen layout *is* that model.
    pub fn memory_bytes_exact(&self) -> usize {
        GraphView::memory_bytes_exact(self)
    }

    /// Iterates over `(node, neighbor)` edge pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Thaws the graph back into the mutable build-time representation
    /// (used when a loaded index needs further editing).
    pub fn to_directed(&self) -> DirectedGraph {
        DirectedGraph {
            adjacency: (0..self.num_nodes() as u32).map(|v| self.neighbors(v).to_vec()).collect(),
        }
    }
}

impl GraphView for CompactGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        CompactGraph::neighbors(self, v)
    }

    #[inline]
    fn out_degree(&self, v: u32) -> usize {
        CompactGraph::out_degree(self, v)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn max_out_degree(&self) -> usize {
        CompactGraph::max_out_degree(self)
    }
}

impl From<&DirectedGraph> for CompactGraph {
    fn from(graph: &DirectedGraph) -> Self {
        Self::from_directed(graph)
    }
}

impl From<&CompactGraph> for DirectedGraph {
    fn from(graph: &CompactGraph) -> Self {
        graph.to_directed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_deduplicates() {
        let mut g = DirectedGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_target_bounds() {
        let mut g = DirectedGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_source_bounds() {
        // Regression: the source endpoint used to panic with a raw index
        // message instead of the same diagnostic as the target.
        let mut g = DirectedGraph::new(2);
        g.add_edge(7, 1);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn from_adjacency_checks_bounds() {
        let _ = DirectedGraph::from_adjacency(vec![vec![3]]);
    }

    #[test]
    fn degree_statistics() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![]]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_out_degree(), 2);
        assert!((g.average_out_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn fixed_degree_memory_model() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![]]);
        // width = 2, 3 nodes, (2+1) u32 each.
        assert_eq!(g.memory_bytes_fixed_degree(), 3 * 3 * 4);
        assert_eq!(g.memory_bytes_exact(), (3 + 3 + 1) * 4);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![2], vec![]]);
        let r = g.reversed();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[1]);
        assert!(r.neighbors(0).is_empty());
    }

    #[test]
    fn set_neighbors_replaces_list() {
        let mut g = DirectedGraph::new(4);
        g.add_edge(0, 1);
        g.set_neighbors(0, vec![2, 3]);
        assert_eq!(g.neighbors(0), &[2, 3]);
    }

    #[test]
    fn edges_iterator_lists_all_pairs() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![0, 2], vec![]]);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn freeze_preserves_every_list_and_statistic() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![], vec![0, 1, 2]]);
        let c = g.freeze();
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.max_out_degree(), g.max_out_degree());
        assert_eq!(c.average_out_degree(), g.average_out_degree());
        assert_eq!(c.memory_bytes_fixed_degree(), g.memory_bytes_fixed_degree());
        assert_eq!(c.memory_bytes_exact(), g.memory_bytes_exact());
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(c.neighbors(v), g.neighbors(v), "node {v} list differs");
            assert_eq!(c.out_degree(v), g.out_degree(v));
        }
        assert_eq!(c.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn freeze_thaw_round_trips() {
        let g = DirectedGraph::from_adjacency(vec![vec![2], vec![], vec![0, 1]]);
        let c = CompactGraph::from(&g);
        assert_eq!(c.to_directed(), g);
        // Two independent freezes of the same graph compare equal.
        assert_eq!(CompactGraph::from_directed(&g), c);
    }

    #[test]
    fn compact_from_adjacency_matches_freeze() {
        let lists = vec![vec![1u32], vec![0, 2], vec![]];
        let via_directed = DirectedGraph::from_adjacency(lists.clone()).freeze();
        let direct = CompactGraph::from_adjacency(lists);
        assert_eq!(via_directed, direct);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn compact_from_adjacency_checks_bounds() {
        let _ = CompactGraph::from_adjacency(vec![vec![9]]);
    }

    #[test]
    fn empty_compact_graph() {
        let c = CompactGraph::empty();
        assert!(c.is_empty());
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.max_out_degree(), 0);
        assert_eq!(c.average_out_degree(), 0.0);
        assert_eq!(c.edges().count(), 0);
        assert_eq!(DirectedGraph::new(0).freeze(), c);
    }

    #[test]
    fn neighbor_lists_share_one_contiguous_arena() {
        // The whole point of the frozen layout: consecutive nodes' lists are
        // adjacent in memory, with no per-node allocation between them.
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![0, 1]]);
        let c = g.freeze();
        let a = c.neighbors(0);
        let b = c.neighbors(1);
        let d = c.neighbors(2);
        // SAFETY: each `add` lands one-past-the-end of its own subslice,
        // which `<*const T>::add` permits; the pointers are only compared,
        // never dereferenced.
        unsafe {
            assert_eq!(a.as_ptr().add(a.len()), b.as_ptr(), "lists 0 and 1 not adjacent");
            assert_eq!(b.as_ptr().add(b.len()), d.as_ptr(), "lists 1 and 2 not adjacent");
        }
    }

    #[test]
    fn graph_view_is_object_safe_and_generic_usable() {
        fn total_degree<G: GraphView + ?Sized>(g: &G) -> usize {
            (0..g.num_nodes() as u32).map(|v| g.out_degree(v)).sum()
        }
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![0, 1]]);
        let c = g.freeze();
        assert_eq!(total_degree(&g), 3);
        assert_eq!(total_degree(&c), 3);
        let dynamic: &dyn GraphView = &c;
        assert_eq!(dynamic.num_edges(), 3);
        assert_eq!(dynamic.memory_bytes_exact(), (3 + 2 + 1) * 4);
    }
}
