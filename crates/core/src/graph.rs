//! Directed graph adjacency used by every graph index in the workspace.
//!
//! The paper's indices are directed graphs over the node ids `0..n`. Lists are
//! stored per node; the memory model mirrors the released NSG / HNSW layout in
//! which every node is allocated `max_out_degree` slots so neighbor lists are
//! contiguous (Table 2 reports index sizes computed exactly this way).

use serde::{Deserialize, Serialize};

/// A directed graph on nodes `0..n` with per-node out-neighbor lists.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DirectedGraph {
    adjacency: Vec<Vec<u32>>,
}

impl DirectedGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Wraps prebuilt adjacency lists.
    ///
    /// # Panics
    /// Panics if any edge points outside `0..n`.
    pub fn from_adjacency(adjacency: Vec<Vec<u32>>) -> Self {
        let n = adjacency.len() as u32;
        for (v, list) in adjacency.iter().enumerate() {
            for &u in list {
                assert!(u < n, "edge {v} -> {u} points outside the graph");
            }
        }
        Self { adjacency }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Adds the directed edge `from -> to` if it is not already present.
    /// Returns `true` when the edge was inserted.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32) -> bool {
        assert!((to as usize) < self.adjacency.len(), "edge target out of range");
        let list = &mut self.adjacency[from as usize];
        if list.contains(&to) {
            false
        } else {
            list.push(to);
            true
        }
    }

    /// Replaces the out-neighbor list of `v`.
    ///
    /// # Panics
    /// Panics if `v` or any listed neighbor is out of range.
    pub fn set_neighbors(&mut self, v: u32, neighbors: Vec<u32>) {
        let n = self.adjacency.len() as u32;
        for &u in &neighbors {
            assert!(u < n, "edge {v} -> {u} points outside the graph");
        }
        self.adjacency[v as usize] = neighbors;
    }

    /// Average out-degree (the paper's AOD column in Table 2).
    pub fn average_out_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree (the paper's MOD column in Table 2).
    pub fn max_out_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Index memory in bytes under the fixed-degree layout the paper uses for
    /// Table 2: every node is allocated `max_out_degree` u32 slots plus one
    /// u32 degree counter, enabling contiguous access during search.
    pub fn memory_bytes_fixed_degree(&self) -> usize {
        let width = self.max_out_degree();
        self.num_nodes() * (width + 1) * std::mem::size_of::<u32>()
    }

    /// Index memory in bytes if lists were stored exactly (CSR-style), used to
    /// contrast with the fixed-degree model in the ablation benches.
    pub fn memory_bytes_exact(&self) -> usize {
        (self.num_edges() + self.num_nodes() + 1) * std::mem::size_of::<u32>()
    }

    /// Iterates over `(node, neighbor)` edge pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(v, list)| list.iter().map(move |&u| (v as u32, u)))
    }

    /// Consumes the graph, returning the adjacency lists.
    pub fn into_adjacency(self) -> Vec<Vec<u32>> {
        self.adjacency
    }

    /// Returns the reverse graph (every edge flipped).
    pub fn reversed(&self) -> DirectedGraph {
        let mut rev = vec![Vec::new(); self.num_nodes()];
        for (v, u) in self.edges() {
            rev[u as usize].push(v);
        }
        DirectedGraph { adjacency: rev }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_deduplicates() {
        let mut g = DirectedGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        let mut g = DirectedGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn from_adjacency_checks_bounds() {
        let _ = DirectedGraph::from_adjacency(vec![vec![3]]);
    }

    #[test]
    fn degree_statistics() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![]]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_out_degree(), 2);
        assert!((g.average_out_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn fixed_degree_memory_model() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![]]);
        // width = 2, 3 nodes, (2+1) u32 each.
        assert_eq!(g.memory_bytes_fixed_degree(), 3 * 3 * 4);
        assert_eq!(g.memory_bytes_exact(), (3 + 3 + 1) * 4);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![2], vec![]]);
        let r = g.reversed();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[1]);
        assert!(r.neighbors(0).is_empty());
    }

    #[test]
    fn set_neighbors_replaces_list() {
        let mut g = DirectedGraph::new(4);
        g.add_edge(0, 1);
        g.set_neighbors(0, vec![2, 3]);
        assert_eq!(g.neighbors(0), &[2, 3]);
    }

    #[test]
    fn edges_iterator_lists_all_pairs() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![0, 2], vec![]]);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 2)]);
    }
}
