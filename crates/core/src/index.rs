//! The common index interface every ANNS method in the workspace implements.
//!
//! The paper's evaluation sweeps one "effort" knob per algorithm (candidate
//! pool size for graph methods, probe count for LSH/IVFPQ, leaf checks for
//! KD-trees) and reports precision versus cost. [`SearchQuality`] is that
//! knob, [`SearchRequest`] bundles it with `k` and stats collection into one
//! query description, and [`AnnIndex`] is the interface the evaluation
//! harness drives.
//!
//! The serving-grade entry point is [`AnnIndex::search_into`]: it threads a
//! reusable [`SearchContext`] through the search so the hot loop performs no
//! heap allocation after warm-up, and returns scored [`Neighbor`]s. The
//! provided [`search`](AnnIndex::search) and
//! [`search_batch`](AnnIndex::search_batch) conveniences are built on top of
//! it — the batch path amortizes one context per worker thread.

use crate::context::{PinnedContext, SearchContext};
use crate::neighbor::Neighbor;
use crate::search::{SearchParams, SearchResult};
use nsg_vectors::VectorSet;
use rayon::prelude::*;

/// The per-query effort knob swept by the QPS-vs-precision experiments.
///
/// For graph-based methods this is the candidate pool size `l` of Algorithm 1;
/// for IVF-PQ it is the number of probed inverted lists; for LSH the number of
/// probed buckets; for KD-tree forests the number of leaves checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchQuality {
    /// Generic effort value; each index interprets it as documented above.
    pub effort: usize,
}

impl SearchQuality {
    /// Creates an effort level (clamped to at least 1).
    pub fn new(effort: usize) -> Self {
        Self { effort: effort.max(1) }
    }
}

impl Default for SearchQuality {
    fn default() -> Self {
        Self { effort: 100 }
    }
}

/// One k-NN query description: how many neighbors, at what effort, and
/// whether to collect instrumentation.
///
/// Built with a fluent builder:
///
/// ```
/// use nsg_core::index::SearchRequest;
/// let request = SearchRequest::new(10).with_effort(200).with_stats();
/// assert_eq!(request.k, 10);
/// assert_eq!(request.quality.effort, 200);
/// assert!(request.collect_stats);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchRequest {
    /// Number of neighbors to return.
    pub k: usize,
    /// Search effort (pool size / probes / checks).
    pub quality: SearchQuality,
    /// Exact-rerank factor `r` of the two-phase (quantized-traverse →
    /// exact-rerank) search: the traversal phase keeps `r · k` candidates,
    /// which are then rescored with exact `f32` distances and truncated to
    /// `k`. `0` and `1` both mean single-phase (no rerank). Supported by the
    /// store-generic indices (`NsgIndex`, `ShardedNsg`, `KGraphIndex`,
    /// `HnswIndex`) — meaningful when their traversal store is quantized,
    /// harmless (already-exact distances are rescored) when flat. The
    /// remaining baselines are single-phase by construction and ignore the
    /// knob.
    #[serde(default)]
    pub rerank: usize,
    /// Query-path trace sampling rate: `n > 0` samples one query in `n`
    /// (per context), timestamping the Algorithm 1 stages into the
    /// context's tracer and surfacing the breakdown via
    /// [`SearchContext::trace`]. `0` (the default) disables tracing; an
    /// untraced request pays exactly one sampling-decision branch.
    #[serde(default)]
    pub trace: u32,
    /// Whether the caller will read [`SearchContext::stats`] after
    /// `search_into`. Stats are guaranteed valid when this is `true`; every
    /// current index fills the counters unconditionally because they are
    /// free by-products of its search loop, so today the flag only records
    /// intent — it exists so a future index whose instrumentation has real
    /// cost (e.g. per-hop latency histograms) may skip it when `false`.
    pub collect_stats: bool,
}

impl SearchRequest {
    /// A request for `k` neighbors at the default effort.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            quality: SearchQuality::default(),
            rerank: 0,
            trace: 0,
            collect_stats: false,
        }
    }

    /// Sets the effort knob.
    pub fn with_effort(mut self, effort: usize) -> Self {
        self.quality = SearchQuality::new(effort);
        self
    }

    /// Sets the effort knob from an existing [`SearchQuality`].
    pub fn with_quality(mut self, quality: SearchQuality) -> Self {
        self.quality = quality;
        self
    }

    /// Opts into per-query instrumentation.
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// Enables two-phase search: traverse keeping `factor · k` candidates,
    /// then exact-rerank them down to `k` (see [`rerank`](Self::rerank)).
    pub fn with_rerank(mut self, factor: usize) -> Self {
        self.rerank = factor;
        self
    }

    /// Samples one query in `every` for per-stage tracing (see
    /// [`trace`](Self::trace)); `0` disables sampling.
    pub fn with_trace(mut self, every: u32) -> Self {
        self.trace = every;
        self
    }

    /// The effective rerank factor (`max(rerank, 1)`).
    pub fn rerank_factor(&self) -> usize {
        self.rerank.max(1)
    }

    /// Number of candidates the traversal phase must retain:
    /// `rerank_factor() · k`.
    pub fn rerank_candidates(&self) -> usize {
        self.k.saturating_mul(self.rerank_factor())
    }

    /// Derives the Algorithm 1 parameters from this request — the **single**
    /// place the effort knob becomes a candidate pool size (`pool_size =
    /// effort`, clamped to at least `k`). Graph indices must use this instead
    /// of hand-building [`SearchParams`] on the query path.
    pub fn params(&self) -> SearchParams {
        SearchParams::new(self.quality.effort, self.k)
    }

    /// The traversal-phase parameters of a two-phase search: same effort
    /// knob, but the traversal keeps [`rerank_candidates`](Self::rerank_candidates)
    /// results so the exact-rerank phase
    /// ([`exact_rerank`](crate::search::exact_rerank)) has `r · k` candidates
    /// to rescore. Identical to [`params`](Self::params) when no rerank is
    /// requested, so rerank-capable indices call this unconditionally.
    pub fn traversal_params(&self) -> SearchParams {
        SearchParams::new(self.quality.effort, self.rerank_candidates())
    }
}

impl From<&SearchRequest> for SearchParams {
    fn from(request: &SearchRequest) -> Self {
        request.params()
    }
}

/// A built approximate-nearest-neighbor index that can answer k-NN queries.
///
/// Implementations provide the context-reuse fast path
/// ([`search_into`](Self::search_into)) plus a context factory
/// ([`new_context`](Self::new_context)); the owned-result conveniences are
/// provided. The context-per-worker model is the shape thread pools need:
/// one context per thread, reused across that thread's queries.
pub trait AnnIndex: Send + Sync {
    /// Creates a search context pre-sized for this index. Contexts are
    /// reusable across queries and requests; create one per worker thread.
    fn new_context(&self) -> SearchContext;

    /// Answers one query inside `ctx`, returning the (approximately) `request.k`
    /// nearest base vectors as scored [`Neighbor`]s, best first. The returned
    /// slice borrows `ctx` and is overwritten by the next search; per-query
    /// instrumentation is left in [`SearchContext::stats`].
    ///
    /// Allocation contract: **graph indices** must not allocate on this path
    /// once `ctx` is warm (enforced by the `alloc_guard` test). The
    /// non-graph baselines are exempt where their algorithm needs per-query
    /// structures (IVF-PQ rebuilds per-probed-list ADC lookup tables, the
    /// KD-forest a branch queue); they still reuse the context's candidate
    /// and result buffers.
    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor];

    /// Estimated resident memory of the index structure in bytes, excluding
    /// the raw vectors (the paper's Table 2 reports graph memory separately
    /// from the data).
    fn memory_bytes(&self) -> usize;

    /// Human-readable algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// One-off convenience: answers a single query on a fresh context.
    /// Prefer [`search_into`](Self::search_into) in loops.
    fn search(&self, query: &[f32], request: &SearchRequest) -> Vec<Neighbor> {
        let mut ctx = self.new_context();
        self.search_into(&mut ctx, request, query).to_vec()
    }

    /// One-off convenience returning the answer together with its
    /// instrumentation as an owned [`SearchResult`] (used by the
    /// distance-counting experiments). Prefer
    /// [`search_into`](Self::search_into) + [`SearchContext::stats`] in
    /// loops.
    fn search_with_stats(&self, query: &[f32], request: &SearchRequest) -> SearchResult {
        let mut ctx = self.new_context();
        let neighbors = self.search_into(&mut ctx, &request.with_stats(), query).to_vec();
        SearchResult { neighbors, stats: ctx.stats() }
    }

    /// Answers a batch of queries, amortizing one [`SearchContext`] per
    /// worker thread (parallel across the queries; results are returned in
    /// query order regardless of the worker count).
    ///
    /// The per-worker context comes from the same [`PinnedContext`] helper
    /// the `nsg-serve` worker threads pin — one shared definition of the
    /// "one context per worker" pattern — threaded through rayon's
    /// `map_init` hook so each worker materializes its context once.
    fn search_batch(&self, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<Neighbor>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        (0..n)
            .into_par_iter()
            .map_init(PinnedContext::new, |pinned, q| {
                pinned.search(self, request, queries.get(q)).to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor;
    use nsg_vectors::synthetic::uniform;

    struct Dummy;
    impl AnnIndex for Dummy {
        fn new_context(&self) -> SearchContext {
            SearchContext::new()
        }
        fn search_into<'a>(
            &self,
            ctx: &'a mut SearchContext,
            request: &SearchRequest,
            _query: &[f32],
        ) -> &'a [Neighbor] {
            ctx.results.clear();
            ctx.results.extend(
                (0..request.k.min(request.quality.effort) as u32).map(|i| Neighbor::new(i, i as f32)),
            );
            &ctx.results
        }
        fn memory_bytes(&self) -> usize {
            42
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn quality_clamps_to_one() {
        assert_eq!(SearchQuality::new(0).effort, 1);
        assert_eq!(SearchQuality::default().effort, 100);
    }

    #[test]
    fn request_builder_composes() {
        let r = SearchRequest::new(5).with_effort(64).with_stats();
        assert_eq!(r.k, 5);
        assert_eq!(r.quality.effort, 64);
        assert!(r.collect_stats);
        let r2 = SearchRequest::new(3).with_quality(SearchQuality::new(7));
        assert_eq!(r2.quality.effort, 7);
        assert!(!r2.collect_stats);
    }

    #[test]
    fn params_derive_from_the_request_in_one_place() {
        // pool_size = effort, clamped to at least k.
        let r = SearchRequest::new(10).with_effort(3);
        assert_eq!(r.params(), SearchParams::new(3, 10));
        assert_eq!(r.params().pool_size, 10);
        let p: SearchParams = (&SearchRequest::new(2).with_effort(50)).into();
        assert_eq!(p, SearchParams { pool_size: 50, k: 2 });
    }

    #[test]
    fn rerank_knob_scales_the_traversal_phase_only() {
        let r = SearchRequest::new(10).with_effort(100);
        assert_eq!(r.rerank_factor(), 1);
        assert_eq!(r.rerank_candidates(), 10);
        assert_eq!(r.traversal_params(), r.params(), "no rerank: phases coincide");

        let two_phase = r.with_rerank(4);
        assert_eq!(two_phase.rerank_factor(), 4);
        assert_eq!(two_phase.rerank_candidates(), 40);
        assert_eq!(two_phase.traversal_params(), SearchParams::new(100, 40));
        // params() stays the single-phase translation.
        assert_eq!(two_phase.params(), SearchParams::new(100, 10));
        // The pool is clamped up when r·k exceeds the effort.
        assert_eq!(
            SearchRequest::new(20).with_effort(10).with_rerank(3).traversal_params().pool_size,
            60
        );
        // Factor 0 behaves like factor 1 (single-phase).
        assert_eq!(r.with_rerank(0).rerank_candidates(), 10);
    }

    #[test]
    fn trait_object_is_usable() {
        let b: Box<dyn AnnIndex> = Box::new(Dummy);
        let res = b.search(&[0.0], &SearchRequest::new(3).with_effort(10));
        assert_eq!(neighbor::ids(&res), vec![0, 1, 2]);
        assert_eq!(b.memory_bytes(), 42);
        assert_eq!(b.name(), "dummy");
    }

    #[test]
    fn arc_trait_object_is_shareable_across_threads() {
        // The serving subsystem's snapshot type: an `Arc<dyn AnnIndex>`
        // cloned into concurrent workers. Object safety plus the Send + Sync
        // supertraits must keep this compiling and working.
        use std::sync::Arc;
        let index: Arc<dyn AnnIndex> = Arc::new(Dummy);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let index = Arc::clone(&index);
                std::thread::spawn(move || {
                    let mut pinned = PinnedContext::new();
                    let got = pinned
                        .search(index.as_ref(), &SearchRequest::new(2).with_effort(10), &[0.0])
                        .to_vec();
                    neighbor::ids(&got)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1]);
        }
    }

    #[test]
    fn pinned_context_reuses_across_indices() {
        let mut pinned = PinnedContext::new();
        assert!(pinned.results().is_empty());
        let a = Dummy;
        let b: Box<dyn AnnIndex> = Box::new(Dummy);
        let r1 = pinned.search(&a, &SearchRequest::new(3).with_effort(10), &[0.0]).to_vec();
        assert_eq!(neighbor::ids(&r1), vec![0, 1, 2]);
        // Same pin, different index (a trait object): context carries over.
        let r2 = pinned.search(b.as_ref(), &SearchRequest::new(1).with_effort(10), &[0.0]).to_vec();
        assert_eq!(neighbor::ids(&r2), vec![0]);
        assert_eq!(pinned.results(), r2.as_slice());
    }

    #[test]
    fn search_batch_preserves_query_order() {
        let queries = uniform(37, 2, 1);
        let b: Box<dyn AnnIndex> = Box::new(Dummy);
        let batch = b.search_batch(&queries, &SearchRequest::new(2).with_effort(10));
        assert_eq!(batch.len(), 37);
        for r in &batch {
            assert_eq!(neighbor::ids(r), vec![0, 1]);
        }
        let empty = b.search_batch(&uniform(0, 2, 1), &SearchRequest::new(2));
        assert!(empty.is_empty());
    }
}
