//! The common index interface every ANNS method in the workspace implements.
//!
//! The paper's evaluation sweeps one "effort" knob per algorithm (candidate
//! pool size for graph methods, probe count for LSH/IVFPQ, leaf checks for
//! KD-trees) and reports precision versus cost. [`SearchQuality`] is that
//! knob, and [`AnnIndex`] is the interface the evaluation harness drives.

/// The per-query effort knob swept by the QPS-vs-precision experiments.
///
/// For graph-based methods this is the candidate pool size `l` of Algorithm 1;
/// for IVF-PQ it is the number of probed inverted lists; for LSH the number of
/// probed buckets; for KD-tree forests the number of leaves checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchQuality {
    /// Generic effort value; each index interprets it as documented above.
    pub effort: usize,
}

impl SearchQuality {
    /// Creates an effort level (clamped to at least 1).
    pub fn new(effort: usize) -> Self {
        Self { effort: effort.max(1) }
    }
}

impl Default for SearchQuality {
    fn default() -> Self {
        Self { effort: 100 }
    }
}

/// A built approximate-nearest-neighbor index that can answer k-NN queries.
pub trait AnnIndex: Send + Sync {
    /// Returns the ids of (approximately) the `k` nearest base vectors to
    /// `query`, best first.
    fn search(&self, query: &[f32], k: usize, quality: SearchQuality) -> Vec<u32>;

    /// Estimated resident memory of the index structure in bytes, excluding
    /// the raw vectors (the paper's Table 2 reports graph memory separately
    /// from the data).
    fn memory_bytes(&self) -> usize;

    /// Human-readable algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl AnnIndex for Dummy {
        fn search(&self, _query: &[f32], k: usize, quality: SearchQuality) -> Vec<u32> {
            (0..k.min(quality.effort) as u32).collect()
        }
        fn memory_bytes(&self) -> usize {
            42
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn quality_clamps_to_one() {
        assert_eq!(SearchQuality::new(0).effort, 1);
        assert_eq!(SearchQuality::default().effort, 100);
    }

    #[test]
    fn trait_object_is_usable() {
        let b: Box<dyn AnnIndex> = Box::new(Dummy);
        assert_eq!(b.search(&[0.0], 3, SearchQuality::new(10)), vec![0, 1, 2]);
        assert_eq!(b.memory_bytes(), 42);
        assert_eq!(b.name(), "dummy");
    }
}
