//! Core contribution of the paper: the Monotonic Relative Neighborhood Graph
//! (MRNG) and its practical approximation, the Navigating Spreading-out Graph
//! (NSG), together with the shared greedy search routine (Algorithm 1), graph
//! analytics, serialization and sharded (distributed-style) search.

// Every `unsafe` operation inside an `unsafe fn` must carry its own block
// (and, per the lint gate's R4, its own SAFETY comment). Core's only unsafe
// today is test-only pointer math, but the deny keeps future unsafe honest.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod context;
pub mod delta;
pub mod format;
pub mod graph;
pub mod index;
pub mod mrng;
pub mod neighbor;
pub mod nsg;
pub mod search;
pub mod serialize;
pub mod sharded;
pub mod snapshot;
pub mod stats;

pub use context::SearchContext;
pub use delta::{
    CompactedPair, DeltaConfig, DeltaStats, MutableAnnIndex, MutableIndex, MutateError, Tombstones,
};
pub use graph::{CompactGraph, DirectedGraph, GraphView};
pub use index::{AnnIndex, SearchQuality, SearchRequest};
pub use mrng::{build_mrng, build_rng_graph, MrngParams};
pub use neighbor::{CandidatePool, Neighbor};
pub use nsg::{NsgIndex, NsgParams};
pub use search::{
    search_on_graph, search_on_graph_into, SearchParams, SearchResult, SearchStats, VisitedSet,
};
pub use sharded::ShardedNsg;
pub use snapshot::{write_snapshot, write_quantized_snapshot, Snapshot};
