//! Core contribution of the paper: the Monotonic Relative Neighborhood Graph
//! (MRNG) and its practical approximation, the Navigating Spreading-out Graph
//! (NSG), together with the shared greedy search routine (Algorithm 1), graph
//! analytics, serialization and sharded (distributed-style) search.

pub mod context;
pub mod graph;
pub mod index;
pub mod mrng;
pub mod neighbor;
pub mod nsg;
pub mod search;
pub mod serialize;
pub mod sharded;
pub mod stats;

pub use context::SearchContext;
pub use graph::{CompactGraph, DirectedGraph, GraphView};
pub use index::{AnnIndex, SearchQuality, SearchRequest};
pub use mrng::{build_mrng, build_rng_graph, MrngParams};
pub use neighbor::{CandidatePool, Neighbor};
pub use nsg::{NsgIndex, NsgParams};
pub use search::{
    search_on_graph, search_on_graph_into, SearchParams, SearchResult, SearchStats, VisitedSet,
};
pub use sharded::ShardedNsg;
