//! Exact MRNG (Monotonic Relative Neighborhood Graph, Definition 5) and RNG
//! (Relative Neighborhood Graph) construction, plus monotonicity checks.
//!
//! The MRNG is the paper's theoretical contribution: a directed graph in which
//! the edge `p -> q` exists iff `lune(p, q)` contains no point `r` with
//! `p -> r` already an MRNG edge — equivalently, processing the candidates of
//! `p` in ascending distance order, `q` is selected iff for every
//! already-selected `r`, `pq` is **not** the longest edge of triangle `pqr`
//! (`δ(p, q) <= max(δ(p, r), δ(q, r))`, i.e. `δ(q, r) >= δ(p, q)` since
//! `δ(p, r) <= δ(p, q)` by the processing order).
//!
//! The RNG keeps `p - q` only when the lune is completely empty, which is
//! strictly stricter; Theorem 3 shows the MRNG is a monotonic search network
//! while Figure 3 shows the RNG is not. Both builders are O(n² log n + n²·c)
//! and are meant for analysis-scale datasets and ablations, exactly as in the
//! paper (the practical index is the NSG).

use crate::graph::{DirectedGraph, GraphView};
use crate::neighbor::Neighbor;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use rayon::prelude::*;

/// Parameters of the exact MRNG construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrngParams {
    /// Optional cap on the out-degree. `None` reproduces the full MRNG of
    /// Definition 5; Lemma 2 shows the uncapped degree is bounded by a
    /// constant depending only on the dimension, so the cap exists only to
    /// bound worst-case memory on adversarial inputs.
    pub max_degree: Option<usize>,
}

/// Selects MRNG edges for one node from candidates sorted by ascending
/// distance to the node. This is the paper's edge-selection strategy, shared
/// verbatim by the NSG pruning step (Algorithm 2 lines 9–22).
///
/// `candidates` must be sorted ascending by `dist` and must not contain the
/// node itself. Returns the selected neighbor ids in selection order.
pub fn mrng_select<D: Distance + ?Sized>(
    base: &VectorSet,
    node: &[f32],
    candidates: &[Neighbor],
    max_degree: usize,
    metric: &D,
) -> Vec<u32> {
    debug_assert!(candidates.windows(2).all(|w| w[0].dist <= w[1].dist));
    let _ = node;
    let mut selected: Vec<Neighbor> = Vec::with_capacity(max_degree.min(candidates.len()));
    for &c in candidates {
        if selected.len() >= max_degree {
            break;
        }
        if selected.iter().any(|r| r.id == c.id) {
            continue;
        }
        // Conflict: some already-selected r is closer to q than p is
        // (δ(q, r) < δ(p, q)), i.e. r lies in lune(p, q) and pq is the longest
        // edge of triangle pqr, so the edge p->q is pruned.
        let conflict = selected.iter().any(|r| {
            let d_qr = metric.distance(base.get(c.id as usize), base.get(r.id as usize));
            d_qr < c.dist
        });
        if !conflict {
            selected.push(c);
        }
    }
    selected.into_iter().map(|n| n.id).collect()
}

/// Builds the exact MRNG of `base` under `metric` (O(n²) distance
/// evaluations; intended for analysis-scale inputs).
pub fn build_mrng<D: Distance + Sync + ?Sized>(
    base: &VectorSet,
    params: MrngParams,
    metric: &D,
) -> DirectedGraph {
    let n = base.len();
    let cap = params.max_degree.unwrap_or(usize::MAX);
    let adjacency: Vec<Vec<u32>> = (0..n)
        .into_par_iter()
        .map(|p| {
            let pv = base.get(p);
            let mut candidates: Vec<Neighbor> = (0..n)
                .filter(|&q| q != p)
                .map(|q| Neighbor::new(q as u32, metric.distance(pv, base.get(q))))
                .collect();
            candidates.sort_unstable_by(Neighbor::ordering);
            mrng_select(base, pv, &candidates, cap, metric)
        })
        .collect();
    DirectedGraph::from_adjacency(adjacency)
}

/// Builds the exact RNG of `base`: the undirected graph keeping edge `p - q`
/// iff no third point is strictly closer to both `p` and `q`
/// (`lune(p, q) ∩ S = ∅`). Returned as a directed graph containing both
/// directions of every undirected edge.
pub fn build_rng_graph<D: Distance + Sync + ?Sized>(base: &VectorSet, metric: &D) -> DirectedGraph {
    let n = base.len();
    let adjacency: Vec<Vec<u32>> = (0..n)
        .into_par_iter()
        .map(|p| {
            let pv = base.get(p);
            let mut out = Vec::new();
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d_pq = metric.distance(pv, base.get(q));
                let mut empty_lune = true;
                for r in 0..n {
                    if r == p || r == q {
                        continue;
                    }
                    let d_pr = metric.distance(pv, base.get(r));
                    if d_pr >= d_pq {
                        continue;
                    }
                    let d_qr = metric.distance(base.get(q), base.get(r));
                    if d_qr < d_pq {
                        empty_lune = false;
                        break;
                    }
                }
                if empty_lune {
                    out.push(q as u32);
                }
            }
            out
        })
        .collect();
    DirectedGraph::from_adjacency(adjacency)
}

/// Checks whether a *monotonic* path from `from` to `to` exists in `graph`:
/// a path along which every step strictly decreases the distance to
/// `base[to]` (Definition 3). Used by the property tests that verify
/// Theorem 3 (the MRNG is an MSNET) and by the RNG counter-example ablation.
pub fn has_monotonic_path<G: GraphView + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    base: &VectorSet,
    from: u32,
    to: u32,
    metric: &D,
) -> bool {
    if from == to {
        return true;
    }
    let target = base.get(to as usize);
    // BFS over the subgraph of edges that strictly decrease distance to the
    // target; reaching `to` proves a monotonic path exists.
    let mut visited = vec![false; graph.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    visited[from as usize] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        let dv = metric.distance(base.get(v as usize), target);
        for &u in graph.neighbors(v) {
            if u == to {
                return true;
            }
            if visited[u as usize] {
                continue;
            }
            let du = metric.distance(base.get(u as usize), target);
            if du < dv {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    false
}

/// Checks whether greedy search (Algorithm 1 with pool size 1, i.e. pure
/// greedy descent with no backtracking) started at `from` reaches `to`.
/// Theorem 1 states this always succeeds on an MSNET.
pub fn greedy_reaches<G: GraphView + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    base: &VectorSet,
    from: u32,
    to: u32,
    metric: &D,
) -> bool {
    let target = base.get(to as usize);
    let mut current = from;
    let mut current_dist = metric.distance(base.get(current as usize), target);
    loop {
        if current == to {
            return true;
        }
        let mut best = current;
        let mut best_dist = current_dist;
        for &u in graph.neighbors(current) {
            let d = metric.distance(base.get(u as usize), target);
            if d < best_dist {
                best_dist = d;
                best = u;
            }
        }
        if best == current {
            return false; // local optimum that is not the target
        }
        current = best;
        current_dist = best_dist;
    }
}

/// Fraction of ordered node pairs `(p, q)` connected by a monotonic path.
/// The MRNG must score 1.0 (Theorem 3); the RNG generally scores below 1.0.
pub fn monotonic_pair_fraction<G: GraphView + Sync + ?Sized, D: Distance + Sync + ?Sized>(
    graph: &G,
    base: &VectorSet,
    metric: &D,
) -> f64 {
    let n = graph.num_nodes();
    if n < 2 {
        return 1.0;
    }
    let ok: usize = (0..n as u32)
        .into_par_iter()
        .map(|p| {
            (0..n as u32)
                .filter(|&q| q != p && has_monotonic_path(graph, base, p, q, metric))
                .count()
        })
        .sum();
    ok as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;
    use nsg_vectors::VectorSet;

    #[test]
    fn mrng_contains_the_nearest_neighbor_edge() {
        // NNG ⊂ MRNG (Figure 4 discussion): the first candidate is always
        // selected because nothing has been selected before it.
        let base = uniform(120, 4, 3);
        let g = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        for p in 0..base.len() {
            let (ids, _) = nsg_vectors::ground_truth::exact_knn_single(
                &base,
                base.get(p),
                2,
                &SquaredEuclidean,
            );
            let nn = ids.into_iter().find(|&i| i as usize != p).unwrap();
            assert!(
                g.neighbors(p as u32).contains(&nn),
                "node {p} not linked to its nearest neighbor {nn}"
            );
        }
    }

    #[test]
    fn mrng_is_monotonic_between_all_pairs() {
        // Theorem 3: the MRNG is an MSNET.
        let base = uniform(60, 3, 7);
        let g = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        let frac = monotonic_pair_fraction(&g, &base, &SquaredEuclidean);
        assert_eq!(frac, 1.0, "MRNG must have a monotonic path between every pair");
    }

    #[test]
    fn greedy_search_never_gets_stuck_on_mrng() {
        // Theorem 1: Algorithm 1 finds the target without backtracking.
        let base = uniform(50, 2, 13);
        let g = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        for p in 0..base.len() as u32 {
            for q in 0..base.len() as u32 {
                assert!(
                    greedy_reaches(&g, &base, p, q, &SquaredEuclidean),
                    "greedy descent stuck going {p} -> {q}"
                );
            }
        }
    }

    #[test]
    fn mrng_has_at_least_as_many_edges_as_rng() {
        // The MRNG relaxes the RNG's lune-empty rule, so (per direction) it
        // can only add edges.
        let base = uniform(80, 3, 5);
        let mrng = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        let rng = build_rng_graph(&base, &SquaredEuclidean);
        assert!(mrng.num_edges() >= rng.num_edges());
    }

    #[test]
    fn rng_is_symmetric() {
        let base = uniform(40, 2, 11);
        let rng = build_rng_graph(&base, &SquaredEuclidean);
        for (v, u) in rng.edges() {
            assert!(rng.neighbors(u).contains(&v), "RNG edge {v}-{u} not symmetric");
        }
    }

    #[test]
    fn mrng_average_degree_is_small_and_independent_of_n() {
        // Lemma 2: constant expected degree. Compare two sizes of the same
        // distribution; the average degree should not grow with n.
        let small = uniform(100, 4, 2);
        let large = uniform(400, 4, 2);
        let g_small = build_mrng(&small, MrngParams::default(), &SquaredEuclidean);
        let g_large = build_mrng(&large, MrngParams::default(), &SquaredEuclidean);
        let d_small = g_small.average_out_degree();
        let d_large = g_large.average_out_degree();
        assert!(d_large < d_small * 1.8 + 2.0, "degree grew too fast: {d_small} -> {d_large}");
        assert!(d_large < 30.0, "MRNG degree unexpectedly large: {d_large}");
    }

    #[test]
    fn degree_cap_is_respected() {
        let base = uniform(150, 6, 9);
        let g = build_mrng(&base, MrngParams { max_degree: Some(5) }, &SquaredEuclidean);
        assert!(g.max_out_degree() <= 5);
    }

    #[test]
    fn mrng_select_prunes_collinear_chain() {
        // Points on a line at 0, 1, 2, 3: from node 0 only the point at 1
        // survives (every farther point has the closer one inside the lune).
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [3.0]]);
        let candidates = vec![Neighbor::new(1, 1.0), Neighbor::new(2, 4.0), Neighbor::new(3, 9.0)];
        let sel = mrng_select(&base, base.get(0), &candidates, 10, &SquaredEuclidean);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn mrng_select_keeps_well_separated_directions() {
        // Four points around the origin in different directions survive
        // pruning because no selected edge shadows another.
        let base = VectorSet::from_rows(
            2,
            &[[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]],
        );
        let candidates: Vec<Neighbor> = (1..5)
            .map(|q| Neighbor::new(q as u32, SquaredEuclidean.distance(base.get(0), base.get(q))))
            .collect();
        let sel = mrng_select(&base, base.get(0), &candidates, 10, &SquaredEuclidean);
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn rng_on_a_line_keeps_only_adjacent_edges() {
        let base = VectorSet::from_rows(1, &(0..6).map(|i| [i as f32]).collect::<Vec<_>>());
        let rng = build_rng_graph(&base, &SquaredEuclidean);
        // Interior node 3 keeps exactly 2 and 4.
        let mut ns: Vec<u32> = rng.neighbors(3).to_vec();
        ns.sort_unstable();
        assert_eq!(ns, vec![2, 4]);
    }

    #[test]
    fn monotonic_path_detection_on_a_line() {
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0]]);
        let mut g = DirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(has_monotonic_path(&g, &base, 0, 2, &SquaredEuclidean));
        // No edges back: 2 cannot monotonically reach 0.
        assert!(!has_monotonic_path(&g, &base, 2, 0, &SquaredEuclidean));
        assert!(has_monotonic_path(&g, &base, 1, 1, &SquaredEuclidean));
    }
}
