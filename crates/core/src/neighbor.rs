//! The universal scored result unit ([`Neighbor`]) and the candidate pool of
//! Algorithm 1 ([`CandidatePool`]).
//!
//! The search-on-graph routine keeps a pool `S` of at most `l` candidates
//! sorted by ascending distance to the query, repeatedly expands the first
//! unchecked candidate, and terminates when every candidate in the pool has
//! been checked. [`CandidatePool`] implements exactly that data structure with
//! the sorted-insertion scheme the released NSG code uses.

/// A scored query answer: a node id and its distance to the query.
///
/// This is the result unit every index in the workspace returns — the paper's
/// whole evaluation is cost versus precision, and precision analysis needs the
/// distances, not just the ids. `Neighbor` lists are always sorted ascending
/// by distance with ties broken by id, so batch results are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Neighbor {
    /// Node id in the index's base set.
    pub id: u32,
    /// Distance from the query to this node (in the index's metric).
    pub dist: f32,
}

impl Neighbor {
    /// Creates a scored neighbor.
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }

    /// The canonical result ordering: ascending distance, ties broken by id.
    pub fn ordering(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
        a.dist.total_cmp(&b.dist).then_with(|| a.id.cmp(&b.id))
    }
}

/// Extracts the bare ids of a result list (for precision evaluation against
/// id-based ground truth).
pub fn ids(neighbors: &[Neighbor]) -> Vec<u32> {
    neighbors.iter().map(|n| n.id).collect()
}

/// One entry of the candidate pool: a scored candidate plus whether Algorithm
/// 1 has already expanded its out-edges ("checked" in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEntry {
    /// Node id.
    pub id: u32,
    /// Distance from the query to this node.
    pub dist: f32,
    /// Whether Algorithm 1 has already expanded this node's out-edges.
    pub checked: bool,
}

impl PoolEntry {
    /// Creates an unchecked pool entry.
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist, checked: false }
    }
}

/// Fixed-capacity pool of the best `l` candidates seen so far, sorted by
/// ascending distance (ties broken by id so the order is deterministic).
#[derive(Debug, Clone)]
pub struct CandidatePool {
    entries: Vec<PoolEntry>,
    capacity: usize,
}

impl CandidatePool {
    /// Creates an empty pool with capacity `l`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "candidate pool capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Clears the pool and re-targets it at a (possibly different) capacity,
    /// reusing the existing allocation. After the first search at a given
    /// capacity this performs no heap allocation — the context-reuse fast
    /// path of [`SearchContext`](crate::context::SearchContext).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "candidate pool capacity must be positive");
        self.entries.clear();
        // +1: `insert` may briefly hold capacity+1 entries before evicting.
        self.entries.reserve(capacity + 1);
        self.capacity = capacity;
    }

    /// Pool capacity `l`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The candidates in ascending distance order.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Inserts a candidate. Returns `true` when the candidate entered the pool
    /// (it was better than the current worst or the pool was not full) and was
    /// not already present.
    ///
    /// # Contract
    ///
    /// A node's distance to the query is a pure function of the node, so the
    /// same `id` must always be offered with the same `dist`. Under that
    /// contract the O(log l) sorted-position probe below fully deduplicates:
    /// an `(id, dist)` pair re-offered through a different edge lands on its
    /// existing entry and is rejected. The search loop additionally
    /// deduplicates via [`VisitedSet`](crate::search::VisitedSet), so in
    /// Algorithm 1 this path never even sees a repeat. (An earlier version
    /// also ran an O(l) full-pool id scan on every insertion — measurable in
    /// the Algorithm 1 hot loop and redundant with both checks above, so it
    /// was removed. Offering one id with two different distances violates the
    /// contract and may duplicate the id in the pool.)
    // lint:hot-path
    pub fn insert(&mut self, id: u32, dist: f32) -> bool {
        if self.entries.len() >= self.capacity
            && self
                .entries
                .last()
                .is_some_and(|worst| dist > worst.dist || (dist == worst.dist && id >= worst.id))
        {
            return false;
        }
        let pos = self
            .entries
            .partition_point(|e| e.dist < dist || (e.dist == dist && e.id < id));
        // Reject duplicates (the same node reached through different edges).
        if pos < self.entries.len() && self.entries[pos].id == id && self.entries[pos].dist == dist {
            return false;
        }
        self.entries.insert(pos, PoolEntry::new(id, dist));
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        // Local sortedness at the insertion point; by induction (the pool is
        // only ever mutated here) the whole pool stays sorted.
        debug_assert!(pos == 0 || {
            let p = &self.entries[pos - 1];
            p.dist < dist || (p.dist == dist && p.id < id)
        });
        debug_assert!(pos + 1 >= self.entries.len() || {
            let nxt = &self.entries[pos + 1];
            dist < nxt.dist || (dist == nxt.dist && id < nxt.id)
        });
        true
    }

    /// Index of the first unchecked candidate, if any. This is line 4 of
    /// Algorithm 1 ("the index of the first unchecked node in S").
    pub fn first_unchecked(&self) -> Option<usize> {
        self.entries.iter().position(|e| !e.checked)
    }

    /// Marks candidate `index` as checked and returns its id.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn mark_checked(&mut self, index: usize) -> u32 {
        self.entries[index].checked = true;
        self.entries[index].id
    }

    /// Ids of the first `k` candidates (the answer of Algorithm 1).
    pub fn top_k_ids(&self, k: usize) -> Vec<u32> {
        self.entries.iter().take(k).map(|e| e.id).collect()
    }

    /// The first `k` candidates as scored [`Neighbor`]s.
    pub fn top_k(&self, k: usize) -> Vec<Neighbor> {
        self.entries.iter().take(k).map(|e| Neighbor::new(e.id, e.dist)).collect()
    }

    /// Appends the first `k` candidates to `out` without allocating beyond
    /// `out`'s existing capacity growth — the zero-allocation result path of
    /// `search_into`.
    pub fn top_k_into(&self, k: usize, out: &mut Vec<Neighbor>) {
        out.extend(self.entries.iter().take(k).map(|e| Neighbor::new(e.id, e.dist)));
    }

    /// Clears the pool for reuse across queries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_order() {
        let mut pool = CandidatePool::new(4);
        pool.insert(5, 3.0);
        pool.insert(7, 1.0);
        pool.insert(2, 2.0);
        let dists: Vec<f32> = pool.entries().iter().map(|e| e.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn capacity_is_enforced_and_worst_is_evicted() {
        let mut pool = CandidatePool::new(2);
        assert!(pool.insert(1, 5.0));
        assert!(pool.insert(2, 3.0));
        assert!(pool.insert(3, 1.0)); // evicts id 1
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.top_k_ids(2), vec![3, 2]);
        // Worse than everything in a full pool: rejected.
        assert!(!pool.insert(4, 9.0));
    }

    #[test]
    fn duplicates_are_rejected() {
        // Re-offering the same (id, dist) — a node reached through a second
        // edge — is rejected without any full-pool scan. (Same id with a
        // *different* distance violates the insert contract; see `insert`.)
        let mut pool = CandidatePool::new(4);
        assert!(pool.insert(1, 2.0));
        assert!(!pool.insert(1, 2.0));
        assert!(!pool.insert(1, 2.0));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn first_unchecked_walks_forward() {
        let mut pool = CandidatePool::new(4);
        pool.insert(1, 1.0);
        pool.insert(2, 2.0);
        assert_eq!(pool.first_unchecked(), Some(0));
        assert_eq!(pool.mark_checked(0), 1);
        assert_eq!(pool.first_unchecked(), Some(1));
        pool.mark_checked(1);
        assert_eq!(pool.first_unchecked(), None);
    }

    #[test]
    fn newly_inserted_better_candidate_becomes_unchecked_head() {
        let mut pool = CandidatePool::new(4);
        pool.insert(1, 5.0);
        pool.mark_checked(0);
        // A closer candidate arrives after the head was checked: Algorithm 1
        // must revisit it.
        pool.insert(2, 1.0);
        assert_eq!(pool.first_unchecked(), Some(0));
        assert_eq!(pool.entries()[0].id, 2);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut pool = CandidatePool::new(4);
        pool.insert(9, 1.0);
        pool.insert(3, 1.0);
        assert_eq!(pool.top_k_ids(2), vec![3, 9]);
    }

    #[test]
    fn top_k_truncates_to_pool_size() {
        let mut pool = CandidatePool::new(4);
        pool.insert(1, 1.0);
        assert_eq!(pool.top_k_ids(10), vec![1]);
        assert_eq!(pool.top_k(10), vec![Neighbor::new(1, 1.0)]);
        let mut out = Vec::new();
        pool.top_k_into(10, &mut out);
        assert_eq!(out, vec![Neighbor::new(1, 1.0)]);
    }

    #[test]
    fn clear_resets_pool() {
        let mut pool = CandidatePool::new(2);
        pool.insert(1, 1.0);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.first_unchecked(), None);
    }

    #[test]
    fn reset_retargets_capacity_and_reuses_allocation() {
        let mut pool = CandidatePool::new(2);
        pool.insert(1, 1.0);
        pool.insert(2, 2.0);
        pool.reset(4);
        assert!(pool.is_empty());
        assert_eq!(pool.capacity(), 4);
        for id in 0..6 {
            pool.insert(id, f32::from(id as u8));
        }
        assert_eq!(pool.len(), 4);
        pool.reset(1);
        assert_eq!(pool.capacity(), 1);
        pool.insert(9, 1.0);
        pool.insert(3, 0.5);
        assert_eq!(pool.top_k_ids(1), vec![3]);
    }

    #[test]
    fn neighbor_ordering_is_by_distance_then_id() {
        let mut v = vec![Neighbor::new(4, 2.0), Neighbor::new(9, 1.0), Neighbor::new(2, 1.0)];
        v.sort_unstable_by(Neighbor::ordering);
        assert_eq!(ids(&v), vec![2, 9, 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = CandidatePool::new(0);
    }
}
