//! The Navigating Spreading-out Graph (Algorithm 2 of the paper).
//!
//! The NSG approximates the MRNG while keeping indexing practical:
//!
//! 1. build an approximate kNN graph (NN-Descent, provided by `nsg-knn`),
//! 2. locate the **navigating node**: the approximate medoid found by
//!    searching the kNN graph for the dataset centroid,
//! 3. for every node `v`, run the *search-collect* routine from the navigating
//!    node toward `v` on the kNN graph; the visited nodes plus `v`'s kNN
//!    neighbors form the candidate set, which is pruned with the MRNG edge
//!    selection down to at most `m` out-edges,
//! 4. insert reverse edges under the same pruning rule (the `InterInsert` step
//!    of the released implementation),
//! 5. span a DFS tree from the navigating node and reconnect any node that is
//!    unreachable by linking it to its nearest reachable neighbor found with
//!    Algorithm 1.
//!
//! Search always starts from the navigating node and is plain Algorithm 1 on
//! the reusable-context fast path.

use crate::context::SearchContext;
use crate::graph::{CompactGraph, DirectedGraph};
use crate::index::{AnnIndex, SearchRequest};
use crate::mrng::mrng_select;
use crate::neighbor::Neighbor;
use crate::search::{exact_rerank, search_collect, search_on_graph, search_on_graph_into, SearchParams};
use nsg_knn::{build_nn_descent, KnnGraph, NnDescentParams};
use nsg_obs::TraceStage;
use nsg_vectors::distance::Distance;
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::store::VectorStore;
use nsg_vectors::VectorSet;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Publishes one Algorithm 2 phase's wall time to the process-wide metrics
/// registry (build-side instrumentation; builds are sequential, so the
/// global scope is unambiguous — see `nsg_obs::global`).
fn publish_phase_nanos(name: &str, started: Instant) {
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    nsg_obs::global().counter(name).add(nanos);
}

/// Construction parameters of the NSG (the paper's `l`, `m` and the kNN-graph
/// `k`; §4.1.4 notes the optimal values depend on the data distribution, not
/// the scale).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct NsgParams {
    /// Candidate pool size `l` used by the search-collect routine during
    /// construction (and by the connectivity-repair searches).
    pub build_pool_size: usize,
    /// Maximum out-degree `m` of the final graph.
    pub max_degree: usize,
    /// Parameters of the NN-Descent kNN-graph build (ignored when an existing
    /// kNN graph is supplied).
    pub knn: NnDescentParams,
    /// Whether to add reverse edges under the pruning rule after the forward
    /// pass (the `InterInsert` step of the released NSG code). Disabling it is
    /// one of the ablations.
    pub reverse_insert: bool,
    /// Seed of the random starting node used to locate the navigating node.
    pub seed: u64,
}

impl Default for NsgParams {
    fn default() -> Self {
        Self {
            build_pool_size: 60,
            max_degree: 40,
            // The kNN-graph k is the dominant quality knob: the MRNG-style
            // pruning needs a directionally diverse local candidate set, which
            // at small k it cannot get (the reference implementation builds
            // its kNN graphs with k in the hundreds).
            knn: NnDescentParams { k: 50, ..NnDescentParams::default() },
            reverse_insert: true,
            seed: 0x4E53_4721, // "NSG!"
        }
    }
}

/// A built NSG index: the pruned graph, its navigating node, and the base
/// vectors it indexes.
///
/// Generic over the traversal [`VectorStore`] `S`, mirroring the
/// [`DirectedGraph::freeze`] pattern one layer down: construction always
/// runs on exact `f32` rows (`S = VectorSet`, where the store *is* the base
/// set — same `Arc`, no duplication), and [`quantize_sq8`](Self::quantize_sq8)
/// optionally re-freezes the finished index onto SQ8 codes for the
/// memory-constrained serving scenario. The `f32` rows are retained either
/// way: they are the substrate of the exact-rerank phase of two-phase search
/// ([`SearchRequest::with_rerank`]).
pub struct NsgIndex<D, S: VectorStore = VectorSet> {
    base: Arc<VectorSet>,
    /// The store Algorithm 1 traverses; shares the `base` allocation in the
    /// flat case, holds the SQ8 codes in the quantized one.
    store: Arc<S>,
    metric: D,
    /// The pruned graph, frozen into the contiguous CSR layout once
    /// Algorithm 2 finishes — every query hop reads one dense neighbor run.
    graph: CompactGraph,
    navigating_node: u32,
    params: NsgParams,
}

/// An NSG whose traversal runs on SQ8 scalar-quantized codes (4× less vector
/// bandwidth); pair with [`SearchRequest::with_rerank`] to recover `f32`
/// accuracy from the retained exact rows.
pub type QuantizedNsg<D> = NsgIndex<D, Sq8VectorSet>;

impl<D: Distance + Sync> NsgIndex<D> {
    /// Builds an NSG over `base`, constructing the intermediate kNN graph with
    /// NN-Descent (`params.knn`).
    pub fn build(base: Arc<VectorSet>, metric: D, params: NsgParams) -> Self {
        let knn = build_nn_descent(&base, params.knn, &metric);
        Self::build_from_knn(base, metric, &knn, params)
    }

    /// Builds an NSG from an existing approximate kNN graph (Algorithm 2).
    ///
    /// # Panics
    /// Panics if the kNN graph's node count differs from `base.len()`.
    pub fn build_from_knn(base: Arc<VectorSet>, metric: D, knn: &KnnGraph, params: NsgParams) -> Self {
        assert_eq!(knn.len(), base.len(), "kNN graph does not match the base set");
        let n = base.len();
        if n == 0 {
            return Self {
                store: Arc::clone(&base),
                base,
                metric,
                graph: CompactGraph::empty(),
                navigating_node: 0,
                params,
            };
        }
        if n == 1 {
            return Self {
                store: Arc::clone(&base),
                base,
                metric,
                graph: DirectedGraph::new(1).freeze(),
                navigating_node: 0,
                params,
            };
        }

        // Convert the kNN graph into the plain adjacency Algorithm 1 traverses.
        let knn_adjacency: Vec<Vec<u32>> = (0..n as u32).map(|v| knn.neighbor_ids(v).collect()).collect();
        let knn_graph = DirectedGraph::from_adjacency(knn_adjacency);

        // Step ii: navigating node = approximate medoid (search the kNN graph
        // for the centroid from a random start).
        let phase_started = Instant::now();
        let centroid = base.centroid();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let random_start = rng.random_range(0..n as u32);
        let nav_params = SearchParams::new(params.build_pool_size, 1); // lint:allow(params-construction): build-time medoid search, not a user query
        let nav_result = search_on_graph(&knn_graph, &base, &centroid, &[random_start], nav_params, &metric);
        let navigating_node = nav_result.neighbors.first().map(|nb| nb.id).unwrap_or(random_start);
        publish_phase_nanos("nsg_build_medoid_nanos", phase_started);

        // Step iii: search-collect-select for every node, in parallel. The
        // search context is worker-pinned via `map_init` (one per worker for
        // the whole pass, not one per node task), so the builds stop paying a
        // context allocation per node; every search resets the context state
        // it uses, keeping results identical at any worker count.
        let m = params.max_degree.max(1);
        let phase_started = Instant::now();
        let collect_params = SearchParams::new(params.build_pool_size, params.build_pool_size); // lint:allow(params-construction): build-time search-collect pass, effort fixed by BuildParams
        let selected: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map_init(
                || SearchContext::for_points(n),
                |ctx, v| {
                    let query = base.get(v);
                    let (_, mut candidates) = search_collect(
                        &knn_graph,
                        &base,
                        query,
                        &[navigating_node],
                        collect_params,
                        &metric,
                        ctx,
                    );
                    // Add v's kNN neighbors (they carry the approximate NNG,
                    // which is essential for monotonicity — Figure 4).
                    for nb in knn.neighbors(v as u32) {
                        candidates.push(Neighbor::new(nb.id, nb.dist));
                    }
                    candidates.retain(|c| c.id as usize != v);
                    candidates.sort_unstable_by(Neighbor::ordering);
                    candidates.dedup_by_key(|c| c.id);
                    mrng_select(&base, query, &candidates, m, &metric)
                },
            )
            .collect();
        publish_phase_nanos("nsg_build_select_nanos", phase_started);

        // Step iii-b: reverse-edge insertion under the same pruning rule.
        let phase_started = Instant::now();
        let lists: Vec<Mutex<Vec<Neighbor>>> = selected
            .iter()
            .enumerate()
            .map(|(v, ids)| {
                Mutex::new(
                    ids.iter()
                        .map(|&u| Neighbor::new(u, metric.distance(base.get(v), base.get(u as usize))))
                        .collect(),
                )
            })
            .collect();
        if params.reverse_insert {
            (0..n).into_par_iter().for_each(|v| {
                let out: Vec<u32> = lists[v].lock().iter().map(|nb| nb.id).collect();
                for u in out {
                    let d_vu = metric.distance(base.get(v), base.get(u as usize));
                    let mut target = lists[u as usize].lock();
                    if target.iter().any(|t| t.id as usize == v) {
                        continue;
                    }
                    if target.len() < m {
                        target.push(Neighbor::new(v as u32, d_vu));
                        continue;
                    }
                    // The list is full: re-run the pruning over list ∪ {v} and
                    // keep the survivors (bounded by m).
                    let mut candidates: Vec<Neighbor> = target.clone();
                    candidates.push(Neighbor::new(v as u32, d_vu));
                    candidates.sort_unstable_by(Neighbor::ordering);
                    let kept = mrng_select(&base, base.get(u as usize), &candidates, m, &metric);
                    *target = kept
                        .into_iter()
                        .map(|id| {
                            let d = candidates
                                .iter()
                                .find(|c| c.id == id)
                                .map(|c| c.dist)
                                .unwrap_or_else(|| metric.distance(base.get(u as usize), base.get(id as usize)));
                            Neighbor::new(id, d)
                        })
                        .collect();
                }
            });
        }
        let mut graph = DirectedGraph::from_adjacency(
            lists
                .into_iter()
                .map(|l| l.into_inner().into_iter().map(|nb| nb.id).collect())
                .collect(),
        );
        publish_phase_nanos("nsg_build_reverse_insert_nanos", phase_started);

        // Step iv: DFS tree spanning from the navigating node; reconnect
        // unreachable nodes through their nearest reachable neighbor.
        let phase_started = Instant::now();
        Self::ensure_connectivity(&mut graph, &base, navigating_node, params.build_pool_size, &metric);
        publish_phase_nanos("nsg_build_repair_nanos", phase_started);

        // Construction is done: freeze the mutable adjacency into the
        // contiguous query-time layout.
        let phase_started = Instant::now();
        let graph = graph.freeze();
        publish_phase_nanos("nsg_build_freeze_nanos", phase_started);
        nsg_obs::global().gauge("nsg_build_edges").set(graph.num_edges() as f64);
        Self {
            store: Arc::clone(&base),
            base,
            metric,
            graph,
            navigating_node,
            params,
        }
    }

    /// Re-freezes the finished index onto SQ8 scalar-quantized codes: the
    /// graph, navigating node and retained `f32` rows are untouched, only
    /// the traversal store changes — the vector-side analogue of
    /// [`DirectedGraph::freeze`]. Use [`SearchRequest::with_rerank`] to
    /// rescore the quantized candidates against the retained rows.
    pub fn quantize_sq8(self) -> QuantizedNsg<D> {
        let store = Arc::new(Sq8VectorSet::encode(&self.base));
        NsgIndex {
            base: self.base,
            store,
            metric: self.metric,
            graph: self.graph,
            navigating_node: self.navigating_node,
            params: self.params,
        }
    }

    /// Marks every node reachable from `root` in `reachable` (iterative DFS).
    fn dfs_mark(graph: &DirectedGraph, root: u32, reachable: &mut [bool]) {
        let mut stack = vec![root];
        if !reachable[root as usize] {
            reachable[root as usize] = true;
        }
        while let Some(v) = stack.pop() {
            for &u in graph.neighbors(v) {
                if !reachable[u as usize] {
                    reachable[u as usize] = true;
                    stack.push(u);
                }
            }
        }
    }

    /// The tree-spanning connectivity repair of Algorithm 2 (lines 24–32).
    fn ensure_connectivity(
        graph: &mut DirectedGraph,
        base: &VectorSet,
        navigating_node: u32,
        pool_size: usize,
        metric: &D,
    ) {
        let n = graph.num_nodes();
        let mut reachable = vec![false; n];
        Self::dfs_mark(graph, navigating_node, &mut reachable);
        let repair_params = SearchParams::new(pool_size.max(8), pool_size.max(8)); // lint:allow(params-construction): connectivity-repair search during build
        let mut ctx = SearchContext::for_points(n);
        for v in 0..n as u32 {
            if reachable[v as usize] {
                continue;
            }
            // Find the closest reachable node to v by searching the current
            // graph from the navigating node (Algorithm 1 only walks reachable
            // nodes, so everything it visits is in the tree).
            let (result, collected) = search_collect(
                graph,
                base,
                base.get(v as usize),
                &[navigating_node],
                repair_params,
                metric,
                &mut ctx,
            );
            let attach = result
                .neighbors
                .iter()
                .map(|nb| nb.id)
                .chain(collected.iter().map(|nb| nb.id))
                .find(|&id| id != v && reachable[id as usize])
                .unwrap_or(navigating_node);
            graph.add_edge(attach, v);
            // Everything newly reachable through v is now in the tree.
            Self::dfs_mark(graph, v, &mut reachable);
        }
    }

    /// Reassembles an index from its serialized parts (see
    /// [`crate::serialize`]); the traversal store is the base set itself.
    pub fn from_parts(
        base: Arc<VectorSet>,
        metric: D,
        graph: CompactGraph,
        navigating_node: u32,
        params: NsgParams,
    ) -> Self {
        Self::from_store_parts(Arc::clone(&base), base, metric, graph, navigating_node, params)
    }
}

impl<D: Distance + Sync, S: VectorStore> NsgIndex<D, S> {
    /// The pruned NSG adjacency in its frozen query-time (CSR) form.
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }

    /// The fixed entry point of every search.
    pub fn navigating_node(&self) -> u32 {
        self.navigating_node
    }

    /// The base vectors the index was built over (the retained `f32` rows
    /// the exact-rerank phase rescores against).
    pub fn base(&self) -> &Arc<VectorSet> {
        &self.base
    }

    /// The store Algorithm 1 traverses (the base set itself for a flat
    /// index, the SQ8 codes for a quantized one).
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The parameters used at construction time.
    pub fn params(&self) -> &NsgParams {
        &self.params
    }

    /// The metric used by the index.
    pub fn metric(&self) -> &D {
        &self.metric
    }

    /// The metric's serializable tag (what snapshot writers record so a
    /// reader can redispatch to the same concrete metric).
    pub fn metric_kind(&self) -> nsg_vectors::DistanceKind {
        self.metric.kind()
    }

    /// Reassembles an index from its serialized parts together with an
    /// explicit traversal store (the quantized-deserialization path; see
    /// [`crate::serialize`]).
    ///
    /// # Panics
    /// Panics if the graph, store and base set disagree on the node count,
    /// or the navigating node is out of range.
    pub fn from_store_parts(
        store: Arc<S>,
        base: Arc<VectorSet>,
        metric: D,
        graph: CompactGraph,
        navigating_node: u32,
        params: NsgParams,
    ) -> Self {
        assert_eq!(graph.num_nodes(), base.len(), "graph does not match the base set");
        assert_eq!(store.len(), base.len(), "store does not match the base set");
        assert!(
            base.is_empty() || (navigating_node as usize) < base.len(),
            "navigating node out of range"
        );
        Self {
            base,
            store,
            metric,
            graph,
            navigating_node,
            params,
        }
    }
}

impl<D: Distance + Sync, S: VectorStore> AnnIndex for NsgIndex<D, S> {
    fn new_context(&self) -> SearchContext {
        SearchContext::for_points(self.base.len())
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        ctx.tracer.arm(request.trace);
        search_on_graph_into(
            &self.graph,
            self.store.as_ref(),
            query,
            &[self.navigating_node],
            request.traversal_params(),
            &self.metric,
            ctx,
        );
        if request.rerank_factor() > 1 {
            let rerank_timer = ctx.tracer.begin();
            let before = ctx.stats.distance_computations;
            exact_rerank(ctx, &self.base, &self.metric, query, request.k);
            let spent = ctx.stats.distance_computations - before;
            ctx.tracer.finish(TraceStage::ExactRerank, rerank_timer, spent);
        }
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes_fixed_degree() + std::mem::size_of::<u32>()
    }

    fn name(&self) -> &'static str {
        "NSG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor;
    use crate::stats;
    use nsg_knn::build_exact_knn_graph;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::{sift_like, uniform};

    fn small_params() -> NsgParams {
        NsgParams {
            build_pool_size: 40,
            max_degree: 24,
            knn: NnDescentParams { k: 40, ..Default::default() },
            reverse_insert: true,
            seed: 1,
        }
    }

    fn batch_ids(index: &impl AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
        index
            .search_batch(queries, request)
            .iter()
            .map(|r| neighbor::ids(r))
            .collect()
    }

    #[test]
    fn nsg_search_reaches_high_precision_on_uniform_data() {
        let base = Arc::new(uniform(2000, 16, 3));
        let queries = uniform(50, 16, 99);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let results = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(100));
        let precision = mean_precision(&results, &gt, 10);
        assert!(precision > 0.9, "NSG precision too low: {precision}");
    }

    #[test]
    fn nsg_search_reaches_high_precision_on_clustered_data() {
        let (base, queries) =
            nsg_vectors::synthetic::base_and_queries(nsg_vectors::synthetic::SyntheticKind::SiftLike, 2000, 30, 5);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let results = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(120));
        let precision = mean_precision(&results, &gt, 10);
        assert!(precision > 0.85, "NSG precision too low on clustered data: {precision}");
    }

    #[test]
    fn degree_cap_is_respected_up_to_connectivity_repair() {
        let base = Arc::new(uniform(1500, 8, 7));
        let params = small_params();
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params);
        // The tree-spanning step may add a handful of extra edges, but the
        // graph must stay close to the cap and far below the kNN degree.
        assert!(index.graph().max_out_degree() <= params.max_degree + 4);
        assert!(index.graph().average_out_degree() <= params.max_degree as f64);
    }

    #[test]
    fn every_node_is_reachable_from_the_navigating_node() {
        let base = Arc::new(sift_like(1200, 11));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let reachable = stats::reachable_count(index.graph(), index.navigating_node());
        assert_eq!(reachable, base.len(), "connectivity repair failed");
    }

    #[test]
    fn build_from_exact_knn_graph_matches_quality() {
        let base = Arc::new(uniform(800, 8, 13));
        let knn = build_exact_knn_graph(&base, 12, &SquaredEuclidean);
        let index =
            NsgIndex::build_from_knn(Arc::clone(&base), SquaredEuclidean, &knn, small_params());
        let queries = uniform(20, 8, 14);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let results = batch_ids(&index, &queries, &SearchRequest::new(5).with_effort(80));
        assert!(mean_precision(&results, &gt, 5) > 0.9);
    }

    #[test]
    fn query_equal_to_base_vector_returns_it() {
        let base = Arc::new(uniform(600, 8, 21));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let request = SearchRequest::new(1).with_effort(60);
        let mut ctx = index.new_context();
        let mut hits = 0;
        for v in (0..base.len()).step_by(40) {
            let got = index.search_into(&mut ctx, &request, base.get(v));
            if neighbor::ids(got) == vec![v as u32] {
                assert_eq!(got[0].dist, 0.0, "self-query must be at distance zero");
                hits += 1;
            }
        }
        assert!(hits >= 13, "only {hits}/15 self-queries found");
    }

    #[test]
    fn tiny_and_degenerate_inputs_build() {
        let empty = Arc::new(VectorSet::new(4));
        let idx = NsgIndex::build(empty, SquaredEuclidean, small_params());
        assert!(idx.search(&[0.0; 4], &SearchRequest::new(3)).is_empty());

        let single = Arc::new(uniform(1, 4, 1));
        let idx1 = NsgIndex::build(Arc::clone(&single), SquaredEuclidean, small_params());
        assert_eq!(neighbor::ids(&idx1.search(single.get(0), &SearchRequest::new(1))), vec![0]);

        let few = Arc::new(uniform(5, 4, 2));
        let idx5 = NsgIndex::build(Arc::clone(&few), SquaredEuclidean, small_params());
        let res = idx5.search(few.get(2), &SearchRequest::new(3));
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, 2);
    }

    #[test]
    fn navigating_node_is_near_the_centroid() {
        let base = Arc::new(uniform(1000, 6, 31));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let centroid = base.centroid();
        let (true_medoid, _) =
            nsg_vectors::ground_truth::exact_knn_single(&base, &centroid, 20, &SquaredEuclidean);
        assert!(
            true_medoid.contains(&index.navigating_node()),
            "navigating node {} not among the 20 nodes closest to the centroid",
            index.navigating_node()
        );
    }

    #[test]
    fn larger_pool_size_does_not_reduce_precision() {
        let base = Arc::new(uniform(1500, 12, 41));
        let queries = uniform(30, 12, 42);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let p_small = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(10));
        let p_large = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(200));
        let small = mean_precision(&p_small, &gt, 10);
        let large = mean_precision(&p_large, &gt, 10);
        assert!(large + 1e-9 >= small, "precision dropped with a larger pool: {small} -> {large}");
        assert!(large > 0.9);
    }

    #[test]
    fn search_stats_report_work_done() {
        let base = Arc::new(uniform(1000, 8, 51));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let res = index.search_with_stats(base.get(3), &SearchRequest::new(5).with_effort(50));
        assert!(res.stats.distance_computations > 0);
        assert!(res.stats.hops > 0);
        assert!(res.stats.distance_computations < base.len() as u64,
            "graph search should touch far fewer points than a serial scan");
        // The context fast path reports the same numbers.
        let mut ctx = index.new_context();
        let fast = index
            .search_into(&mut ctx, &SearchRequest::new(5).with_effort(50).with_stats(), base.get(3))
            .to_vec();
        assert_eq!(fast, res.neighbors);
        assert_eq!(ctx.stats(), res.stats);
    }

    #[test]
    fn quantized_index_preserves_graph_and_recovers_f32_answers_with_rerank() {
        let (base, queries) =
            nsg_vectors::synthetic::base_and_queries(nsg_vectors::synthetic::SyntheticKind::SiftLike, 2000, 30, 5);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let flat = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let flat_results = batch_ids(&flat, &queries, &SearchRequest::new(10).with_effort(120));
        let flat_precision = mean_precision(&flat_results, &gt, 10);

        let quantized = flat.quantize_sq8();
        // The graph, entry point and retained rows are untouched by the
        // re-freeze; only the traversal store changed.
        assert_eq!(quantized.base().len(), base.len());
        assert_eq!(quantized.store().len(), base.len());
        assert!(
            quantized.store().as_ref().memory_bytes() * 100 <= base.memory_bytes() * 30,
            "SQ8 store must be ≤ 30% of the flat vector bytes"
        );

        // Two-phase search with a generous rerank factor recovers the f32
        // quality on clustered data.
        let request = SearchRequest::new(10).with_effort(120).with_rerank(4);
        let two_phase = batch_ids(&quantized, &queries, &request);
        let two_phase_precision = mean_precision(&two_phase, &gt, 10);
        assert!(
            two_phase_precision >= flat_precision * 0.99,
            "two-phase precision {two_phase_precision} fell below 99% of f32 precision {flat_precision}"
        );
        // Rerank distances are exact: the self-distance of a base query is 0.
        let hit = quantized.search(base.get(7), &request);
        assert_eq!(hit[0].id, 7);
        assert_eq!(hit[0].dist, 0.0, "reranked distances must be exact f32 distances");
    }

    #[test]
    fn quantized_search_without_rerank_returns_approximate_distances() {
        let base = Arc::new(uniform(800, 16, 9));
        let quantized = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params()).quantize_sq8();
        let mut ctx = quantized.new_context();
        // Factor 1 = single-phase: distances come from the quantized store.
        let got = quantized
            .search_into(&mut ctx, &SearchRequest::new(5).with_effort(60), base.get(3))
            .to_vec();
        assert_eq!(got.len(), 5);
        // The quantized self-distance is near but not necessarily exactly 0;
        // it must still win the ranking.
        assert_eq!(got[0].id, 3);
        assert!(got[0].dist >= 0.0);
    }

    #[test]
    fn from_store_parts_rebuilds_a_quantized_index() {
        let base = Arc::new(uniform(500, 8, 15));
        let built = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params()).quantize_sq8();
        let request = SearchRequest::new(5).with_effort(60).with_rerank(2);
        let expect = built.search(base.get(11), &request);
        let rebuilt = NsgIndex::from_store_parts(
            Arc::clone(built.store()),
            Arc::clone(built.base()),
            SquaredEuclidean,
            built.graph().clone(),
            built.navigating_node(),
            *built.params(),
        );
        assert_eq!(rebuilt.search(base.get(11), &request), expect);
    }

    #[test]
    fn memory_model_matches_fixed_degree_layout() {
        let base = Arc::new(uniform(500, 8, 61));
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, small_params());
        let width = index.graph().max_out_degree();
        assert_eq!(
            index.memory_bytes(),
            500 * (width + 1) * 4 + 4
        );
    }
}
