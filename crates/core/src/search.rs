//! Algorithm 1 of the paper: greedy best-first search on a graph
//! ("search-on-graph").
//!
//! Given a graph `G`, a start node `p`, a query `q` and a candidate pool size
//! `l`, the routine repeatedly expands the first unchecked candidate in the
//! pool, inserts its out-neighbors, and stops when every candidate has been
//! checked. Every graph method in the paper (GNNS, KGraph, Efanna, NSW, HNSW
//! layers, FANNG, DPG, NSG) uses this same routine; only the graph differs.
//!
//! Two variants are provided:
//! * [`search_on_graph`] — the plain Algorithm 1, returning the top-k pool
//!   prefix,
//! * [`search_collect`] — the "search-and-collect" routine of Algorithm 2 step
//!   iii, which additionally records every node whose distance to the query
//!   was evaluated; those visited nodes become the candidate set for MRNG-style
//!   edge selection during NSG construction.

use crate::graph::DirectedGraph;
use crate::neighbor::CandidatePool;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchParams {
    /// Candidate pool size `l`. Larger pools explore more of the graph and
    /// raise precision at the cost of more distance computations; the paper's
    /// QPS-vs-precision curves are produced by sweeping this value.
    pub pool_size: usize,
    /// Number of neighbors `k` to return.
    pub k: usize,
}

impl SearchParams {
    /// Creates parameters, enforcing `pool_size >= k` as Algorithm 1 requires
    /// (the answer is the first `k` entries of an `l`-sized pool).
    pub fn new(pool_size: usize, k: usize) -> Self {
        Self {
            pool_size: pool_size.max(k).max(1),
            k,
        }
    }
}

/// Instrumentation collected during one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Number of distance evaluations.
    pub distance_computations: u64,
    /// Number of node expansions (greedy hops), the `l` factor of the paper's
    /// `O(o * l)` search cost model.
    pub hops: u64,
    /// Number of distinct nodes whose distance was evaluated.
    pub visited: u64,
}

/// Result of one search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Ids of the returned neighbors, ascending by distance.
    pub ids: Vec<u32>,
    /// Distances of the returned neighbors.
    pub distances: Vec<f32>,
    /// Search instrumentation.
    pub stats: SearchStats,
}

/// A reusable visited-set bitmap so repeated searches do not reallocate.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    marks: Vec<u64>,
    epoch: u64,
}

impl VisitedSet {
    /// Creates a visited set covering `n` nodes.
    ///
    /// The starting epoch is 1 while marks start at 0, so a fresh set reports
    /// every node as unvisited even if the caller never calls
    /// [`next_epoch`](Self::next_epoch). (With epoch 0 a fresh set would
    /// claim *everything* was already visited, silently emptying the first
    /// search of any caller that forgot the initial `next_epoch()`.)
    pub fn new(n: usize) -> Self {
        Self {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Starts a new search; previously set marks become stale in O(1).
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Marks `id` visited; returns `true` if it was not visited in this epoch.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.marks[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `id` has been visited in this epoch.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.marks[id as usize] == self.epoch
    }
}

#[allow(clippy::too_many_arguments)] // private plumbing shared by the two public search variants
fn run_search<D: Distance + ?Sized>(
    graph: &DirectedGraph,
    base: &VectorSet,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    visited: &mut VisitedSet,
    mut collect: Option<&mut Vec<(u32, f32)>>,
) -> (CandidatePool, SearchStats) {
    let mut pool = CandidatePool::new(params.pool_size);
    let mut stats = SearchStats::default();
    visited.next_epoch();

    for &s in start_nodes {
        if (s as usize) < base.len() && visited.insert(s) {
            let d = metric.distance(query, base.get(s as usize));
            stats.distance_computations += 1;
            stats.visited += 1;
            if let Some(out) = collect.as_deref_mut() {
                out.push((s, d));
            }
            pool.insert(s, d);
        }
    }

    // Algorithm 1 main loop: expand the first unchecked candidate until the
    // pool is fully checked.
    while let Some(idx) = pool.first_unchecked() {
        let current = pool.mark_checked(idx);
        stats.hops += 1;
        for &n in graph.neighbors(current) {
            if !visited.insert(n) {
                continue;
            }
            let d = metric.distance(query, base.get(n as usize));
            stats.distance_computations += 1;
            stats.visited += 1;
            if let Some(out) = collect.as_deref_mut() {
                out.push((n, d));
            }
            pool.insert(n, d);
        }
    }
    (pool, stats)
}

/// Algorithm 1: greedy best-first search on `graph` starting from
/// `start_nodes`, returning the `k` best candidates found.
///
/// `start_nodes` is usually a single node (the NSG navigating node, the HNSW
/// layer entry, or a random node for KGraph/FANNG/DPG), but may contain
/// several entry points (Efanna seeds the pool from KD-tree leaves).
pub fn search_on_graph<D: Distance + ?Sized>(
    graph: &DirectedGraph,
    base: &VectorSet,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
) -> SearchResult {
    let mut visited = VisitedSet::new(base.len());
    search_on_graph_with(graph, base, query, start_nodes, params, metric, &mut visited)
}

/// Same as [`search_on_graph`] but reuses a caller-provided [`VisitedSet`],
/// avoiding an O(n) allocation per query in the benchmark loops.
pub fn search_on_graph_with<D: Distance + ?Sized>(
    graph: &DirectedGraph,
    base: &VectorSet,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    visited: &mut VisitedSet,
) -> SearchResult {
    let (pool, stats) = run_search(graph, base, query, start_nodes, params, metric, visited, None);
    let top = pool.top_k(params.k);
    SearchResult {
        ids: top.iter().map(|&(id, _)| id).collect(),
        distances: top.iter().map(|&(_, d)| d).collect(),
        stats,
    }
}

/// The "search-and-collect" routine of Algorithm 2: runs Algorithm 1 and also
/// returns every `(node, distance)` pair whose distance to the query was
/// computed along the way. These visited nodes are the candidate neighbors the
/// NSG edge-selection prunes with the MRNG strategy.
pub fn search_collect<D: Distance + ?Sized>(
    graph: &DirectedGraph,
    base: &VectorSet,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    visited: &mut VisitedSet,
) -> (SearchResult, Vec<(u32, f32)>) {
    let mut collected = Vec::with_capacity(params.pool_size * 4);
    let (pool, stats) = run_search(
        graph,
        base,
        query,
        start_nodes,
        params,
        metric,
        visited,
        Some(&mut collected),
    );
    let top = pool.top_k(params.k);
    (
        SearchResult {
            ids: top.iter().map(|&(id, _)| id).collect(),
            distances: top.iter().map(|&(_, d)| d).collect(),
            stats,
        },
        collected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;
    use nsg_vectors::VectorSet;

    /// A line of points 0..n where node i is connected to i-1 and i+1: search
    /// must walk monotonically toward the query.
    fn line_graph(n: usize) -> (DirectedGraph, VectorSet) {
        let base = VectorSet::from_rows(1, &(0..n).map(|i| [i as f32]).collect::<Vec<_>>());
        let mut g = DirectedGraph::new(n);
        for i in 0..n {
            if i > 0 {
                g.add_edge(i as u32, (i - 1) as u32);
            }
            if i + 1 < n {
                g.add_edge(i as u32, (i + 1) as u32);
            }
        }
        (g, base)
    }

    #[test]
    fn walks_a_line_to_the_query() {
        let (g, base) = line_graph(50);
        let res = search_on_graph(&g, &base, &[37.2], &[0], SearchParams::new(8, 3), &SquaredEuclidean);
        assert_eq!(res.ids[0], 37);
        assert_eq!(res.ids.len(), 3);
        assert!(res.distances.windows(2).all(|w| w[0] <= w[1]));
        assert!(res.stats.hops >= 37, "must hop along the whole line");
    }

    #[test]
    fn pool_size_one_is_pure_greedy_descent() {
        let (g, base) = line_graph(20);
        let res = search_on_graph(&g, &base, &[10.1], &[0], SearchParams::new(1, 1), &SquaredEuclidean);
        assert_eq!(res.ids, vec![10]);
    }

    #[test]
    fn start_node_equal_to_answer_terminates() {
        let (g, base) = line_graph(10);
        let res = search_on_graph(&g, &base, &[4.0], &[4], SearchParams::new(4, 1), &SquaredEuclidean);
        assert_eq!(res.ids, vec![4]);
        assert_eq!(res.distances[0], 0.0);
    }

    #[test]
    fn multiple_start_nodes_seed_the_pool() {
        let (g, base) = line_graph(30);
        let res = search_on_graph(
            &g,
            &base,
            &[29.0],
            &[0, 28],
            SearchParams::new(4, 1),
            &SquaredEuclidean,
        );
        assert_eq!(res.ids, vec![29]);
        // Starting next to the target requires far fewer hops than the line length.
        assert!(res.stats.hops < 10);
    }

    #[test]
    fn disconnected_target_is_not_found_but_search_terminates() {
        // Two disjoint components: 0-1-2 and 3-4. Query sits on node 4.
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [10.0], [11.0]]);
        let mut g = DirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(3, 4);
        g.add_edge(4, 3);
        let res = search_on_graph(&g, &base, &[11.0], &[0], SearchParams::new(4, 1), &SquaredEuclidean);
        // Only the first component is reachable, so the best answer is node 2.
        assert_eq!(res.ids, vec![2]);
    }

    #[test]
    fn stats_count_visits_and_distances_consistently() {
        let base = uniform(500, 8, 3);
        let g = {
            // kNN-style random graph with 8 out-edges per node.
            let mut g = DirectedGraph::new(500);
            let mut state = 12345u64;
            for v in 0..500u32 {
                for _ in 0..8 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let u = (state >> 33) as u32 % 500;
                    if u != v {
                        g.add_edge(v, u);
                    }
                }
            }
            g
        };
        let res = search_on_graph(&g, &base, base.get(17), &[0], SearchParams::new(20, 5), &SquaredEuclidean);
        assert_eq!(res.stats.distance_computations, res.stats.visited);
        assert!(res.stats.visited <= 500);
        assert!(!res.ids.is_empty());
    }

    #[test]
    fn search_collect_returns_every_evaluated_node() {
        let (g, base) = line_graph(40);
        let mut visited = VisitedSet::new(base.len());
        let (res, collected) = search_collect(
            &g,
            &base,
            &[25.0],
            &[0],
            SearchParams::new(6, 2),
            &SquaredEuclidean,
            &mut visited,
        );
        assert_eq!(collected.len() as u64, res.stats.visited);
        // The answer must be among the collected nodes.
        assert!(collected.iter().any(|&(id, _)| id == res.ids[0]));
        // No duplicates.
        let mut ids: Vec<u32> = collected.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), collected.len());
    }

    #[test]
    fn fresh_visited_set_reports_nothing_visited() {
        // Regression test: a freshly constructed set must not claim any node
        // was already visited, even before the first next_epoch() call.
        let mut v = VisitedSet::new(4);
        for id in 0..4 {
            assert!(!v.contains(id), "fresh set claims node {id} visited");
        }
        assert!(v.insert(2), "insert into a fresh set must succeed");
        assert!(v.contains(2));
        assert!(!v.contains(3));
    }

    #[test]
    fn visited_set_epochs_reset_in_constant_time() {
        let mut v = VisitedSet::new(10);
        v.next_epoch();
        assert!(v.insert(3));
        assert!(!v.insert(3));
        assert!(v.contains(3));
        v.next_epoch();
        assert!(!v.contains(3));
        assert!(v.insert(3));
    }

    #[test]
    fn out_of_range_start_nodes_are_ignored() {
        let (g, base) = line_graph(5);
        let res = search_on_graph(
            &g,
            &base,
            &[2.0],
            &[99, 0],
            SearchParams::new(3, 1),
            &SquaredEuclidean,
        );
        assert_eq!(res.ids, vec![2]);
    }

    #[test]
    fn params_enforce_pool_at_least_k() {
        let p = SearchParams::new(2, 10);
        assert_eq!(p.pool_size, 10);
        let p2 = SearchParams::new(0, 0);
        assert_eq!(p2.pool_size, 1);
    }
}
