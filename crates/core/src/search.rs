//! Algorithm 1 of the paper: greedy best-first search on a graph
//! ("search-on-graph").
//!
//! Given a graph `G`, a start node `p`, a query `q` and a candidate pool size
//! `l`, the routine repeatedly expands the first unchecked candidate in the
//! pool, inserts its out-neighbors, and stops when every candidate has been
//! checked. Every graph method in the paper (GNNS, KGraph, Efanna, NSW, HNSW
//! layers, FANNG, DPG, NSG) uses this same routine; only the graph differs.
//!
//! Three variants are provided:
//! * [`search_on_graph_into`] — the hot-path form: runs Algorithm 1 entirely
//!   inside a reusable [`SearchContext`](crate::context::SearchContext) (zero
//!   heap allocation after warm-up) and returns the top-k as a borrowed
//!   [`Neighbor`] slice,
//! * [`search_on_graph`] — allocating convenience over the same loop,
//!   returning an owned [`SearchResult`],
//! * [`search_collect`] — the "search-and-collect" routine of Algorithm 2
//!   step iii, which additionally records every node whose distance to the
//!   query was evaluated; those visited nodes become the candidate set for
//!   MRNG-style edge selection during NSG construction.

use crate::context::SearchContext;
use crate::graph::GraphView;
use crate::neighbor::Neighbor;
use nsg_obs::TraceStage;
use nsg_vectors::distance::Distance;
use nsg_vectors::store::VectorStore;
use nsg_vectors::VectorSet;

/// Parameters of Algorithm 1 (the raw `(l, k)` pair).
///
/// On the query path these are always derived from a
/// [`SearchRequest`](crate::index::SearchRequest) via
/// [`SearchRequest::params`](crate::index::SearchRequest::params) — the one
/// place the user-facing effort knob is translated into a pool size.
/// Construction-time searches (Algorithm 2's search-collect, connectivity
/// repair, NSW insertion) build them directly from their build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchParams {
    /// Candidate pool size `l`. Larger pools explore more of the graph and
    /// raise precision at the cost of more distance computations; the paper's
    /// QPS-vs-precision curves are produced by sweeping this value.
    pub pool_size: usize,
    /// Number of neighbors `k` to return.
    pub k: usize,
}

impl SearchParams {
    /// Creates parameters, enforcing `pool_size >= k` as Algorithm 1 requires
    /// (the answer is the first `k` entries of an `l`-sized pool).
    pub fn new(pool_size: usize, k: usize) -> Self {
        Self {
            pool_size: pool_size.max(k).max(1),
            k,
        }
    }
}

/// Instrumentation collected during one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Number of distance evaluations.
    pub distance_computations: u64,
    /// Number of node expansions (greedy hops), the `l` factor of the paper's
    /// `O(o * l)` search cost model.
    pub hops: u64,
    /// Number of distinct nodes whose distance was evaluated.
    pub visited: u64,
}

impl SearchStats {
    /// Accumulates another search's counters into this one (used when one
    /// logical query fans out over shards or layers).
    pub fn accumulate(&mut self, other: SearchStats) {
        self.distance_computations += other.distance_computations;
        self.hops += other.hops;
        self.visited += other.visited;
    }
}

/// Owned result of one search: scored neighbors (ascending distance) plus
/// instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The returned neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Search instrumentation.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The bare neighbor ids, best first.
    pub fn ids(&self) -> Vec<u32> {
        crate::neighbor::ids(&self.neighbors)
    }
}

/// A reusable visited-set bitmap so repeated searches do not reallocate.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    marks: Vec<u64>,
    epoch: u64,
}

impl VisitedSet {
    /// Creates a visited set covering `n` nodes.
    ///
    /// The starting epoch is 1 while marks start at 0, so a fresh set reports
    /// every node as unvisited even if the caller never calls
    /// [`next_epoch`](Self::next_epoch). (With epoch 0 a fresh set would
    /// claim *everything* was already visited, silently emptying the first
    /// search of any caller that forgot the initial `next_epoch()`.)
    pub fn new(n: usize) -> Self {
        Self {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of nodes the set covers.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether the set covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Grows the set to cover at least `n` nodes (new nodes are unvisited in
    /// every epoch). A no-op once the set is large enough, so reusing one
    /// context across indices only ever pays the resize once per size.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
    }

    /// Starts a new search; previously set marks become stale in O(1).
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Marks `id` visited; returns `true` if it was not visited in this epoch.
    #[inline]
    // lint:hot-path
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.marks[id as usize];
        // Epochs only move forward (`next_epoch` increments), so a mark from
        // the future would mean the set was shared across searches unsafely.
        debug_assert!(*slot <= self.epoch, "mark {} ahead of epoch {}", *slot, self.epoch);
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `id` has been visited in this epoch.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        debug_assert!(self.marks[id as usize] <= self.epoch);
        self.marks[id as usize] == self.epoch
    }
}

/// The Algorithm 1 main loop, running entirely inside `ctx`'s buffers.
/// Optionally records every evaluated `(node, distance)` pair into `collect`.
///
/// Generic over [`GraphView`] (query paths hand in the frozen
/// [`CompactGraph`](crate::graph::CompactGraph) with contiguous CSR neighbor
/// runs, construction-time searches the mutable
/// [`DirectedGraph`](crate::graph::DirectedGraph) they are still editing)
/// **and** over [`VectorStore`]: the flat `f32` [`VectorSet`] monomorphizes
/// to the exact `metric.distance` loop it always was, the SQ8 store to the
/// asymmetric quantized kernel — the query is prepared into
/// `ctx.query_scratch` once, then every candidate pays one `dist_to`.
#[allow(clippy::too_many_arguments)] // private plumbing shared by the public search variants
// lint:hot-path
fn run_search<G: GraphView + ?Sized, S: VectorStore + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    store: &S,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    ctx: &mut SearchContext,
    mut collect: Option<&mut Vec<Neighbor>>,
) {
    ctx.visited.ensure_capacity(store.len());
    ctx.visited.next_epoch();
    ctx.pool.reset(params.pool_size);
    ctx.stats = SearchStats::default();
    store.prepare_query(metric, query, &mut ctx.query_scratch);

    // Stage timers are `None` (no clock read, no store) unless the context's
    // tracer was armed for this query by the index entry point.
    let seed_timer = ctx.tracer.begin();
    for s in
        nsg_vectors::prefetch::lookahead_ids_with_query(start_nodes, store, ctx.query_scratch.prepared())
    {
        if (s as usize) < store.len() && ctx.visited.insert(s) {
            let d = store.dist_to(metric, &ctx.query_scratch, s as usize);
            ctx.stats.distance_computations += 1;
            ctx.stats.visited += 1;
            if let Some(out) = collect.as_deref_mut() {
                out.push(Neighbor::new(s, d));
            }
            ctx.pool.insert(s, d);
        }
    }
    let seed_distances = ctx.stats.distance_computations;
    ctx.tracer.finish(TraceStage::EntrySeeding, seed_timer, seed_distances);

    // Algorithm 1 main loop: expand the first unchecked candidate until the
    // pool is fully checked.
    let traversal_timer = ctx.tracer.begin();
    while let Some(idx) = ctx.pool.first_unchecked() {
        let current = ctx.pool.mark_checked(idx);
        ctx.stats.hops += 1;
        // Hop-expansion gather: while the store scores candidate `n`, the
        // next candidate's stored vector is already being pulled into cache —
        // the prefetch discipline the released NSG/HNSW search loops use.
        // The prepared-query lines are re-hinted per hop too: `dist_to`
        // streams them against every candidate, and neighbor-row traffic
        // can evict them between hops.
        for n in nsg_vectors::prefetch::lookahead_ids_with_query(
            graph.neighbors(current),
            store,
            ctx.query_scratch.prepared(),
        ) {
            if !ctx.visited.insert(n) {
                continue;
            }
            let d = store.dist_to(metric, &ctx.query_scratch, n as usize);
            ctx.stats.distance_computations += 1;
            ctx.stats.visited += 1;
            if let Some(out) = collect.as_deref_mut() {
                out.push(Neighbor::new(n, d));
            }
            ctx.pool.insert(n, d);
        }
    }
    ctx.tracer
        .finish_traversal(traversal_timer, ctx.stats.distance_computations - seed_distances);

    ctx.results.clear();
    ctx.pool.top_k_into(params.k, &mut ctx.results);
}

/// The second phase of a two-phase (quantized-traverse → exact-rerank)
/// search: rescores every candidate currently in `ctx.results` with the
/// exact metric against the retained `f32` rows, re-sorts, and truncates to
/// `k`. Runs entirely in place on the context's result buffer, so the warm
/// path allocates nothing; the exact evaluations are added to
/// `ctx.stats.distance_computations`.
///
/// Call after a traversal that requested `rerank_factor · k` candidates
/// (see [`SearchRequest::traversal_params`](crate::index::SearchRequest::traversal_params));
/// a no-op-shaped pass over an already-exact result set is harmless, which
/// is why the flat-store indices can share the same code path.
// lint:hot-path
pub fn exact_rerank<D: Distance + ?Sized>(
    ctx: &mut SearchContext,
    rows: &VectorSet,
    metric: &D,
    query: &[f32],
    k: usize,
) {
    // Re-prepare the scratch against the exact rows: the traversal that
    // filled `ctx.results` is done with its (possibly quantized) prepared
    // form, and routing the rescore through the store protocol keeps it on
    // the SIMD kernel table the scratch caches. Allocation-free warm: the
    // scratch buffer already holds >= dim capacity from the traversal.
    rows.prepare_query(metric, query, &mut ctx.query_scratch);
    for nb in ctx.results.iter_mut() {
        nb.dist = rows.dist_to(metric, &ctx.query_scratch, nb.id as usize);
    }
    ctx.stats.distance_computations += ctx.results.len() as u64;
    ctx.results.sort_unstable_by(Neighbor::ordering);
    ctx.results.truncate(k);
}

/// Algorithm 1 on the context-reuse fast path: greedy best-first search on
/// `graph` starting from `start_nodes`, writing the answer and stats into
/// `ctx` and returning the top-k as a borrowed slice.
///
/// After the first call warms `ctx`'s buffers, this performs **zero heap
/// allocation** per query (the `alloc_guard` integration test enforces it).
///
/// `start_nodes` is usually a single node (the NSG navigating node, the HNSW
/// layer entry, or random nodes for KGraph/FANNG/DPG), but may contain many
/// entries (Efanna seeds the pool from KD-tree leaves, the random-init
/// methods fill the whole pool).
pub fn search_on_graph_into<'a, G: GraphView + ?Sized, S: VectorStore + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    store: &S,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    ctx: &'a mut SearchContext,
) -> &'a [Neighbor] {
    run_search(graph, store, query, start_nodes, params, metric, ctx, None);
    &ctx.results
}

/// Same as [`search_on_graph_into`] but seeds the search from the entry
/// points previously placed in [`SearchContext::entries`] (e.g. by
/// [`SearchContext::fill_random_entries`]), avoiding a per-query entry
/// buffer allocation.
pub fn search_from_context_entries<'a, G: GraphView + ?Sized, S: VectorStore + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    store: &S,
    query: &[f32],
    params: SearchParams,
    metric: &D,
    ctx: &'a mut SearchContext,
) -> &'a [Neighbor] {
    let entries = std::mem::take(&mut ctx.entries);
    run_search(graph, store, query, &entries, params, metric, ctx, None);
    ctx.entries = entries;
    &ctx.results
}

/// Algorithm 1, allocating convenience: runs on a fresh context and returns
/// an owned [`SearchResult`]. Prefer [`search_on_graph_into`] in loops.
pub fn search_on_graph<G: GraphView + ?Sized, S: VectorStore + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    store: &S,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
) -> SearchResult {
    let mut ctx = SearchContext::for_points(store.len());
    run_search(graph, store, query, start_nodes, params, metric, &mut ctx, None);
    SearchResult {
        neighbors: std::mem::take(&mut ctx.results),
        stats: ctx.stats,
    }
}

/// The "search-and-collect" routine of Algorithm 2: runs Algorithm 1 and also
/// returns every scored node whose distance to the query was computed along
/// the way. These visited nodes are the candidate neighbors the NSG
/// edge-selection prunes with the MRNG strategy.
pub fn search_collect<G: GraphView + ?Sized, S: VectorStore + ?Sized, D: Distance + ?Sized>(
    graph: &G,
    store: &S,
    query: &[f32],
    start_nodes: &[u32],
    params: SearchParams,
    metric: &D,
    ctx: &mut SearchContext,
) -> (SearchResult, Vec<Neighbor>) {
    let mut collected = Vec::with_capacity(params.pool_size * 4);
    run_search(graph, store, query, start_nodes, params, metric, ctx, Some(&mut collected));
    (
        SearchResult {
            neighbors: ctx.results.clone(),
            stats: ctx.stats,
        },
        collected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CompactGraph, DirectedGraph};
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;
    use nsg_vectors::VectorSet;

    /// A line of points 0..n where node i is connected to i-1 and i+1: search
    /// must walk monotonically toward the query.
    fn line_graph(n: usize) -> (DirectedGraph, VectorSet) {
        let base = VectorSet::from_rows(1, &(0..n).map(|i| [i as f32]).collect::<Vec<_>>());
        let mut g = DirectedGraph::new(n);
        for i in 0..n {
            if i > 0 {
                g.add_edge(i as u32, (i - 1) as u32);
            }
            if i + 1 < n {
                g.add_edge(i as u32, (i + 1) as u32);
            }
        }
        (g, base)
    }

    #[test]
    fn walks_a_line_to_the_query() {
        let (g, base) = line_graph(50);
        let res = search_on_graph(&g, &base, &[37.2], &[0], SearchParams::new(8, 3), &SquaredEuclidean);
        assert_eq!(res.neighbors[0].id, 37);
        assert_eq!(res.neighbors.len(), 3);
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(res.stats.hops >= 37, "must hop along the whole line");
    }

    #[test]
    fn pool_size_one_is_pure_greedy_descent() {
        let (g, base) = line_graph(20);
        let res = search_on_graph(&g, &base, &[10.1], &[0], SearchParams::new(1, 1), &SquaredEuclidean);
        assert_eq!(res.ids(), vec![10]);
    }

    #[test]
    fn start_node_equal_to_answer_terminates() {
        let (g, base) = line_graph(10);
        let res = search_on_graph(&g, &base, &[4.0], &[4], SearchParams::new(4, 1), &SquaredEuclidean);
        assert_eq!(res.ids(), vec![4]);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn multiple_start_nodes_seed_the_pool() {
        let (g, base) = line_graph(30);
        let res = search_on_graph(
            &g,
            &base,
            &[29.0],
            &[0, 28],
            SearchParams::new(4, 1),
            &SquaredEuclidean,
        );
        assert_eq!(res.ids(), vec![29]);
        // Starting next to the target requires far fewer hops than the line length.
        assert!(res.stats.hops < 10);
    }

    #[test]
    fn disconnected_target_is_not_found_but_search_terminates() {
        // Two disjoint components: 0-1-2 and 3-4. Query sits on node 4.
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [10.0], [11.0]]);
        let mut g = DirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(3, 4);
        g.add_edge(4, 3);
        let res = search_on_graph(&g, &base, &[11.0], &[0], SearchParams::new(4, 1), &SquaredEuclidean);
        // Only the first component is reachable, so the best answer is node 2.
        assert_eq!(res.ids(), vec![2]);
    }

    #[test]
    fn stats_count_visits_and_distances_consistently() {
        let base = uniform(500, 8, 3);
        let g = {
            // kNN-style random graph with 8 out-edges per node.
            let mut g = DirectedGraph::new(500);
            let mut state = 12345u64;
            for v in 0..500u32 {
                for _ in 0..8 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let u = (state >> 33) as u32 % 500;
                    if u != v {
                        g.add_edge(v, u);
                    }
                }
            }
            g
        };
        let res = search_on_graph(&g, &base, base.get(17), &[0], SearchParams::new(20, 5), &SquaredEuclidean);
        assert_eq!(res.stats.distance_computations, res.stats.visited);
        assert!(res.stats.visited <= 500);
        assert!(!res.neighbors.is_empty());
    }

    #[test]
    fn context_reuse_returns_identical_answers() {
        let (g, base) = line_graph(60);
        let mut ctx = SearchContext::for_points(base.len());
        let params = SearchParams::new(8, 3);
        let fresh: Vec<Vec<Neighbor>> = (0..10)
            .map(|q| {
                search_on_graph(&g, &base, &[q as f32 * 5.0 + 0.2], &[0], params, &SquaredEuclidean)
                    .neighbors
            })
            .collect();
        for (q, expect) in fresh.iter().enumerate() {
            let got = search_on_graph_into(
                &g,
                &base,
                &[q as f32 * 5.0 + 0.2],
                &[0],
                params,
                &SquaredEuclidean,
                &mut ctx,
            );
            assert_eq!(got, expect.as_slice(), "query {q} differs under context reuse");
        }
    }

    #[test]
    fn context_entries_variant_matches_explicit_starts() {
        let (g, base) = line_graph(40);
        let params = SearchParams::new(6, 2);
        let mut ctx = SearchContext::for_points(base.len());
        ctx.entries.clear();
        ctx.entries.extend([0u32, 35]);
        let via_ctx =
            search_from_context_entries(&g, &base, &[33.0], params, &SquaredEuclidean, &mut ctx).to_vec();
        let explicit =
            search_on_graph(&g, &base, &[33.0], &[0, 35], params, &SquaredEuclidean).neighbors;
        assert_eq!(via_ctx, explicit);
        // The entry scratch survives the call for the next query.
        assert_eq!(ctx.entries, vec![0, 35]);
    }

    #[test]
    fn search_collect_returns_every_evaluated_node() {
        let (g, base) = line_graph(40);
        let mut ctx = SearchContext::for_points(base.len());
        let (res, collected) = search_collect(
            &g,
            &base,
            &[25.0],
            &[0],
            SearchParams::new(6, 2),
            &SquaredEuclidean,
            &mut ctx,
        );
        assert_eq!(collected.len() as u64, res.stats.visited);
        // The answer must be among the collected nodes.
        assert!(collected.iter().any(|n| n.id == res.neighbors[0].id));
        // No duplicates.
        let mut ids: Vec<u32> = collected.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), collected.len());
    }

    #[test]
    fn fresh_visited_set_reports_nothing_visited() {
        // Regression test: a freshly constructed set must not claim any node
        // was already visited, even before the first next_epoch() call.
        let mut v = VisitedSet::new(4);
        for id in 0..4 {
            assert!(!v.contains(id), "fresh set claims node {id} visited");
        }
        assert!(v.insert(2), "insert into a fresh set must succeed");
        assert!(v.contains(2));
        assert!(!v.contains(3));
    }

    #[test]
    fn visited_set_epochs_reset_in_constant_time() {
        let mut v = VisitedSet::new(10);
        v.next_epoch();
        assert!(v.insert(3));
        assert!(!v.insert(3));
        assert!(v.contains(3));
        v.next_epoch();
        assert!(!v.contains(3));
        assert!(v.insert(3));
    }

    #[test]
    fn visited_set_grows_without_forgetting_epochs() {
        let mut v = VisitedSet::new(2);
        v.next_epoch();
        assert!(v.insert(1));
        v.ensure_capacity(8);
        assert_eq!(v.len(), 8);
        assert!(v.contains(1), "growth must not lose current-epoch marks");
        assert!(!v.contains(5), "grown slots must start unvisited");
        assert!(v.insert(7));
        v.ensure_capacity(4); // shrink requests are ignored
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn out_of_range_start_nodes_are_ignored() {
        let (g, base) = line_graph(5);
        let res = search_on_graph(
            &g,
            &base,
            &[2.0],
            &[99, 0],
            SearchParams::new(3, 1),
            &SquaredEuclidean,
        );
        assert_eq!(res.ids(), vec![2]);
    }

    #[test]
    fn frozen_csr_graph_answers_identically_to_nested_adjacency() {
        // The tentpole invariant: freezing the build-time graph into the
        // contiguous CSR layout changes the memory walk, not the algorithm —
        // answers, ordering and stats must be bit-identical.
        let base = uniform(800, 12, 5);
        let mut nested = DirectedGraph::new(800);
        let mut state = 99u64;
        for v in 0..800u32 {
            for _ in 0..10 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 33) as u32 % 800;
                if u != v {
                    nested.add_edge(v, u);
                }
            }
        }
        let frozen = CompactGraph::from(&nested);
        let params = SearchParams::new(24, 8);
        let mut ctx_a = SearchContext::for_points(base.len());
        let mut ctx_b = SearchContext::for_points(base.len());
        for q in (0..800).step_by(37) {
            let a =
                search_on_graph_into(&nested, &base, base.get(q), &[0], params, &SquaredEuclidean, &mut ctx_a)
                    .to_vec();
            let stats_a = ctx_a.stats;
            let b =
                search_on_graph_into(&frozen, &base, base.get(q), &[0], params, &SquaredEuclidean, &mut ctx_b)
                    .to_vec();
            assert_eq!(a, b, "query {q} differs between nested and CSR adjacency");
            assert_eq!(stats_a, ctx_b.stats, "query {q} cost differs between layouts");
        }
    }

    #[test]
    fn quantized_store_traversal_plus_exact_rerank_matches_flat_search() {
        // The tentpole invariant one level down: Algorithm 1 over the SQ8
        // store followed by exact rerank recovers the flat-store answer on
        // well-separated data, and the rerank rescores with exact distances.
        let base = nsg_vectors::synthetic::sift_like(600, 13);
        let store = nsg_vectors::quant::Sq8VectorSet::encode(&base);
        let mut g = DirectedGraph::new(base.len());
        // kNN-ish random graph.
        let mut state = 7u64;
        for v in 0..base.len() as u32 {
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 33) as u32 % base.len() as u32;
                if u != v {
                    g.add_edge(v, u);
                }
            }
        }
        let frozen = CompactGraph::from(&g);
        let mut ctx_flat = SearchContext::for_points(base.len());
        let mut ctx_q = SearchContext::for_points(base.len());
        let k = 5;
        let mut agreements = 0;
        for q in (0..base.len()).step_by(60) {
            let query = base.get(q).to_vec();
            let flat = search_on_graph_into(
                &frozen,
                &base,
                &query,
                &[0],
                SearchParams::new(40, k),
                &SquaredEuclidean,
                &mut ctx_flat,
            )
            .to_vec();
            // Quantized traversal keeps 4x candidates, exact rerank truncates.
            search_on_graph_into(
                &frozen,
                &store,
                &query,
                &[0],
                SearchParams::new(40, 4 * k),
                &SquaredEuclidean,
                &mut ctx_q,
            );
            let before = ctx_q.stats.distance_computations;
            exact_rerank(&mut ctx_q, &base, &SquaredEuclidean, &query, k);
            assert_eq!(
                ctx_q.stats.distance_computations,
                before + 4 * k as u64,
                "rerank must charge one exact evaluation per candidate"
            );
            assert_eq!(ctx_q.results.len(), k);
            assert!(ctx_q.results.windows(2).all(|w| w[0].dist <= w[1].dist));
            // Reranked distances are exact f32 distances.
            for nb in &ctx_q.results {
                assert_eq!(nb.dist, SquaredEuclidean.distance(&query, base.get(nb.id as usize)));
            }
            if ctx_q.results == flat {
                agreements += 1;
            }
        }
        assert!(agreements >= 9, "only {agreements}/10 queries agreed with the flat search");
    }

    #[test]
    fn params_enforce_pool_at_least_k() {
        let p = SearchParams::new(2, 10);
        assert_eq!(p.pool_size, 10);
        let p2 = SearchParams::new(0, 0);
        assert_eq!(p2.pool_size, 1);
    }
}
