//! Compact binary serialization of an NSG index.
//!
//! The layout mirrors the file format of the released NSG implementation so
//! index sizes are directly comparable to the paper's Table 2: a small header
//! (magic, navigating node, node count) followed by one record per node
//! consisting of a `u32` degree and that many `u32` neighbor ids, all
//! little-endian.

use crate::graph::DirectedGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic number identifying the serialized format ("NSG1").
const MAGIC: u32 = 0x4E53_4731;

/// Errors returned by the index (de)serialization routines.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream is not a valid serialized NSG graph.
    Corrupt(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Serializes a graph and its navigating node into a compact byte buffer.
pub fn graph_to_bytes(graph: &DirectedGraph, navigating_node: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + graph.num_edges() * 4 + graph.num_nodes() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(navigating_node);
    buf.put_u32_le(graph.num_nodes() as u32);
    for v in 0..graph.num_nodes() as u32 {
        let neighbors = graph.neighbors(v);
        buf.put_u32_le(neighbors.len() as u32);
        for &u in neighbors {
            buf.put_u32_le(u);
        }
    }
    buf.freeze()
}

/// Deserializes a graph produced by [`graph_to_bytes`], returning the graph
/// and the navigating node.
pub fn graph_from_bytes(mut bytes: &[u8]) -> Result<(DirectedGraph, u32), SerializeError> {
    if bytes.remaining() < 12 {
        return Err(SerializeError::Corrupt("truncated header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(SerializeError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let navigating_node = bytes.get_u32_le();
    let n = bytes.get_u32_le() as usize;
    let mut adjacency = Vec::with_capacity(n);
    for v in 0..n {
        if bytes.remaining() < 4 {
            return Err(SerializeError::Corrupt(format!("truncated degree of node {v}")));
        }
        let degree = bytes.get_u32_le() as usize;
        if bytes.remaining() < degree * 4 {
            return Err(SerializeError::Corrupt(format!("truncated neighbor list of node {v}")));
        }
        let mut list = Vec::with_capacity(degree);
        for _ in 0..degree {
            let u = bytes.get_u32_le();
            if u as usize >= n {
                return Err(SerializeError::Corrupt(format!("edge {v} -> {u} out of range")));
            }
            list.push(u);
        }
        adjacency.push(list);
    }
    if n > 0 && navigating_node as usize >= n {
        return Err(SerializeError::Corrupt("navigating node out of range".into()));
    }
    Ok((DirectedGraph::from_adjacency(adjacency), navigating_node))
}

/// Writes the serialized graph to a file.
pub fn save_graph<P: AsRef<Path>>(
    path: P,
    graph: &DirectedGraph,
    navigating_node: u32,
) -> Result<(), SerializeError> {
    let bytes = graph_to_bytes(graph, navigating_node);
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Reads a serialized graph from a file.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<(DirectedGraph, u32), SerializeError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    graph_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> DirectedGraph {
        DirectedGraph::from_adjacency(vec![vec![1, 2], vec![2], vec![], vec![0, 1, 2]])
    }

    #[test]
    fn roundtrip_in_memory() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 3);
        let (back, nav) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 3);
    }

    #[test]
    fn roundtrip_on_disk() {
        let g = toy_graph();
        let dir = std::env::temp_dir().join(format!("nsg_ser_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nsg");
        save_graph(&path, &g, 1).unwrap();
        let (back, nav) = load_graph(&path).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = DirectedGraph::new(0);
        let bytes = graph_to_bytes(&g, 0);
        let (back, _) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = graph_to_bytes(&toy_graph(), 0).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(graph_from_bytes(&bytes), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = graph_to_bytes(&toy_graph(), 0);
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(
                graph_from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes not detected"
            );
        }
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        // Hand-craft a stream whose single node points at node 7.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_navigating_node_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(9); // navigating node
        buf.put_u32_le(1); // one node
        buf.put_u32_le(0); // degree 0
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn serialized_size_matches_fixed_structure() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 0);
        // header 12 bytes + 4 degree words + 6 edge words.
        assert_eq!(bytes.len(), 12 + 4 * 4 + 6 * 4);
    }
}
