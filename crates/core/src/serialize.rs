//! Compact binary serialization of an NSG index.
//!
//! The layout mirrors the file format of the released NSG implementation so
//! index sizes are directly comparable to the paper's Table 2: a small header
//! (magic, navigating node, node count) followed by one record per node
//! consisting of a `u32` degree and that many `u32` neighbor ids, all
//! little-endian.
//!
//! That record layout is already CSR-shaped, so since the frozen-graph
//! refactor the decoder fills a [`CompactGraph`] directly: one bounded
//! streaming pass appends each record's neighbors to the shared arena and
//! closes the node's offset — no per-node `Vec` allocation, and **no
//! allocation sized from unvalidated header fields**. Every count read from
//! the stream (node count, per-node degree) is checked against the bytes
//! actually remaining before any buffer is reserved, so a corrupt or
//! adversarial header fails fast with [`SerializeError::Corrupt`] instead of
//! attempting a multi-gigabyte allocation. The encoder is generic over
//! [`GraphView`], so both representations write the identical byte stream.
//!
//! All magic numbers and fixed header sizes come from [`crate::format`],
//! which also documents the byte layouts; the aligned zero-copy snapshot
//! format built on top of these sections lives in [`crate::snapshot`].

use crate::format::{GRAPH_MAGIC, HEADER_LEN, SQ8_MAGIC};
use crate::graph::{CompactGraph, GraphView};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nsg_vectors::quant::Sq8VectorSet;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Errors returned by the index (de)serialization routines.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream is not a valid serialized NSG graph.
    Corrupt(String),
    /// The in-memory graph cannot be represented in the on-disk format
    /// (node count or a degree exceeds `u32`), so encoding it would
    /// silently truncate into garbage.
    TooLarge(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            SerializeError::TooLarge(msg) => write!(f, "graph too large for the format: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Serializes a graph and its navigating node into a compact byte buffer.
///
/// Generic over [`GraphView`]: the frozen [`CompactGraph`] and the build-time
/// [`DirectedGraph`](crate::graph::DirectedGraph) encode to the identical
/// byte stream. Node count and every degree are converted with checked
/// narrowing — a graph that does not fit the `u32` on-disk fields returns
/// [`SerializeError::TooLarge`] instead of round-tripping to garbage.
pub fn graph_to_bytes<G: GraphView + ?Sized>(
    graph: &G,
    navigating_node: u32,
) -> Result<Bytes, SerializeError> {
    let n = u32::try_from(graph.num_nodes())
        .map_err(|_| SerializeError::TooLarge(format!("{} nodes exceed u32", graph.num_nodes())))?;
    // The decoder rebuilds u32 CSR offsets, so the *total* edge count must
    // fit u32 as well — otherwise the encoder would happily write a file
    // `graph_from_bytes` can never read back.
    let edges = graph.num_edges();
    if u32::try_from(edges).is_err() {
        return Err(SerializeError::TooLarge(format!("{edges} total edges exceed u32")));
    }
    let mut buf = BytesMut::with_capacity(HEADER_LEN + edges * 4 + graph.num_nodes() * 4);
    buf.put_u32_le(GRAPH_MAGIC);
    buf.put_u32_le(navigating_node);
    buf.put_u32_le(n);
    for v in 0..n {
        let neighbors = graph.neighbors(v);
        let degree = u32::try_from(neighbors.len()).map_err(|_| {
            SerializeError::TooLarge(format!("degree {} of node {v} exceeds u32", neighbors.len()))
        })?;
        buf.put_u32_le(degree);
        for &u in neighbors {
            buf.put_u32_le(u);
        }
    }
    Ok(buf.freeze())
}

/// Deserializes a graph produced by [`graph_to_bytes`], returning the frozen
/// [`CompactGraph`] and the navigating node.
///
/// The decode is a bounded streaming fill: header counts are validated
/// against `bytes.remaining()` **before** any allocation (a corrupt header
/// claiming `u32::MAX` nodes is rejected in O(1) instead of reserving ~96 GB
/// of `Vec` headers), and each node's neighbor run is appended straight to
/// the CSR arena.
pub fn graph_from_bytes(mut bytes: &[u8]) -> Result<(CompactGraph, u32), SerializeError> {
    decode_graph(&mut bytes)
}

/// Streaming graph decode that advances `bytes` past the consumed section,
/// so composite formats (graph section + SQ8 section) can parse in sequence.
fn decode_graph(bytes: &mut &[u8]) -> Result<(CompactGraph, u32), SerializeError> {
    if bytes.remaining() < HEADER_LEN {
        return Err(SerializeError::Corrupt("truncated header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != GRAPH_MAGIC {
        return Err(SerializeError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let navigating_node = bytes.get_u32_le();
    let n = bytes.get_u32_le() as usize;
    // Every node record is at least one u32 (its degree), so a stream holding
    // `r` bytes can encode at most `r / 4` nodes. Checking before reserving
    // bounds both allocations below by the actual input size.
    let max_records = bytes.remaining() / 4;
    if n > max_records {
        return Err(SerializeError::Corrupt(format!(
            "header claims {n} nodes but only {} bytes remain",
            bytes.remaining()
        )));
    }
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    offsets.push(0);
    // The arena can never exceed the remaining u32 words either; reserving
    // the exact final size up front would need a second pass, so start from
    // a degree-guess and let growth stay amortized-linear and input-bounded.
    let mut targets: Vec<u32> = Vec::with_capacity(max_records.saturating_sub(n));
    for v in 0..n {
        if bytes.remaining() < 4 {
            return Err(SerializeError::Corrupt(format!("truncated degree of node {v}")));
        }
        let degree = bytes.get_u32_le() as usize;
        if bytes.remaining() < degree * 4 {
            return Err(SerializeError::Corrupt(format!("truncated neighbor list of node {v}")));
        }
        for _ in 0..degree {
            let u = bytes.get_u32_le();
            if u as usize >= n {
                return Err(SerializeError::Corrupt(format!("edge {v} -> {u} out of range")));
            }
            targets.push(u);
        }
        let end = u32::try_from(targets.len())
            .map_err(|_| SerializeError::Corrupt("edge count exceeds u32".into()))?;
        offsets.push(end);
    }
    if n > 0 && navigating_node as usize >= n {
        return Err(SerializeError::Corrupt("navigating node out of range".into()));
    }
    Ok((CompactGraph::from_validated_parts(offsets, targets), navigating_node))
}

/// Writes the serialized graph to a file.
pub fn save_graph<P: AsRef<Path>, G: GraphView + ?Sized>(
    path: P,
    graph: &G,
    navigating_node: u32,
) -> Result<(), SerializeError> {
    let bytes = graph_to_bytes(graph, navigating_node)?;
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Reads a serialized graph from a file.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<(CompactGraph, u32), SerializeError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    graph_from_bytes(&bytes)
}

/// Serializes an SQ8 quantized store: magic "NSQ8", `dim`, `n`, the per-dim
/// `min` and `scale` arrays (`f32` little-endian), then the `n·dim` code
/// arena. All counts are `u32`-checked like the graph format.
pub fn sq8_to_bytes(store: &Sq8VectorSet) -> Result<Bytes, SerializeError> {
    let dim = u32::try_from(store.dim())
        .map_err(|_| SerializeError::TooLarge(format!("dimension {} exceeds u32", store.dim())))?;
    let n = u32::try_from(store.len())
        .map_err(|_| SerializeError::TooLarge(format!("{} vectors exceed u32", store.len())))?;
    let mut buf = BytesMut::with_capacity(HEADER_LEN + store.dim() * 8 + store.as_codes().len());
    buf.put_u32_le(SQ8_MAGIC);
    buf.put_u32_le(dim);
    buf.put_u32_le(n);
    for &lo in store.mins() {
        buf.put_f32_le(lo);
    }
    for &s in store.scales() {
        buf.put_f32_le(s);
    }
    buf.put_slice(store.as_codes());
    Ok(buf.freeze())
}

/// Deserializes an SQ8 store produced by [`sq8_to_bytes`].
///
/// Same hardening bar as the graph decode: every header count is validated
/// against `bytes.remaining()` **before** any allocation, so a corrupt
/// stream claiming `u32::MAX` vectors (a ~550 GB code arena) is rejected in
/// O(1), and non-finite affine parameters are refused — a single NaN `scale`
/// would silently poison every distance computed against the store.
pub fn sq8_from_bytes(mut bytes: &[u8]) -> Result<Sq8VectorSet, SerializeError> {
    decode_sq8(&mut bytes)
}

/// Streaming SQ8 decode that advances `bytes` past the consumed section.
fn decode_sq8(bytes: &mut &[u8]) -> Result<Sq8VectorSet, SerializeError> {
    if bytes.remaining() < HEADER_LEN {
        return Err(SerializeError::Corrupt("truncated SQ8 header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != SQ8_MAGIC {
        return Err(SerializeError::Corrupt(format!("bad SQ8 magic 0x{magic:08x}")));
    }
    let dim32 = bytes.get_u32_le();
    let n32 = bytes.get_u32_le();
    let dim = dim32 as usize;
    let n = n32 as usize;
    if dim == 0 {
        return Err(SerializeError::Corrupt("SQ8 dimension is zero".into()));
    }
    // The affine parameters alone occupy 8 bytes per dimension; bounding the
    // claimed dim by the bytes actually present caps both `Vec` reservations
    // below at the input size.
    if bytes.remaining() / 8 < dim {
        return Err(SerializeError::Corrupt(format!(
            "SQ8 header claims dimension {dim} but only {} bytes remain",
            bytes.remaining()
        )));
    }
    let mut min = Vec::with_capacity(dim);
    for i in 0..dim {
        let lo = bytes.get_f32_le();
        if !lo.is_finite() {
            return Err(SerializeError::Corrupt(format!("non-finite min at dimension {i}")));
        }
        min.push(lo);
    }
    let mut scale = Vec::with_capacity(dim);
    for i in 0..dim {
        let s = bytes.get_f32_le();
        if !s.is_finite() || s < 0.0 {
            return Err(SerializeError::Corrupt(format!("invalid scale {s} at dimension {i}")));
        }
        scale.push(s);
    }
    // Code arena: `n · dim` bytes, claimed count checked against the stream
    // before the allocation (u64 math so the product cannot wrap, checked
    // conversion back so a 32-bit host cannot silently truncate it).
    let claimed = u64::from(n32) * u64::from(dim32);
    let code_bytes = usize::try_from(claimed)
        .ok()
        .filter(|&cb| cb <= bytes.remaining())
        .ok_or_else(|| {
            SerializeError::Corrupt(format!(
                "SQ8 header claims {n} vectors ({claimed} code bytes) but only {} bytes remain",
                bytes.remaining()
            ))
        })?;
    let codes = bytes.chunk()[..code_bytes].to_vec();
    bytes.advance(code_bytes);
    // The length relations were all enforced above, but corrupt inputs must
    // never reach a panicking constructor — surface any residue as Corrupt.
    Sq8VectorSet::try_from_parts(dim, min, scale, codes)
        .map_err(|e| SerializeError::Corrupt(format!("SQ8 parts rejected: {e}")))
}

/// Serializes a quantized index: the graph section ([`graph_to_bytes`])
/// followed by the SQ8 store section ([`sq8_to_bytes`]). Rejects a store
/// whose vector count differs from the graph's node count — such a pair can
/// never decode back into a consistent index (`Corrupt`, the same error
/// class the decoder assigns this mismatch).
pub fn quantized_index_to_bytes<G: GraphView + ?Sized>(
    graph: &G,
    navigating_node: u32,
    store: &Sq8VectorSet,
) -> Result<Bytes, SerializeError> {
    if graph.num_nodes() != store.len() {
        return Err(SerializeError::Corrupt(format!(
            "graph has {} nodes but the store holds {} vectors",
            graph.num_nodes(),
            store.len()
        )));
    }
    let graph_bytes = graph_to_bytes(graph, navigating_node)?;
    let store_bytes = sq8_to_bytes(store)?;
    let mut buf = BytesMut::with_capacity(graph_bytes.len() + store_bytes.len());
    buf.put_slice(&graph_bytes);
    buf.put_slice(&store_bytes);
    Ok(buf.freeze())
}

/// Deserializes a quantized index written by [`quantized_index_to_bytes`]:
/// both sections stream-decode with their bounded validation, then the pair
/// is cross-checked (node count vs. vector count) and trailing garbage is
/// rejected.
pub fn quantized_index_from_bytes(
    mut bytes: &[u8],
) -> Result<(CompactGraph, u32, Sq8VectorSet), SerializeError> {
    let (graph, navigating_node) = decode_graph(&mut bytes)?;
    let store = decode_sq8(&mut bytes)?;
    if store.len() != graph.num_nodes() {
        return Err(SerializeError::Corrupt(format!(
            "graph has {} nodes but the store holds {} vectors",
            graph.num_nodes(),
            store.len()
        )));
    }
    if bytes.has_remaining() {
        return Err(SerializeError::Corrupt(format!(
            "{} trailing bytes after the SQ8 section",
            bytes.remaining()
        )));
    }
    Ok((graph, navigating_node, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirectedGraph;

    fn toy_graph() -> CompactGraph {
        CompactGraph::from_adjacency(vec![vec![1, 2], vec![2], vec![], vec![0, 1, 2]])
    }

    #[test]
    fn roundtrip_in_memory() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 3).unwrap();
        let (back, nav) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 3);
    }

    #[test]
    fn directed_and_compact_encode_identically() {
        // Same MAGIC, same records: a file written from either representation
        // is readable as the other — the format did not fork.
        let lists = vec![vec![1u32, 2], vec![2], vec![], vec![0, 1, 2]];
        let nested = DirectedGraph::from_adjacency(lists.clone());
        let frozen = CompactGraph::from_adjacency(lists);
        let a = graph_to_bytes(&nested, 2).unwrap();
        let b = graph_to_bytes(&frozen, 2).unwrap();
        assert_eq!(a, b, "encodings diverge between representations");
        let (back, _) = graph_from_bytes(&a).unwrap();
        assert_eq!(back.to_directed(), nested);
    }

    #[test]
    fn roundtrip_on_disk() {
        let g = toy_graph();
        let dir = std::env::temp_dir().join(format!("nsg_ser_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nsg");
        save_graph(&path, &g, 1).unwrap();
        let (back, nav) = load_graph(&path).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CompactGraph::empty();
        let bytes = graph_to_bytes(&g, 0).unwrap();
        let (back, _) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = graph_to_bytes(&toy_graph(), 0).unwrap().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(graph_from_bytes(&bytes), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = graph_to_bytes(&toy_graph(), 0).unwrap();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(
                graph_from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes not detected"
            );
        }
    }

    #[test]
    fn corrupt_header_node_count_fails_fast_without_allocating() {
        // Regression: the decoder used to `Vec::with_capacity(n)` straight
        // from the header — a stream claiming u32::MAX nodes requested ~96 GB
        // of `Vec` headers before reading a single record. The claimed count
        // must now be bounded by the bytes actually present.
        for claimed in [u32::MAX, u32::MAX / 2, 1_000_000] {
            let mut buf = BytesMut::new();
            buf.put_u32_le(GRAPH_MAGIC);
            buf.put_u32_le(0); // navigating node
            buf.put_u32_le(claimed); // wildly overstated node count
            buf.put_u32_le(0); // a single real record
            let err = graph_from_bytes(&buf.freeze()).unwrap_err();
            assert!(
                matches!(&err, SerializeError::Corrupt(msg) if msg.contains("claims")),
                "claimed {claimed}: expected fast corrupt-header rejection, got {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_degree_is_bounded_by_remaining_bytes() {
        // A single node whose degree field claims far more neighbors than the
        // stream holds must be rejected before any arena growth.
        let mut buf = BytesMut::new();
        buf.put_u32_le(GRAPH_MAGIC);
        buf.put_u32_le(0);
        buf.put_u32_le(1); // one node
        buf.put_u32_le(u32::MAX); // degree overstated by ~4 billion
        buf.put_u32_le(0); // only one neighbor word actually present
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        // Hand-craft a stream whose single node points at node 7.
        let mut buf = BytesMut::new();
        buf.put_u32_le(GRAPH_MAGIC);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_navigating_node_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(GRAPH_MAGIC);
        buf.put_u32_le(9); // navigating node
        buf.put_u32_le(1); // one node
        buf.put_u32_le(0); // degree 0
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn sq8_store_roundtrips_byte_exactly() {
        let base = nsg_vectors::synthetic::uniform(40, 9, 3);
        let store = Sq8VectorSet::encode(&base);
        let bytes = sq8_to_bytes(&store).unwrap();
        let back = sq8_from_bytes(&bytes).unwrap();
        assert_eq!(back, store);
        // Byte-exact: re-encoding the decoded store reproduces the stream.
        assert_eq!(sq8_to_bytes(&back).unwrap(), bytes);
    }

    #[test]
    fn quantized_index_roundtrips_byte_exactly() {
        let g = toy_graph();
        let base = nsg_vectors::synthetic::uniform(g.num_nodes(), 6, 5);
        let store = Sq8VectorSet::encode(&base);
        let bytes = quantized_index_to_bytes(&g, 2, &store).unwrap();
        let (graph, nav, back) = quantized_index_from_bytes(&bytes).unwrap();
        assert_eq!(graph, g);
        assert_eq!(nav, 2);
        assert_eq!(back, store);
        assert_eq!(quantized_index_to_bytes(&graph, nav, &back).unwrap(), bytes);
    }

    #[test]
    fn quantized_encode_rejects_mismatched_store() {
        let g = toy_graph(); // 4 nodes
        let base = nsg_vectors::synthetic::uniform(3, 4, 1);
        let store = Sq8VectorSet::encode(&base);
        assert!(matches!(
            quantized_index_to_bytes(&g, 0, &store),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_sq8_vector_count_fails_fast_without_allocating() {
        // Same regression bar as the graph header: a stream claiming
        // u32::MAX vectors (a ~550 GB code arena at dim 128) must be
        // rejected by comparing against the bytes actually present, before
        // any allocation happens.
        let base = nsg_vectors::synthetic::uniform(4, 8, 7);
        let good = sq8_to_bytes(&Sq8VectorSet::encode(&base)).unwrap();
        let mut bytes = good.to_vec();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes()); // overstate n
        let err = sq8_from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(&err, SerializeError::Corrupt(msg) if msg.contains("claims")),
            "expected fast corrupt-count rejection, got {err:?}"
        );
        // Overstated dimension is bounded the same way.
        let mut bytes = good.to_vec();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(sq8_from_bytes(&bytes), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn sq8_rejects_bad_magic_truncation_and_poisoned_parameters() {
        let base = nsg_vectors::synthetic::uniform(6, 4, 9);
        let good = sq8_to_bytes(&Sq8VectorSet::encode(&base)).unwrap();

        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(sq8_from_bytes(&bad_magic), Err(SerializeError::Corrupt(_))));

        for cut in [0, 7, 11, good.len() - 1] {
            assert!(sq8_from_bytes(&good[..cut]).is_err(), "truncation at {cut} not detected");
        }

        // A NaN scale would silently poison every asymmetric distance; the
        // decoder must refuse it (scale of dim 0 sits after the 12-byte
        // header and the 4 min floats).
        let mut poisoned = good.to_vec();
        let scale0 = 12 + 4 * 4;
        poisoned[scale0..scale0 + 4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(matches!(sq8_from_bytes(&poisoned), Err(SerializeError::Corrupt(_))));

        // Zero-dimension streams are structurally invalid.
        let mut zero_dim = good.to_vec();
        zero_dim[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(sq8_from_bytes(&zero_dim), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn quantized_index_rejects_trailing_garbage_and_count_mismatch() {
        let g = toy_graph();
        let base = nsg_vectors::synthetic::uniform(g.num_nodes(), 5, 11);
        let store = Sq8VectorSet::encode(&base);
        let good = quantized_index_to_bytes(&g, 0, &store).unwrap();

        let mut trailing = good.to_vec();
        trailing.push(0xAB);
        assert!(matches!(
            quantized_index_from_bytes(&trailing),
            Err(SerializeError::Corrupt(msg)) if msg.contains("trailing")
        ));

        // Hand-compose a graph section with a store of the wrong length.
        let small = Sq8VectorSet::encode(&nsg_vectors::synthetic::uniform(2, 5, 11));
        let mut mismatched = graph_to_bytes(&g, 0).unwrap().to_vec();
        mismatched.extend_from_slice(&sq8_to_bytes(&small).unwrap());
        assert!(matches!(
            quantized_index_from_bytes(&mismatched),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn serialized_size_matches_fixed_structure() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 0).unwrap();
        // header 12 bytes + 4 degree words + 6 edge words.
        assert_eq!(bytes.len(), 12 + 4 * 4 + 6 * 4);
    }
}
