//! Compact binary serialization of an NSG index.
//!
//! The layout mirrors the file format of the released NSG implementation so
//! index sizes are directly comparable to the paper's Table 2: a small header
//! (magic, navigating node, node count) followed by one record per node
//! consisting of a `u32` degree and that many `u32` neighbor ids, all
//! little-endian.
//!
//! That record layout is already CSR-shaped, so since the frozen-graph
//! refactor the decoder fills a [`CompactGraph`] directly: one bounded
//! streaming pass appends each record's neighbors to the shared arena and
//! closes the node's offset — no per-node `Vec` allocation, and **no
//! allocation sized from unvalidated header fields**. Every count read from
//! the stream (node count, per-node degree) is checked against the bytes
//! actually remaining before any buffer is reserved, so a corrupt or
//! adversarial header fails fast with [`SerializeError::Corrupt`] instead of
//! attempting a multi-gigabyte allocation. The encoder is generic over
//! [`GraphView`], so both representations write the identical byte stream.

use crate::graph::{CompactGraph, GraphView};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic number identifying the serialized format ("NSG1").
const MAGIC: u32 = 0x4E53_4731;

/// Errors returned by the index (de)serialization routines.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream is not a valid serialized NSG graph.
    Corrupt(String),
    /// The in-memory graph cannot be represented in the on-disk format
    /// (node count or a degree exceeds `u32`), so encoding it would
    /// silently truncate into garbage.
    TooLarge(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            SerializeError::TooLarge(msg) => write!(f, "graph too large for the format: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Serializes a graph and its navigating node into a compact byte buffer.
///
/// Generic over [`GraphView`]: the frozen [`CompactGraph`] and the build-time
/// [`DirectedGraph`](crate::graph::DirectedGraph) encode to the identical
/// byte stream. Node count and every degree are converted with checked
/// narrowing — a graph that does not fit the `u32` on-disk fields returns
/// [`SerializeError::TooLarge`] instead of round-tripping to garbage.
pub fn graph_to_bytes<G: GraphView + ?Sized>(
    graph: &G,
    navigating_node: u32,
) -> Result<Bytes, SerializeError> {
    let n = u32::try_from(graph.num_nodes())
        .map_err(|_| SerializeError::TooLarge(format!("{} nodes exceed u32", graph.num_nodes())))?;
    // The decoder rebuilds u32 CSR offsets, so the *total* edge count must
    // fit u32 as well — otherwise the encoder would happily write a file
    // `graph_from_bytes` can never read back.
    let edges = graph.num_edges();
    if u32::try_from(edges).is_err() {
        return Err(SerializeError::TooLarge(format!("{edges} total edges exceed u32")));
    }
    let mut buf = BytesMut::with_capacity(12 + edges * 4 + graph.num_nodes() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(navigating_node);
    buf.put_u32_le(n);
    for v in 0..n {
        let neighbors = graph.neighbors(v);
        let degree = u32::try_from(neighbors.len()).map_err(|_| {
            SerializeError::TooLarge(format!("degree {} of node {v} exceeds u32", neighbors.len()))
        })?;
        buf.put_u32_le(degree);
        for &u in neighbors {
            buf.put_u32_le(u);
        }
    }
    Ok(buf.freeze())
}

/// Deserializes a graph produced by [`graph_to_bytes`], returning the frozen
/// [`CompactGraph`] and the navigating node.
///
/// The decode is a bounded streaming fill: header counts are validated
/// against `bytes.remaining()` **before** any allocation (a corrupt header
/// claiming `u32::MAX` nodes is rejected in O(1) instead of reserving ~96 GB
/// of `Vec` headers), and each node's neighbor run is appended straight to
/// the CSR arena.
pub fn graph_from_bytes(mut bytes: &[u8]) -> Result<(CompactGraph, u32), SerializeError> {
    if bytes.remaining() < 12 {
        return Err(SerializeError::Corrupt("truncated header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(SerializeError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let navigating_node = bytes.get_u32_le();
    let n = bytes.get_u32_le() as usize;
    // Every node record is at least one u32 (its degree), so a stream holding
    // `r` bytes can encode at most `r / 4` nodes. Checking before reserving
    // bounds both allocations below by the actual input size.
    let max_records = bytes.remaining() / 4;
    if n > max_records {
        return Err(SerializeError::Corrupt(format!(
            "header claims {n} nodes but only {} bytes remain",
            bytes.remaining()
        )));
    }
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    offsets.push(0);
    // The arena can never exceed the remaining u32 words either; reserving
    // the exact final size up front would need a second pass, so start from
    // a degree-guess and let growth stay amortized-linear and input-bounded.
    let mut targets: Vec<u32> = Vec::with_capacity(max_records.saturating_sub(n));
    for v in 0..n {
        if bytes.remaining() < 4 {
            return Err(SerializeError::Corrupt(format!("truncated degree of node {v}")));
        }
        let degree = bytes.get_u32_le() as usize;
        if bytes.remaining() < degree * 4 {
            return Err(SerializeError::Corrupt(format!("truncated neighbor list of node {v}")));
        }
        for _ in 0..degree {
            let u = bytes.get_u32_le();
            if u as usize >= n {
                return Err(SerializeError::Corrupt(format!("edge {v} -> {u} out of range")));
            }
            targets.push(u);
        }
        let end = u32::try_from(targets.len())
            .map_err(|_| SerializeError::Corrupt("edge count exceeds u32".into()))?;
        offsets.push(end);
    }
    if n > 0 && navigating_node as usize >= n {
        return Err(SerializeError::Corrupt("navigating node out of range".into()));
    }
    Ok((CompactGraph::from_validated_parts(offsets, targets), navigating_node))
}

/// Writes the serialized graph to a file.
pub fn save_graph<P: AsRef<Path>, G: GraphView + ?Sized>(
    path: P,
    graph: &G,
    navigating_node: u32,
) -> Result<(), SerializeError> {
    let bytes = graph_to_bytes(graph, navigating_node)?;
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Reads a serialized graph from a file.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<(CompactGraph, u32), SerializeError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    graph_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirectedGraph;

    fn toy_graph() -> CompactGraph {
        CompactGraph::from_adjacency(vec![vec![1, 2], vec![2], vec![], vec![0, 1, 2]])
    }

    #[test]
    fn roundtrip_in_memory() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 3).unwrap();
        let (back, nav) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 3);
    }

    #[test]
    fn directed_and_compact_encode_identically() {
        // Same MAGIC, same records: a file written from either representation
        // is readable as the other — the format did not fork.
        let lists = vec![vec![1u32, 2], vec![2], vec![], vec![0, 1, 2]];
        let nested = DirectedGraph::from_adjacency(lists.clone());
        let frozen = CompactGraph::from_adjacency(lists);
        let a = graph_to_bytes(&nested, 2).unwrap();
        let b = graph_to_bytes(&frozen, 2).unwrap();
        assert_eq!(a, b, "encodings diverge between representations");
        let (back, _) = graph_from_bytes(&a).unwrap();
        assert_eq!(back.to_directed(), nested);
    }

    #[test]
    fn roundtrip_on_disk() {
        let g = toy_graph();
        let dir = std::env::temp_dir().join(format!("nsg_ser_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nsg");
        save_graph(&path, &g, 1).unwrap();
        let (back, nav) = load_graph(&path).unwrap();
        assert_eq!(back, g);
        assert_eq!(nav, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CompactGraph::empty();
        let bytes = graph_to_bytes(&g, 0).unwrap();
        let (back, _) = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = graph_to_bytes(&toy_graph(), 0).unwrap().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(graph_from_bytes(&bytes), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = graph_to_bytes(&toy_graph(), 0).unwrap();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(
                graph_from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes not detected"
            );
        }
    }

    #[test]
    fn corrupt_header_node_count_fails_fast_without_allocating() {
        // Regression: the decoder used to `Vec::with_capacity(n)` straight
        // from the header — a stream claiming u32::MAX nodes requested ~96 GB
        // of `Vec` headers before reading a single record. The claimed count
        // must now be bounded by the bytes actually present.
        for claimed in [u32::MAX, u32::MAX / 2, 1_000_000] {
            let mut buf = BytesMut::new();
            buf.put_u32_le(MAGIC);
            buf.put_u32_le(0); // navigating node
            buf.put_u32_le(claimed); // wildly overstated node count
            buf.put_u32_le(0); // a single real record
            let err = graph_from_bytes(&buf.freeze()).unwrap_err();
            assert!(
                matches!(&err, SerializeError::Corrupt(msg) if msg.contains("claims")),
                "claimed {claimed}: expected fast corrupt-header rejection, got {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_degree_is_bounded_by_remaining_bytes() {
        // A single node whose degree field claims far more neighbors than the
        // stream holds must be rejected before any arena growth.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(0);
        buf.put_u32_le(1); // one node
        buf.put_u32_le(u32::MAX); // degree overstated by ~4 billion
        buf.put_u32_le(0); // only one neighbor word actually present
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        // Hand-craft a stream whose single node points at node 7.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_navigating_node_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(9); // navigating node
        buf.put_u32_le(1); // one node
        buf.put_u32_le(0); // degree 0
        assert!(matches!(
            graph_from_bytes(&buf.freeze()),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn serialized_size_matches_fixed_structure() {
        let g = toy_graph();
        let bytes = graph_to_bytes(&g, 0).unwrap();
        // header 12 bytes + 4 degree words + 6 edge words.
        assert_eq!(bytes.len(), 12 + 4 * 4 + 6 * 4);
    }
}
