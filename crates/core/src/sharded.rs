//! Sharded (partitioned) NSG search.
//!
//! Building one NSG over a very large collection is slower than building many
//! small ones (§4.2 shows 16 sequentially-built shard NSGs on DEEP100M finish
//! in roughly half the time of a single index), and the Taobao deployment of
//! §4.3 partitions two billion vectors over 32 machines, searches every
//! partition and merges the per-partition answers. [`ShardedNsg`] reproduces
//! that design in-process: the base set is split into `p` random shards, an
//! NSG is built per shard, and a query is answered by searching every shard
//! and merging the top-k.

use crate::index::{AnnIndex, SearchQuality};
use crate::nsg::{NsgIndex, NsgParams};
use nsg_vectors::distance::Distance;
use nsg_vectors::sample::random_partition;
use nsg_vectors::VectorSet;
use rayon::prelude::*;
use std::sync::Arc;

/// A collection of per-shard NSG indices with global-id bookkeeping.
pub struct ShardedNsg<D> {
    shards: Vec<NsgIndex<D>>,
    /// `global_ids[s][local]` is the id in the original base set of local node
    /// `local` of shard `s`.
    global_ids: Vec<Vec<u32>>,
    dim: usize,
}

impl<D: Distance + Sync + Clone> ShardedNsg<D> {
    /// Partitions `base` into `num_shards` random shards and builds one NSG
    /// per shard (shards are built in parallel).
    pub fn build(base: &VectorSet, metric: D, params: NsgParams, num_shards: usize, seed: u64) -> Self {
        let parts = random_partition(base, num_shards.max(1), seed);
        let built: Vec<(NsgIndex<D>, Vec<u32>)> = parts
            .into_par_iter()
            .map(|(shard_base, ids)| {
                let index = NsgIndex::build(Arc::new(shard_base), metric.clone(), params);
                (index, ids)
            })
            .collect();
        let mut shards = Vec::with_capacity(built.len());
        let mut global_ids = Vec::with_capacity(built.len());
        for (index, ids) in built {
            shards.push(index);
            global_ids.push(ids);
        }
        Self {
            shards,
            global_ids,
            dim: base.dim(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Access to the per-shard indices (used by the experiment binaries to
    /// report per-shard statistics).
    pub fn shards(&self) -> &[NsgIndex<D>] {
        &self.shards
    }

    /// Searches every shard and merges the per-shard answers into a global
    /// top-k, returning `(global_id, distance)` pairs best-first.
    ///
    /// This is the merge step the paper's distributed deployment performs
    /// after the per-machine searches return.
    pub fn search_merged(&self, query: &[f32], k: usize, quality: SearchQuality) -> Vec<(u32, f32)> {
        let mut merged: Vec<(u32, f32)> = self
            .shards
            .iter()
            .zip(&self.global_ids)
            .flat_map(|(shard, ids)| {
                let res = shard.search_with_stats(query, k, quality.effort.max(k));
                res.ids
                    .into_iter()
                    .zip(res.distances)
                    .map(|(local, dist)| (ids[local as usize], dist))
                    .collect::<Vec<_>>()
            })
            .collect();
        merged.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        merged.truncate(k);
        merged
    }
}

impl<D: Distance + Sync + Clone> AnnIndex for ShardedNsg<D> {
    fn search(&self, query: &[f32], k: usize, quality: SearchQuality) -> Vec<u32> {
        self.search_merged(query, k, quality).into_iter().map(|(id, _)| id).collect()
    }

    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(AnnIndex::memory_bytes).sum::<usize>()
            + self.global_ids.iter().map(|ids| ids.len() * 4).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "NSG-sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_knn::NnDescentParams;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::deep_like;

    fn params() -> NsgParams {
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        }
    }

    #[test]
    fn sharded_search_reaches_high_precision() {
        let base = deep_like(2400, 17);
        let queries = deep_like(30, 18);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 4, 5);
        assert_eq!(sharded.num_shards(), 4);
        let results: Vec<Vec<u32>> = (0..queries.len())
            .map(|q| sharded.search(queries.get(q), 10, SearchQuality::new(80)))
            .collect();
        let precision = mean_precision(&results, &gt, 10);
        assert!(precision > 0.85, "sharded NSG precision too low: {precision}");
    }

    #[test]
    fn merged_results_are_sorted_and_globally_indexed() {
        let base = deep_like(900, 21);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 3, 7);
        let merged = sharded.search_merged(base.get(5), 8, SearchQuality::new(60));
        assert_eq!(merged.len(), 8);
        assert!(merged.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(merged.iter().all(|&(id, _)| (id as usize) < base.len()));
        // The query is a base vector, so the best hit should be itself.
        assert_eq!(merged[0].0, 5);
        assert_eq!(merged[0].1, 0.0);
    }

    #[test]
    fn single_shard_matches_unsharded_behaviour() {
        let base = deep_like(700, 31);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 1, 9);
        assert_eq!(sharded.num_shards(), 1);
        let got = sharded.search(base.get(10), 5, SearchQuality::new(60));
        assert_eq!(got[0], 10);
    }

    #[test]
    fn more_shards_than_points_still_works() {
        let base = deep_like(6, 41);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 10, 1);
        let got = sharded.search(base.get(2), 3, SearchQuality::new(20));
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], 2);
    }

    #[test]
    fn memory_sums_over_shards() {
        let base = deep_like(400, 51);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 2, 2);
        let total: usize = sharded.shards().iter().map(|s| s.memory_bytes()).sum();
        assert!(sharded.memory_bytes() >= total);
        assert_eq!(sharded.name(), "NSG-sharded");
    }
}
