//! Sharded (partitioned) NSG search.
//!
//! Building one NSG over a very large collection is slower than building many
//! small ones (§4.2 shows 16 sequentially-built shard NSGs on DEEP100M finish
//! in roughly half the time of a single index), and the Taobao deployment of
//! §4.3 partitions two billion vectors over 32 machines, searches every
//! partition and merges the per-partition answers. [`ShardedNsg`] reproduces
//! that design in-process: the base set is split into `p` random shards, an
//! NSG is built per shard, and a query is answered by searching every shard
//! and merging the top-k — all inside one reusable [`SearchContext`], with
//! the merged answer expressed in the same [`Neighbor`] unit every other
//! index returns (global ids, exact distances). Each shard's graph is the
//! frozen CSR [`CompactGraph`](crate::graph::CompactGraph) its `NsgIndex`
//! froze at build time, so every per-shard search runs on the contiguous
//! query-time layout.

use crate::context::SearchContext;
use crate::index::{AnnIndex, SearchRequest};
use crate::neighbor::Neighbor;
use crate::nsg::{NsgIndex, NsgParams};
use crate::search::{exact_rerank, search_on_graph_into, SearchStats};
use nsg_vectors::distance::Distance;
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::sample::random_partition;
use nsg_vectors::store::VectorStore;
use nsg_vectors::VectorSet;
use rayon::prelude::*;
use std::sync::Arc;

/// A collection of per-shard NSG indices with global-id bookkeeping.
///
/// Generic over the per-shard traversal [`VectorStore`] exactly like
/// [`NsgIndex`]: shards are always built on `f32` rows and can be
/// re-frozen onto SQ8 codes with [`quantize_sq8`](Self::quantize_sq8) —
/// the partitioned analogue of the paper's §4.3 deployment under a memory
/// budget. Two-phase requests ([`SearchRequest::with_rerank`]) rerank
/// *within* each shard against its retained rows before the global merge.
pub struct ShardedNsg<D, S: VectorStore = VectorSet> {
    shards: Vec<NsgIndex<D, S>>,
    /// `global_ids[s][local]` is the id in the original base set of local node
    /// `local` of shard `s`.
    global_ids: Vec<Vec<u32>>,
    dim: usize,
}

/// A sharded NSG whose per-shard traversal runs on SQ8 codes.
pub type QuantizedShardedNsg<D> = ShardedNsg<D, Sq8VectorSet>;

impl<D: Distance + Sync + Clone> ShardedNsg<D> {
    /// Partitions `base` into `num_shards` random shards and builds one NSG
    /// per shard (shards are built in parallel).
    pub fn build(base: &VectorSet, metric: D, params: NsgParams, num_shards: usize, seed: u64) -> Self {
        let parts = random_partition(base, num_shards.max(1), seed);
        let built: Vec<(NsgIndex<D>, Vec<u32>)> = parts
            .into_par_iter()
            .map(|(shard_base, ids)| {
                let index = NsgIndex::build(Arc::new(shard_base), metric.clone(), params);
                (index, ids)
            })
            .collect();
        let mut shards = Vec::with_capacity(built.len());
        let mut global_ids = Vec::with_capacity(built.len());
        for (index, ids) in built {
            shards.push(index);
            global_ids.push(ids);
        }
        Self {
            shards,
            global_ids,
            dim: base.dim(),
        }
    }

    /// Re-freezes every shard onto SQ8 scalar-quantized codes (shard graphs,
    /// entry points and id maps are untouched; each shard retains its `f32`
    /// rows for the rerank phase).
    pub fn quantize_sq8(self) -> QuantizedShardedNsg<D> {
        ShardedNsg {
            shards: self.shards.into_iter().map(NsgIndex::quantize_sq8).collect(),
            global_ids: self.global_ids,
            dim: self.dim,
        }
    }
}

impl<D: Distance + Sync + Clone, S: VectorStore> ShardedNsg<D, S> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Access to the per-shard indices (used by the experiment binaries to
    /// report per-shard statistics).
    pub fn shards(&self) -> &[NsgIndex<D, S>] {
        &self.shards
    }

    /// Searches every shard and merges the per-shard answers into a global
    /// top-k (allocating convenience over [`AnnIndex::search_into`]).
    ///
    /// This is the merge step the paper's distributed deployment performs
    /// after the per-machine searches return.
    pub fn search_merged(&self, query: &[f32], request: &SearchRequest) -> Vec<Neighbor> {
        self.search(query, request)
    }
}

impl<D: Distance + Sync + Clone, S: VectorStore> AnnIndex for ShardedNsg<D, S> {
    fn new_context(&self) -> SearchContext {
        let largest = self.shards.iter().map(|s| s.base().len()).max().unwrap_or(0);
        SearchContext::for_points(largest)
    }

    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        query: &[f32],
    ) -> &'a [Neighbor] {
        let params = request.traversal_params();
        let mut stats = SearchStats::default();
        ctx.scored.clear();
        for (shard, ids) in self.shards.iter().zip(&self.global_ids) {
            search_on_graph_into(
                shard.graph(),
                shard.store().as_ref(),
                query,
                &[shard.navigating_node()],
                params,
                shard.metric(), // lint:allow(dyn-distance): NsgIndex accessor returning the concrete DistanceKind, not a trait object
                ctx,
            );
            // Two-phase: rescore this shard's candidates against its retained
            // rows (in place on `ctx.results` — `ctx.scored` keeps the global
            // merge) before remapping to global ids.
            if request.rerank_factor() > 1 {
                exact_rerank(ctx, shard.base(), shard.metric(), query, request.k); // lint:allow(dyn-distance): NsgIndex accessor returning the concrete DistanceKind, not a trait object
            }
            stats.accumulate(ctx.stats);
            // Remap the shard-local answer to global ids into the merge
            // buffer (disjoint field borrows; no allocation once warm).
            for i in 0..ctx.results.len() {
                let nb = ctx.results[i];
                ctx.scored.push(Neighbor::new(ids[nb.id as usize], nb.dist));
            }
        }
        ctx.scored.sort_unstable_by(Neighbor::ordering);
        ctx.scored.truncate(request.k);
        std::mem::swap(&mut ctx.results, &mut ctx.scored);
        ctx.stats = stats;
        &ctx.results
    }

    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(AnnIndex::memory_bytes).sum::<usize>()
            + self.global_ids.iter().map(|ids| ids.len() * 4).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "NSG-sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor;
    use nsg_knn::NnDescentParams;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::metrics::mean_precision;
    use nsg_vectors::synthetic::deep_like;

    fn params() -> NsgParams {
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        }
    }

    #[test]
    fn sharded_search_reaches_high_precision() {
        let base = deep_like(2400, 17);
        let queries = deep_like(30, 18);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 4, 5);
        assert_eq!(sharded.num_shards(), 4);
        let results: Vec<Vec<u32>> = sharded
            .search_batch(&queries, &SearchRequest::new(10).with_effort(80))
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let precision = mean_precision(&results, &gt, 10);
        assert!(precision > 0.85, "sharded NSG precision too low: {precision}");
    }

    #[test]
    fn merged_results_are_sorted_and_globally_indexed() {
        let base = deep_like(900, 21);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 3, 7);
        let merged = sharded.search_merged(base.get(5), &SearchRequest::new(8).with_effort(60));
        assert_eq!(merged.len(), 8);
        assert!(merged.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(merged.iter().all(|nb| (nb.id as usize) < base.len()));
        // The query is a base vector, so the best hit should be itself.
        assert_eq!(merged[0].id, 5);
        assert_eq!(merged[0].dist, 0.0);
    }

    #[test]
    fn context_reuse_accumulates_stats_across_shards() {
        let base = deep_like(800, 23);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 4, 2);
        let mut ctx = sharded.new_context();
        let request = SearchRequest::new(5).with_effort(40).with_stats();
        let first = sharded.search_into(&mut ctx, &request, base.get(1)).to_vec();
        let stats = ctx.stats();
        assert!(stats.hops >= 4, "each probed shard contributes hops");
        assert!(stats.distance_computations > 0);
        // A second query through the same context answers identically to a
        // fresh one.
        let again = sharded.search(base.get(1), &request);
        assert_eq!(first, again);
    }

    #[test]
    fn single_shard_matches_unsharded_behaviour() {
        let base = deep_like(700, 31);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 1, 9);
        assert_eq!(sharded.num_shards(), 1);
        let got = sharded.search(base.get(10), &SearchRequest::new(5).with_effort(60));
        assert_eq!(got[0].id, 10);
    }

    #[test]
    fn more_shards_than_points_still_works() {
        let base = deep_like(6, 41);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 10, 1);
        let got = sharded.search(base.get(2), &SearchRequest::new(3).with_effort(20));
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].id, 2);
    }

    #[test]
    fn quantized_shards_with_rerank_match_flat_precision() {
        let base = deep_like(1800, 61);
        let queries = deep_like(25, 62);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let flat = ShardedNsg::build(&base, SquaredEuclidean, params(), 3, 4);
        let flat_request = SearchRequest::new(10).with_effort(80);
        let flat_results: Vec<Vec<u32>> = flat
            .search_batch(&queries, &flat_request)
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let flat_precision = mean_precision(&flat_results, &gt, 10);

        let quantized = flat.quantize_sq8();
        assert_eq!(quantized.num_shards(), 3);
        let request = flat_request.with_rerank(4);
        let results: Vec<Vec<u32>> = quantized
            .search_batch(&queries, &request)
            .iter()
            .map(|r| neighbor::ids(r))
            .collect();
        let precision = mean_precision(&results, &gt, 10);
        assert!(
            precision >= flat_precision * 0.99,
            "quantized sharded precision {precision} fell below 99% of flat {flat_precision}"
        );
        // Reranked merge keeps exact distances and global ids.
        let merged = quantized.search(base.get(5), &request);
        assert_eq!(merged[0].id, 5);
        assert_eq!(merged[0].dist, 0.0);
    }

    #[test]
    fn memory_sums_over_shards() {
        let base = deep_like(400, 51);
        let sharded = ShardedNsg::build(&base, SquaredEuclidean, params(), 2, 2);
        let total: usize = sharded.shards().iter().map(|s| s.memory_bytes()).sum();
        assert!(sharded.memory_bytes() >= total);
        assert_eq!(sharded.name(), "NSG-sharded");
    }
}
