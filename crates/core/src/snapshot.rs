//! Aligned zero-copy snapshots (the NSG2 format).
//!
//! The streaming NSG1/NSQ8 formats of [`crate::serialize`] materialize every
//! arena through a decode — O(index) copies on each load. A snapshot instead
//! lays the frozen query-time arenas out *exactly as the index reads them*
//! (CSR offsets, edge arena, flat `f32` rows, SQ8 payload), each section
//! padded to a 64-byte boundary and described by a section table
//! (see [`crate::format`] for the byte-level layout). Opening one is O(1) in
//! the index size:
//!
//! 1. [`MappedRegion::open`] maps the file (`mmap(2)`, or the aligned-copy
//!    fallback on platforms without it),
//! 2. the section *table* — not the payloads — is validated at the same
//!    bounded-decode bar as the streaming formats: every offset/length is
//!    checked against the bytes actually present, alignments are enforced,
//!    sections may not overlap, and the claimed counts must agree across
//!    sections **before** a single payload byte is touched,
//! 3. borrowed [`CompactGraph`] / [`VectorSet`] / [`Sq8VectorSet`] views are
//!    constructed over the mapped arenas ([`nsg_vectors::Arena`] makes
//!    borrowed and owned the same type, so the whole query path is unchanged
//!    and byte-identical).
//!
//! The mapped region is ref-counted: every borrowed arena holds the `Arc`,
//! so a hot-swapped-out snapshot stays alive until the last in-flight query
//! drops its index handle, then unmaps.
//!
//! Table validation cannot prove *contents* (e.g. CSR monotonicity) without
//! an O(n + m) scan, which would defeat the O(1) open. [`Snapshot::verify`]
//! provides that deep check on demand; skipping it is safe in the Rust sense
//! (garbage values can only produce wrong results or a clean slice-bounds
//! panic, never undefined behavior).

use crate::format::{
    metric_code, metric_from_code, FLAG_HAS_SQ8, GRAPH_MAGIC, HEADER_LEN, META_LEN,
    SECTION_ALIGN, SECTION_ENTRY_LEN, SEC_GRAPH_OFFSETS, SEC_GRAPH_TARGETS, SEC_META, SEC_SQ8,
    SEC_VECTORS, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SQ8_MAGIC,
};
use crate::graph::CompactGraph;
use crate::index::AnnIndex;
use crate::nsg::NsgIndex;
use crate::nsg::NsgParams;
use crate::serialize::SerializeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nsg_vectors::quant::Sq8VectorSet;
use nsg_vectors::{
    Arena, DistanceKind, Euclidean, InnerProduct, MappedRegion, SquaredEuclidean, VectorSet,
};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Rounds `len` up to the next multiple of [`SECTION_ALIGN`].
fn align_up(len: usize) -> usize {
    len.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Lossless `usize` → `u64` widening (`usize` is at most 64 bits on every
/// supported host; the saturation is unreachable and exists only to keep the
/// conversion infallible without a cast).
fn wide(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a snapshot image from its parts. `sq8` is optional; the flat
/// `base` rows are always present (the quantized query path needs them for
/// exact reranking).
///
/// Cross-checks the same invariants the streaming encoder enforces: the
/// graph, base set and store must agree on `n`, counts must fit the `u32`
/// on-disk fields, and the navigating node must be in range.
pub fn snapshot_to_bytes(
    graph: &CompactGraph,
    navigating_node: u32,
    base: &VectorSet,
    metric: DistanceKind,
    sq8: Option<&Sq8VectorSet>,
) -> Result<Bytes, SerializeError> {
    let n = graph.num_nodes();
    if n != base.len() {
        return Err(SerializeError::Corrupt(format!(
            "graph has {n} nodes but the base set holds {} vectors",
            base.len()
        )));
    }
    if n > 0 && navigating_node as usize >= n {
        return Err(SerializeError::Corrupt(format!(
            "navigating node {navigating_node} out of range for {n} nodes"
        )));
    }
    let n32 = u32::try_from(n)
        .map_err(|_| SerializeError::TooLarge(format!("{n} nodes exceed u32")))?;
    let dim32 = u32::try_from(base.dim())
        .map_err(|_| SerializeError::TooLarge(format!("dimension {} exceeds u32", base.dim())))?;
    let edges = graph.num_edges();
    if u32::try_from(edges).is_err() {
        return Err(SerializeError::TooLarge(format!("{edges} total edges exceed u32")));
    }
    let sq8_bytes = match sq8 {
        Some(store) => {
            if store.len() != n {
                return Err(SerializeError::Corrupt(format!(
                    "graph has {n} nodes but the SQ8 store holds {} vectors",
                    store.len()
                )));
            }
            if store.dim() != base.dim() {
                return Err(SerializeError::Corrupt(format!(
                    "base dimension {} but SQ8 dimension {}",
                    base.dim(),
                    store.dim()
                )));
            }
            Some(crate::serialize::sq8_to_bytes(store)?)
        }
        None => None,
    };

    // META payload: the NSG1 header byte-for-byte, then the snapshot fields.
    let mut meta = BytesMut::with_capacity(META_LEN);
    meta.put_u32_le(GRAPH_MAGIC);
    meta.put_u32_le(navigating_node);
    meta.put_u32_le(n32);
    meta.put_u32_le(dim32);
    meta.put_u32_le(metric_code(metric));
    meta.put_u32_le(if sq8_bytes.is_some() { FLAG_HAS_SQ8 } else { 0 });
    meta.put_u64_le(wide(edges));
    meta.put_u32_le(0); // reserved

    // Section order is also file order. (tag, alignment, payload length)
    let mut sections: Vec<(u32, u32, usize)> = vec![
        (SEC_META, 4, META_LEN),
        (SEC_GRAPH_OFFSETS, 4, (n + 1) * 4),
        (SEC_GRAPH_TARGETS, 4, edges * 4),
        (SEC_VECTORS, 4, base.as_flat().len() * 4),
    ];
    if let Some(payload) = &sq8_bytes {
        sections.push((SEC_SQ8, 4, payload.len()));
    }

    let table_end = SNAPSHOT_HEADER_LEN + sections.len() * SECTION_ENTRY_LEN;
    let mut offset = align_up(table_end);
    let mut placed: Vec<(u32, u32, usize, usize)> = Vec::with_capacity(sections.len());
    for &(tag, align, len) in &sections {
        placed.push((tag, align, offset, len));
        offset = align_up(offset + len);
    }
    let total = offset;

    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32_le(SNAPSHOT_MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);
    // At most five sections exist, so the narrowing cannot truncate.
    buf.put_u32_le(u32::try_from(sections.len()).unwrap_or(u32::MAX));
    buf.put_u32_le(0); // reserved
    for &(tag, align, off, len) in &placed {
        buf.put_u32_le(tag);
        buf.put_u32_le(align);
        buf.put_u64_le(wide(off));
        buf.put_u64_le(wide(len));
        buf.put_u64_le(0); // reserved
    }
    let pad = |buf: &mut BytesMut, upto: usize| {
        while buf.len() < upto {
            buf.put_u8(0);
        }
    };
    for &(tag, _align, off, _len) in &placed {
        pad(&mut buf, off);
        match tag {
            t if t == SEC_META => buf.put_slice(&meta),
            t if t == SEC_GRAPH_OFFSETS => {
                for &o in graph.csr_offsets() {
                    buf.put_u32_le(o);
                }
            }
            t if t == SEC_GRAPH_TARGETS => {
                for &u in graph.csr_targets() {
                    buf.put_u32_le(u);
                }
            }
            t if t == SEC_VECTORS => {
                for &x in base.as_flat() {
                    buf.put_f32_le(x);
                }
            }
            _ => {
                if let Some(payload) = &sq8_bytes {
                    buf.put_slice(payload);
                }
            }
        }
    }
    pad(&mut buf, total);
    Ok(buf.freeze())
}

/// Writes a flat index's snapshot to `path`.
pub fn write_snapshot<P, D>(path: P, index: &NsgIndex<D>) -> Result<(), SerializeError>
where
    P: AsRef<Path>,
    D: nsg_vectors::Distance + Sync,
{
    let bytes = snapshot_to_bytes(
        index.graph(),
        index.navigating_node(),
        index.base(),
        index.metric_kind(),
        None,
    )?;
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Writes a quantized index's snapshot (SQ8 store + retained `f32` rows for
/// exact reranking) to `path`.
pub fn write_quantized_snapshot<P, D>(
    path: P,
    index: &NsgIndex<D, Sq8VectorSet>,
) -> Result<(), SerializeError>
where
    P: AsRef<Path>,
    D: nsg_vectors::Distance + Sync,
{
    let bytes = snapshot_to_bytes(
        index.graph(),
        index.navigating_node(),
        index.base(),
        index.metric_kind(),
        Some(index.store()),
    )?;
    let mut file = File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One parsed section-table entry (offsets already validated to sit inside
/// the region).
#[derive(Clone, Copy)]
struct Section {
    tag: u32,
    offset: usize,
    len: usize,
}

/// An open NSG2 snapshot: the mapped region plus borrowed views of every
/// frozen query-time structure. All views share the region's refcount; the
/// file stays mapped until the last of them (or any index built from them)
/// drops.
pub struct Snapshot {
    region: Arc<MappedRegion>,
    graph: CompactGraph,
    navigating_node: u32,
    vectors: VectorSet,
    sq8: Option<Sq8VectorSet>,
    metric: DistanceKind,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("nodes", &self.graph.num_nodes())
            .field("dim", &self.vectors.dim())
            .field("quantized", &self.sq8.is_some())
            .field("mapped", &self.region.is_mapped())
            .finish()
    }
}

impl Snapshot {
    /// Maps `path` and validates the section table — O(sections + dim), not
    /// O(index). See the module docs for what is and is not checked.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Snapshot, SerializeError> {
        Snapshot::from_region(MappedRegion::open(path.as_ref())?)
    }

    /// Opens through the portable aligned-copy fallback unconditionally
    /// (O(file) copy at open; the borrowed views behave identically).
    pub fn open_unmapped<P: AsRef<Path>>(path: P) -> Result<Snapshot, SerializeError> {
        Snapshot::from_region(MappedRegion::open_unmapped(path.as_ref())?)
    }

    /// Opens an in-memory snapshot image (copied once into an aligned
    /// region). Used by tests and by callers that just serialized.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SerializeError> {
        Snapshot::from_region(MappedRegion::from_bytes(bytes))
    }

    fn from_region(region: Arc<MappedRegion>) -> Result<Snapshot, SerializeError> {
        // The arenas are reinterpreted in place, so the stored little-endian
        // words must be the host representation.
        #[cfg(not(target_endian = "little"))]
        return Err(SerializeError::Corrupt(
            "NSG2 snapshots require a little-endian host".into(),
        ));
        #[cfg(target_endian = "little")]
        {
            let sections = parse_section_table(region.bytes())?;
            build_views(region, &sections)
        }
    }

    /// The borrowed frozen graph.
    pub fn graph(&self) -> &CompactGraph {
        &self.graph
    }

    /// The navigating node recorded in META.
    pub fn navigating_node(&self) -> u32 {
        self.navigating_node
    }

    /// The borrowed flat base vectors.
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    /// The borrowed SQ8 store, if the snapshot carries one.
    pub fn sq8(&self) -> Option<&Sq8VectorSet> {
        self.sq8.as_ref()
    }

    /// The metric the index was built under.
    pub fn metric_kind(&self) -> DistanceKind {
        self.metric
    }

    /// Whether the backing region is a live `mmap(2)` mapping.
    pub fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }

    /// The backing region (for refcount assertions in tests).
    pub fn region(&self) -> &Arc<MappedRegion> {
        &self.region
    }

    /// Deep O(n + m) content validation the O(1) open intentionally skips:
    /// CSR offsets monotone, every edge target in range. Operators loading
    /// snapshots from untrusted storage call this once before serving.
    pub fn verify(&self) -> Result<(), SerializeError> {
        self.graph.validate_csr().map_err(SerializeError::Corrupt)
    }

    /// Builds a serving index over the borrowed views — O(1) in the index
    /// size; the returned index keeps the mapped region alive. Quantized
    /// snapshots produce the two-phase (SQ8 traversal + exact rerank) index,
    /// flat ones the plain NSG. `params` only matter if the index is later
    /// rebuilt; [`NsgParams::default`] is fine for serving.
    pub fn into_index(self, params: NsgParams) -> Arc<dyn AnnIndex> {
        let base = Arc::new(self.vectors);
        let graph = self.graph;
        let nav = self.navigating_node;
        match self.sq8 {
            Some(store) => {
                let store = Arc::new(store);
                match self.metric {
                    DistanceKind::SquaredEuclidean => Arc::new(NsgIndex::from_store_parts(
                        store, base, SquaredEuclidean, graph, nav, params,
                    )),
                    DistanceKind::Euclidean => Arc::new(NsgIndex::from_store_parts(
                        store, base, Euclidean, graph, nav, params,
                    )),
                    DistanceKind::InnerProduct => Arc::new(NsgIndex::from_store_parts(
                        store, base, InnerProduct, graph, nav, params,
                    )),
                }
            }
            None => match self.metric {
                DistanceKind::SquaredEuclidean => Arc::new(NsgIndex::from_store_parts(
                    Arc::clone(&base), base, SquaredEuclidean, graph, nav, params,
                )),
                DistanceKind::Euclidean => Arc::new(NsgIndex::from_store_parts(
                    Arc::clone(&base), base, Euclidean, graph, nav, params,
                )),
                DistanceKind::InnerProduct => Arc::new(NsgIndex::from_store_parts(
                    Arc::clone(&base), base, InnerProduct, graph, nav, params,
                )),
            },
        }
    }
}

/// Validates the fixed header and section table at the bounded-decode bar:
/// every count and range is checked against the bytes actually present
/// before anything is sliced, and sections may not overlap the header,
/// the table or each other.
fn parse_section_table(bytes: &[u8]) -> Result<Vec<Section>, SerializeError> {
    let total = bytes.len();
    if total < SNAPSHOT_HEADER_LEN {
        return Err(SerializeError::Corrupt("truncated snapshot header".into()));
    }
    let mut cur = bytes;
    let magic = cur.get_u32_le();
    if magic != SNAPSHOT_MAGIC {
        return Err(SerializeError::Corrupt(format!("bad snapshot magic 0x{magic:08x}")));
    }
    let version = cur.get_u32_le();
    if version != SNAPSHOT_VERSION {
        return Err(SerializeError::Corrupt(format!("unsupported snapshot version {version}")));
    }
    let count = cur.get_u32_le() as usize;
    let _reserved = cur.get_u32_le();
    // A table of `count` entries needs `count * 32` bytes; bound the claim by
    // the bytes actually present before iterating (the PR-4 bar).
    if count > cur.remaining() / SECTION_ENTRY_LEN {
        return Err(SerializeError::Corrupt(format!(
            "header claims {count} sections but only {} bytes remain",
            cur.remaining()
        )));
    }
    let table_end = SNAPSHOT_HEADER_LEN + count * SECTION_ENTRY_LEN;
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let tag = cur.get_u32_le();
        let align = cur.get_u32_le() as usize;
        let offset = cur.get_u64_le();
        let len = cur.get_u64_le();
        let _reserved = cur.get_u64_le();
        let offset = usize::try_from(offset)
            .map_err(|_| SerializeError::Corrupt(format!("section {i} offset exceeds usize")))?;
        let len = usize::try_from(len)
            .map_err(|_| SerializeError::Corrupt(format!("section {i} length exceeds usize")))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= total)
            .ok_or_else(|| {
                SerializeError::Corrupt(format!(
                    "section {i} [{offset}, +{len}) exceeds the {total}-byte file"
                ))
            })?;
        if offset < table_end {
            return Err(SerializeError::Corrupt(format!(
                "section {i} at offset {offset} overlaps the section table (ends at {table_end})"
            )));
        }
        if !offset.is_multiple_of(SECTION_ALIGN) {
            return Err(SerializeError::Corrupt(format!(
                "section {i} offset {offset} is not {SECTION_ALIGN}-byte aligned"
            )));
        }
        if align == 0 || !offset.is_multiple_of(align) {
            return Err(SerializeError::Corrupt(format!(
                "section {i} declares alignment {align} its offset {offset} does not satisfy"
            )));
        }
        if sections.iter().any(|s: &Section| s.tag == tag) {
            return Err(SerializeError::Corrupt(format!("duplicate section tag 0x{tag:08x}")));
        }
        // Overlap: with so few sections the quadratic check is O(1).
        for s in &sections {
            if offset < s.offset + s.len && s.offset < end {
                return Err(SerializeError::Corrupt(format!(
                    "section {i} [{offset}, {end}) overlaps section at [{}, {})",
                    s.offset,
                    s.offset + s.len
                )));
            }
        }
        sections.push(Section { tag, offset, len });
    }
    Ok(sections)
}

fn find(sections: &[Section], tag: u32, name: &str) -> Result<Section, SerializeError> {
    sections
        .iter()
        .find(|s| s.tag == tag)
        .copied()
        .ok_or_else(|| SerializeError::Corrupt(format!("missing {name} section")))
}

/// Cross-checks META's counts against every section length, then borrows the
/// typed arenas. O(dim) (the SQ8 parameter scan) — never O(n) or O(m).
fn build_views(
    region: Arc<MappedRegion>,
    sections: &[Section],
) -> Result<Snapshot, SerializeError> {
    let bytes = region.bytes();
    let meta = find(sections, SEC_META, "META")?;
    if meta.len != META_LEN {
        return Err(SerializeError::Corrupt(format!(
            "META section is {} bytes, expected {META_LEN}",
            meta.len
        )));
    }
    let mut cur = &bytes[meta.offset..meta.offset + META_LEN];
    let graph_magic = cur.get_u32_le();
    if graph_magic != GRAPH_MAGIC {
        return Err(SerializeError::Corrupt(format!(
            "META does not embed an NSG1 header (magic 0x{graph_magic:08x})"
        )));
    }
    let navigating_node = cur.get_u32_le();
    let n32 = cur.get_u32_le();
    let dim32 = cur.get_u32_le();
    let metric_code_raw = cur.get_u32_le();
    let flags = cur.get_u32_le();
    let edges64 = cur.get_u64_le();
    let n = n32 as usize;
    let dim = dim32 as usize;
    if dim == 0 {
        return Err(SerializeError::Corrupt("snapshot dimension is zero".into()));
    }
    if n > 0 && navigating_node as usize >= n {
        return Err(SerializeError::Corrupt("navigating node out of range".into()));
    }
    let metric = metric_from_code(metric_code_raw)
        .ok_or_else(|| SerializeError::Corrupt(format!("unknown metric code {metric_code_raw}")))?;
    let edges = usize::try_from(edges64)
        .map_err(|_| SerializeError::Corrupt("edge count exceeds usize".into()))?;
    if u32::try_from(edges).is_err() {
        return Err(SerializeError::Corrupt(format!("{edges} edges exceed u32 CSR offsets")));
    }

    // Section lengths must equal exactly what META's counts imply. u64 math
    // so the products cannot wrap on 32-bit hosts.
    let want_offsets = (u64::from(n32) + 1) * 4;
    let want_targets = edges64 * 4;
    let want_vectors = u64::from(n32) * u64::from(dim32) * 4;
    let goff = find(sections, SEC_GRAPH_OFFSETS, "GOFF")?;
    if wide(goff.len) != want_offsets {
        return Err(SerializeError::Corrupt(format!(
            "GOFF holds {} bytes but {n} nodes need {want_offsets}",
            goff.len
        )));
    }
    let gtgt = find(sections, SEC_GRAPH_TARGETS, "GTGT")?;
    if wide(gtgt.len) != want_targets {
        return Err(SerializeError::Corrupt(format!(
            "GTGT holds {} bytes but META claims {edges} edges ({want_targets} bytes)",
            gtgt.len
        )));
    }
    let vecs = find(sections, SEC_VECTORS, "VECS")?;
    if wide(vecs.len) != want_vectors {
        return Err(SerializeError::Corrupt(format!(
            "VECS holds {} bytes but {n} × {dim} f32 rows need {want_vectors}",
            vecs.len
        )));
    }

    let corrupt_arena = |what: &str, e: nsg_vectors::ArenaError| {
        SerializeError::Corrupt(format!("cannot borrow {what}: {e}"))
    };
    let offsets: Arena<u32> = Arena::borrow_from_region(&region, goff.offset, n + 1)
        .map_err(|e| corrupt_arena("CSR offsets", e))?;
    let targets: Arena<u32> = Arena::borrow_from_region(&region, gtgt.offset, edges)
        .map_err(|e| corrupt_arena("CSR targets", e))?;
    let flat: Arena<f32> = Arena::borrow_from_region(&region, vecs.offset, n * dim)
        .map_err(|e| corrupt_arena("base vectors", e))?;
    let graph = CompactGraph::from_arena_parts(offsets, targets).map_err(SerializeError::Corrupt)?;
    let vectors = VectorSet::from_arena(dim, flat);

    let has_sq8_flag = flags & FLAG_HAS_SQ8 != 0;
    let sq8_section = sections.iter().find(|s| s.tag == SEC_SQ8);
    if has_sq8_flag != sq8_section.is_some() {
        return Err(SerializeError::Corrupt(
            "META's SQ8 flag disagrees with the section table".into(),
        ));
    }
    let sq8 = match sq8_section {
        None => None,
        Some(&sec) => Some(borrow_sq8(&region, sec, n32, dim32)?),
    };

    Ok(Snapshot { region, graph, navigating_node, vectors, sq8, metric })
}

/// Validates the embedded NSQ8 payload's header against META's counts and
/// borrows its three arenas in place. Mirrors `decode_sq8`'s hardening
/// (non-finite or negative affine parameters are refused) without copying
/// the code arena.
fn borrow_sq8(
    region: &Arc<MappedRegion>,
    sec: Section,
    n32: u32,
    dim32: u32,
) -> Result<Sq8VectorSet, SerializeError> {
    let bytes = region.bytes();
    let n = n32 as usize;
    let dim = dim32 as usize;
    let want = wide(HEADER_LEN) + u64::from(dim32) * 8 + u64::from(n32) * u64::from(dim32);
    if wide(sec.len) != want {
        return Err(SerializeError::Corrupt(format!(
            "NSQ8 section holds {} bytes but {n} × {dim} codes need {want}",
            sec.len
        )));
    }
    let mut cur = &bytes[sec.offset..sec.offset + HEADER_LEN];
    let magic = cur.get_u32_le();
    if magic != SQ8_MAGIC {
        return Err(SerializeError::Corrupt(format!("bad SQ8 magic 0x{magic:08x}")));
    }
    let sq8_dim = cur.get_u32_le();
    let sq8_n = cur.get_u32_le();
    if sq8_dim != dim32 || sq8_n != n32 {
        return Err(SerializeError::Corrupt(format!(
            "NSQ8 header ({sq8_n} × {sq8_dim}) disagrees with META ({n32} × {dim32})"
        )));
    }
    let corrupt_arena = |what: &str, e: nsg_vectors::ArenaError| {
        SerializeError::Corrupt(format!("cannot borrow {what}: {e}"))
    };
    let min: Arena<f32> = Arena::borrow_from_region(region, sec.offset + HEADER_LEN, dim)
        .map_err(|e| corrupt_arena("SQ8 min parameters", e))?;
    let scale: Arena<f32> =
        Arena::borrow_from_region(region, sec.offset + HEADER_LEN + dim * 4, dim)
            .map_err(|e| corrupt_arena("SQ8 scale parameters", e))?;
    let codes: Arena<u8> =
        Arena::borrow_from_region(region, sec.offset + HEADER_LEN + dim * 8, n * dim)
            .map_err(|e| corrupt_arena("SQ8 codes", e))?;
    for (i, &lo) in min.as_slice().iter().enumerate() {
        if !lo.is_finite() {
            return Err(SerializeError::Corrupt(format!("non-finite min at dimension {i}")));
        }
    }
    for (i, &s) in scale.as_slice().iter().enumerate() {
        if !s.is_finite() || s < 0.0 {
            return Err(SerializeError::Corrupt(format!("invalid scale {s} at dimension {i}")));
        }
    }
    Sq8VectorSet::try_from_arenas(dim, min, scale, codes)
        .map_err(|e| SerializeError::Corrupt(format!("SQ8 parts rejected: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirectedGraph;
    use nsg_vectors::synthetic::uniform;

    fn toy_parts(n: usize, dim: usize) -> (CompactGraph, VectorSet) {
        let mut g = DirectedGraph::new(n);
        for v in 0..n as u32 {
            let next = (v + 1) % n as u32;
            g.add_edge(v, next);
            g.add_edge(next, v);
        }
        (g.freeze(), uniform(n, dim, 42))
    }

    fn toy_snapshot_bytes(n: usize, dim: usize, quantized: bool) -> Bytes {
        let (graph, base) = toy_parts(n, dim);
        let sq8 = quantized.then(|| Sq8VectorSet::encode(&base));
        snapshot_to_bytes(&graph, 0, &base, DistanceKind::SquaredEuclidean, sq8.as_ref()).unwrap()
    }

    #[test]
    fn snapshot_round_trips_flat_views() {
        let (graph, base) = toy_parts(12, 5);
        let bytes =
            snapshot_to_bytes(&graph, 3, &base, DistanceKind::Euclidean, None).unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph(), &graph);
        assert_eq!(snap.navigating_node(), 3);
        assert_eq!(snap.vectors(), &base);
        assert_eq!(snap.metric_kind(), DistanceKind::Euclidean);
        assert!(snap.sq8().is_none());
        assert!(snap.graph().is_borrowed());
        assert!(snap.vectors().is_borrowed());
        snap.verify().unwrap();
    }

    #[test]
    fn snapshot_round_trips_quantized_views() {
        let (graph, base) = toy_parts(20, 7);
        let store = Sq8VectorSet::encode(&base);
        let bytes = snapshot_to_bytes(
            &graph,
            5,
            &base,
            DistanceKind::SquaredEuclidean,
            Some(&store),
        )
        .unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.sq8().unwrap(), &store);
        assert!(snap.sq8().unwrap().is_borrowed());
        snap.verify().unwrap();
        // The embedded NSQ8 payload is byte-for-byte the streaming encoding.
        let legacy = crate::serialize::sq8_to_bytes(&store).unwrap();
        let hay = bytes.to_vec();
        assert!(
            hay.windows(legacy.len()).any(|w| w == &legacy[..]),
            "NSQ8 payload not embedded byte-for-byte"
        );
    }

    #[test]
    fn sections_are_aligned_and_padded() {
        let bytes = toy_snapshot_bytes(9, 3, true);
        let sections = parse_section_table(&bytes).unwrap();
        assert_eq!(sections.len(), 5);
        for s in &sections {
            assert_eq!(s.offset % SECTION_ALIGN, 0, "section 0x{:08x} misaligned", s.tag);
        }
    }

    #[test]
    fn writer_rejects_inconsistent_parts() {
        let (graph, base) = toy_parts(8, 4);
        let other = uniform(5, 4, 1);
        assert!(matches!(
            snapshot_to_bytes(&graph, 0, &other, DistanceKind::SquaredEuclidean, None),
            Err(SerializeError::Corrupt(_))
        ));
        assert!(matches!(
            snapshot_to_bytes(&graph, 99, &base, DistanceKind::SquaredEuclidean, None),
            Err(SerializeError::Corrupt(_))
        ));
        let small = Sq8VectorSet::encode(&other);
        assert!(matches!(
            snapshot_to_bytes(&graph, 0, &base, DistanceKind::SquaredEuclidean, Some(&small)),
            Err(SerializeError::Corrupt(_))
        ));
    }

    #[test]
    fn open_validates_at_the_bounded_decode_bar() {
        let good = toy_snapshot_bytes(10, 4, true).to_vec();

        // Bad magic / version.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Overstated section count must be bounded by the bytes present.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Snapshot::from_bytes(&bad).unwrap_err();
        assert!(
            matches!(&err, SerializeError::Corrupt(msg) if msg.contains("claims")),
            "expected bounded section-count rejection, got {err:?}"
        );

        // Truncations at every boundary class: header, table, payloads.
        // (Cutting the zero padding *after* the last payload is legitimately
        // still a valid file, so cut inside the last section instead.)
        let last_payload_end = parse_section_table(&good)
            .unwrap()
            .iter()
            .map(|s| s.offset + s.len)
            .max()
            .unwrap();
        for cut in [0, 3, SNAPSHOT_HEADER_LEN - 1, SNAPSHOT_HEADER_LEN + 7, 200, last_payload_end - 1]
        {
            assert!(
                Snapshot::from_bytes(&good[..cut]).is_err(),
                "truncation at {cut} bytes not detected"
            );
        }
    }

    #[test]
    fn open_rejects_corrupt_section_tables() {
        let good = toy_snapshot_bytes(10, 4, false).to_vec();
        let entry = SNAPSHOT_HEADER_LEN; // first table entry (META)

        // Section pushed past EOF.
        let mut bad = good.clone();
        bad[entry + 8..entry + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Misaligned section offset.
        let mut bad = good.clone();
        let off = u64::from_le_bytes(bad[entry + 8..entry + 16].try_into().unwrap());
        bad[entry + 8..entry + 16].copy_from_slice(&(off + 4).to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Duplicate tag: stamp entry 1's tag over entry 0's.
        let mut bad = good.clone();
        let tag1 = bad[entry + SECTION_ENTRY_LEN..entry + SECTION_ENTRY_LEN + 4].to_vec();
        bad[entry..entry + 4].copy_from_slice(&tag1);
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Overlapping sections: point GOFF's offset at VECS's.
        let mut bad = good.clone();
        let e3 = entry + 3 * SECTION_ENTRY_LEN + 8;
        let vec_off = bad[e3..e3 + 8].to_vec();
        bad[entry + SECTION_ENTRY_LEN + 8..entry + SECTION_ENTRY_LEN + 16]
            .copy_from_slice(&vec_off);
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let good = toy_snapshot_bytes(10, 4, true).to_vec();
        let sections = parse_section_table(&good).unwrap();
        let meta = sections.iter().find(|s| s.tag == SEC_META).unwrap().offset;

        // Navigating node out of range.
        let mut bad = good.clone();
        bad[meta + 4..meta + 8].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Zero dimension.
        let mut bad = good.clone();
        bad[meta + 12..meta + 16].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Unknown metric code.
        let mut bad = good.clone();
        bad[meta + 16..meta + 20].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // Node count inflated: GOFF's length no longer matches.
        let mut bad = good.clone();
        bad[meta + 8..meta + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));

        // SQ8 flag cleared while the section is still present.
        let mut bad = good.clone();
        bad[meta + 20..meta + 24].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn open_rejects_poisoned_sq8_parameters() {
        let good = toy_snapshot_bytes(6, 4, true).to_vec();
        let sections = parse_section_table(&good).unwrap();
        let sq8 = sections.iter().find(|s| s.tag == SEC_SQ8).unwrap().offset;
        let scale0 = sq8 + HEADER_LEN + 4 * 4;
        let mut bad = good.clone();
        bad[scale0..scale0 + 4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(matches!(Snapshot::from_bytes(&bad), Err(SerializeError::Corrupt(_))));
    }

    #[test]
    fn verify_catches_content_corruption_open_skips() {
        let good = toy_snapshot_bytes(10, 4, false).to_vec();
        let sections = parse_section_table(&good).unwrap();
        let goff = sections.iter().find(|s| s.tag == SEC_GRAPH_OFFSETS).unwrap().offset;
        // Swap two interior offsets so the CSR is non-monotone but the ends
        // (offset[0] == 0, offset[n] == m) still line up — table validation
        // cannot see this, deep verify must.
        let mut bad = good.clone();
        let hi = 19u32.to_le_bytes(); // > offsets[5] for this toy graph
        bad[goff + 4 * 4..goff + 4 * 4 + 4].copy_from_slice(&hi);
        let snap = Snapshot::from_bytes(&bad).expect("table is still well-formed");
        assert!(snap.verify().is_err(), "verify must catch non-monotone CSR offsets");
    }

    #[test]
    fn empty_index_snapshots() {
        let graph = CompactGraph::empty();
        let base = VectorSet::new(3);
        let bytes =
            snapshot_to_bytes(&graph, 0, &base, DistanceKind::SquaredEuclidean, None).unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph().num_nodes(), 0);
        assert!(snap.vectors().is_empty());
        snap.verify().unwrap();
    }

    #[test]
    fn region_outlives_the_snapshot_through_its_views() {
        let bytes = toy_snapshot_bytes(8, 3, false);
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let region = Arc::clone(snap.region());
        let index = snap.into_index(NsgParams::default());
        // The index's arenas hold the region; our probe Arc is not the last.
        assert!(Arc::strong_count(&region) > 1);
        drop(index);
        assert_eq!(Arc::strong_count(&region), 1);
    }
}
