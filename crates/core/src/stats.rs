//! Graph analytics used by Tables 2 and 4 of the paper: out-degree
//! statistics, the fraction of nodes linked to their exact nearest neighbor
//! (NN%), strongly connected components, and reachability from a fixed entry
//! point.

use crate::graph::GraphView;
use nsg_knn::KnnGraph;
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use rayon::prelude::*;

/// The per-index statistics reported in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphIndexStats {
    /// Index memory in bytes under the fixed-degree layout.
    pub memory_bytes: usize,
    /// Average out-degree (AOD).
    pub average_out_degree: f64,
    /// Maximum out-degree (MOD).
    pub max_out_degree: usize,
    /// Percentage of nodes whose exact nearest neighbor appears in their
    /// out-neighbor list (the NN(%) column).
    pub nn_percentage: f64,
}

/// Computes the Table 2 statistics of `graph` over `base`.
///
/// The NN% column requires each node's exact nearest neighbor; it is computed
/// with a brute-force scan per node (rayon-parallel), so this is intended for
/// the analysis-scale datasets of the reproduction.
pub fn graph_index_stats<G: GraphView + Sync + ?Sized, D: Distance + Sync + ?Sized>(
    graph: &G,
    base: &VectorSet,
    metric: &D,
) -> GraphIndexStats {
    GraphIndexStats {
        memory_bytes: graph.memory_bytes_fixed_degree(),
        average_out_degree: graph.average_out_degree(),
        max_out_degree: graph.max_out_degree(),
        nn_percentage: nn_percentage(graph, base, metric),
    }
}

/// Percentage (0–100) of nodes whose exact nearest neighbor is among their
/// out-neighbors.
pub fn nn_percentage<G: GraphView + Sync + ?Sized, D: Distance + Sync + ?Sized>(
    graph: &G,
    base: &VectorSet,
    metric: &D,
) -> f64 {
    let n = graph.num_nodes();
    if n < 2 {
        return 100.0;
    }
    let hits: usize = (0..n)
        .into_par_iter()
        .filter(|&v| {
            let vq = base.get(v);
            let mut best = u32::MAX;
            let mut best_dist = f32::INFINITY;
            for u in 0..n {
                if u == v {
                    continue;
                }
                let d = metric.distance(vq, base.get(u));
                if d < best_dist || (d == best_dist && (u as u32) < best) {
                    best_dist = d;
                    best = u as u32;
                }
            }
            graph.neighbors(v as u32).contains(&best)
        })
        .count();
    100.0 * hits as f64 / n as f64
}

/// Same NN% computation but against a precomputed exact kNN graph (avoids the
/// quadratic scan when one is already available).
pub fn nn_percentage_from_exact<G: GraphView + ?Sized>(graph: &G, exact: &KnnGraph) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 100.0;
    }
    assert_eq!(n, exact.len(), "graphs cover different node sets");
    let hits = (0..n as u32)
        .filter(|&v| match exact.nearest(v) {
            Some(nn) => graph.neighbors(v).contains(&nn.id),
            None => true,
        })
        .count();
    100.0 * hits as f64 / n as f64
}

/// Number of nodes reachable from `root` by directed edges (including `root`
/// itself). Table 4 records the NSG / HNSW connectivity as "1 SCC" when every
/// node is reachable from the fixed entry point.
pub fn reachable_count<G: GraphView + ?Sized>(graph: &G, root: u32) -> usize {
    if graph.is_empty() {
        return 0;
    }
    let mut seen = vec![false; graph.num_nodes()];
    let mut stack = vec![root];
    seen[root as usize] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &u in graph.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                count += 1;
                stack.push(u);
            }
        }
    }
    count
}

/// Number of strongly connected components of the directed graph (iterative
/// Tarjan). This is the SCC column of Table 4 for the methods whose search
/// starts from a random node.
pub fn strongly_connected_components<G: GraphView + ?Sized>(graph: &G) -> usize {
    let n = graph.num_nodes();
    if n == 0 {
        return 0;
    }
    const UNVISITED: u32 = u32::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0usize;

    // Iterative Tarjan with an explicit call frame: (node, neighbor cursor).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index_of[start as usize] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            if *cursor == 0 {
                index_of[v as usize] = next_index;
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let neighbors = graph.neighbors(v);
            if *cursor < neighbors.len() {
                let u = neighbors[*cursor];
                *cursor += 1;
                if index_of[u as usize] == UNVISITED {
                    call_stack.push((u, 0));
                } else if on_stack[u as usize] {
                    low[v as usize] = low[v as usize].min(index_of[u as usize]);
                }
            } else {
                // All neighbors processed: close the frame.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index_of[v as usize] {
                    scc_count += 1;
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    scc_count
}

/// The connectivity summary of Table 4: for fixed-entry methods (NSG, HNSW)
/// the paper records 1 when every node is reachable from the entry point; for
/// the others it records the number of SCCs.
pub fn connectivity_metric<G: GraphView + ?Sized>(graph: &G, fixed_entry: Option<u32>) -> usize {
    match fixed_entry {
        Some(root) if !graph.is_empty() => {
            if reachable_count(graph, root) == graph.num_nodes() {
                1
            } else {
                // Count unreachable "components" coarsely: 1 (the reachable
                // tree) + number of SCCs among unreachable nodes would be
                // exact; the paper only cares whether it is 1, so report the
                // SCC count of the whole graph.
                strongly_connected_components(graph).max(2)
            }
        }
        _ => strongly_connected_components(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CompactGraph, DirectedGraph};
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;
    use nsg_vectors::VectorSet;

    #[test]
    fn scc_of_a_cycle_is_one() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![2], vec![0]]);
        assert_eq!(strongly_connected_components(&g), 1);
    }

    #[test]
    fn scc_of_a_chain_is_n() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![2], vec![]]);
        assert_eq!(strongly_connected_components(&g), 3);
    }

    #[test]
    fn scc_of_two_cycles_is_two() {
        let g = DirectedGraph::from_adjacency(vec![vec![1], vec![0], vec![3], vec![2]]);
        assert_eq!(strongly_connected_components(&g), 2);
    }

    #[test]
    fn scc_handles_self_loops_and_isolated_nodes() {
        let g = DirectedGraph::from_adjacency(vec![vec![0], vec![], vec![1]]);
        assert_eq!(strongly_connected_components(&g), 3);
    }

    #[test]
    fn scc_on_larger_random_strongly_connected_graph() {
        // A ring plus random chords is strongly connected by construction.
        let n = 200;
        let mut adjacency = vec![Vec::new(); n];
        for (v, list) in adjacency.iter_mut().enumerate() {
            list.push(((v + 1) % n) as u32);
            list.push(((v * 7 + 3) % n) as u32);
        }
        let g = DirectedGraph::from_adjacency(adjacency);
        assert_eq!(strongly_connected_components(&g), 1);
    }

    #[test]
    fn reachability_from_root() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![], vec![1], vec![0]]);
        assert_eq!(reachable_count(&g, 0), 3); // node 3 unreachable
        assert_eq!(reachable_count(&g, 3), 4);
    }

    #[test]
    fn connectivity_metric_for_fixed_entry() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![], vec![]]);
        assert_eq!(connectivity_metric(&g, Some(0)), 1);
        assert!(connectivity_metric(&g, Some(1)) >= 2);
        assert_eq!(connectivity_metric(&g, None), 3);
    }

    #[test]
    fn nn_percentage_on_a_line_graph() {
        // Nodes on a line, each linked to the next node only: node i's nearest
        // neighbor is i+1 or i-1 (distance 1 either way, tie broken toward the
        // smaller id), so the first node always hits and the rest hit only if
        // the tie-break picks the forward neighbor.
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [3.0]]);
        let forward = DirectedGraph::from_adjacency(vec![vec![1], vec![2], vec![3], vec![]]);
        let pct = nn_percentage(&forward, &base, &SquaredEuclidean);
        // Nearest neighbor of node 0 is 1 (hit); of 1 is 0 (miss, edge goes to 2);
        // of 2 is 1 (miss); of 3 is 2 (miss).
        assert!((pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn nn_percentage_matches_exact_graph_variant() {
        let base = uniform(150, 6, 3);
        let exact = nsg_knn::build_exact_knn_graph(&base, 5, &SquaredEuclidean);
        // Graph whose lists are exactly the kNN lists: NN% must be 100.
        let adjacency: Vec<Vec<u32>> = (0..150u32).map(|v| exact.neighbor_ids(v).collect()).collect();
        let g = DirectedGraph::from_adjacency(adjacency);
        let a = nn_percentage(&g, &base, &SquaredEuclidean);
        let b = nn_percentage_from_exact(&g, &exact);
        assert_eq!(a, 100.0);
        assert_eq!(b, 100.0);
    }

    #[test]
    fn analytics_accept_the_frozen_graph() {
        // Table 2/4 statistics must run on the query-time CompactGraph too —
        // the experiment binaries report on frozen indices directly.
        let nested = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![], vec![1], vec![0]]);
        let frozen = CompactGraph::from(&nested);
        assert_eq!(reachable_count(&frozen, 0), reachable_count(&nested, 0));
        assert_eq!(
            strongly_connected_components(&frozen),
            strongly_connected_components(&nested)
        );
        assert_eq!(connectivity_metric(&frozen, Some(3)), connectivity_metric(&nested, Some(3)));
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [3.0]]);
        assert_eq!(
            graph_index_stats(&frozen, &base, &SquaredEuclidean),
            graph_index_stats(&nested, &base, &SquaredEuclidean)
        );
    }

    #[test]
    fn table2_stats_are_consistent() {
        let g = DirectedGraph::from_adjacency(vec![vec![1, 2], vec![0], vec![0]]);
        let base = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0]]);
        let stats = graph_index_stats(&g, &base, &SquaredEuclidean);
        assert_eq!(stats.max_out_degree, 2);
        assert!((stats.average_out_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.memory_bytes, 3 * 3 * 4);
        assert!(stats.nn_percentage > 0.0);
    }
}
