//! Standard experiment datasets.
//!
//! The paper's datasets are million-to-billion scale; the reproduction runs
//! each experiment on a laptop-scale stand-in with the same dimensionality and
//! a matching distributional character (see `nsg_vectors::synthetic`). The
//! sizes below keep every experiment binary within a few minutes while being
//! large enough for the qualitative comparisons (who wins at a given
//! precision, how index sizes compare) to hold.

use nsg_vectors::ground_truth::{exact_knn, GroundTruth};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use nsg_vectors::VectorSet;

/// A ready-to-use experiment dataset: base vectors, held-out queries and the
/// exact ground truth.
pub struct ExperimentData {
    /// Which paper dataset this stands in for.
    pub kind: SyntheticKind,
    /// Base vectors to index.
    pub base: VectorSet,
    /// Held-out query vectors.
    pub queries: VectorSet,
    /// Exact k-NN ground truth of the queries against the base.
    pub ground_truth: GroundTruth,
}

/// Default base sizes of the four million-scale stand-ins (Table 1 order).
pub const MILLION_SCALE_BASE: usize = 6000;
/// Default query-set size for the million-scale stand-ins.
pub const MILLION_SCALE_QUERIES: usize = 100;
/// Default `k` of the precision measurements (the paper reports 10-NN and
/// 100-NN precision; 10 keeps ground-truth computation cheap).
pub const DEFAULT_K: usize = 10;

/// Generates one experiment dataset with exact ground truth.
pub fn make_dataset(kind: SyntheticKind, n_base: usize, n_query: usize, k: usize, seed: u64) -> ExperimentData {
    let (base, queries) = base_and_queries(kind, n_base, n_query, seed);
    let ground_truth = exact_knn(&base, &queries, k, &SquaredEuclidean);
    ExperimentData {
        kind,
        base,
        queries,
        ground_truth,
    }
}

/// The four million-scale datasets of Table 1 / Figure 6 at reproduction
/// scale: SIFT-like, GIST-like, RAND-uniform and GAUSS.
pub fn million_scale_suite(n_base: usize, n_query: usize, k: usize) -> Vec<ExperimentData> {
    [
        SyntheticKind::SiftLike,
        SyntheticKind::GistLike,
        SyntheticKind::RandUniform,
        SyntheticKind::Gauss,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| make_dataset(kind, n_base, n_query, k, 1000 + i as u64))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_pieces_are_consistent() {
        let d = make_dataset(SyntheticKind::SiftLike, 300, 10, 5, 3);
        assert_eq!(d.base.len(), 300);
        assert_eq!(d.queries.len(), 10);
        assert_eq!(d.ground_truth.num_queries(), 10);
        assert_eq!(d.ground_truth.k, 5);
        assert_eq!(d.base.dim(), d.queries.dim());
    }

    #[test]
    fn suite_covers_the_four_table1_datasets() {
        let suite = million_scale_suite(100, 5, 3);
        assert_eq!(suite.len(), 4);
        let dims: Vec<usize> = suite.iter().map(|d| d.base.dim()).collect();
        assert_eq!(dims, vec![128, 960, 128, 128]);
    }
}
