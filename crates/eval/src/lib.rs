//! Evaluation harness for the NSG reproduction.
//!
//! * [`datasets`] — the laptop-scale stand-ins for the paper's datasets with
//!   their standard sizes, shared by every experiment binary,
//! * [`sweep`] — QPS-vs-precision sweeps over an index's effort knob
//!   (regenerates Figures 6 and 7),
//! * [`mutation`] — recall-vs-delta-fraction sweeps for the live-mutation
//!   subsystem (merged base+delta search vs a full rebuild),
//! * [`timing`] — wall-clock helpers for indexing-time tables,
//! * [`scaling`] — log-log scaling-law fits for the complexity experiments
//!   (Figures 9–12),
//! * [`report`] — aligned-text and CSV table emission.

pub mod datasets;
pub mod mutation;
pub mod report;
pub mod scaling;
pub mod sweep;
pub mod timing;

pub use mutation::{sweep_delta_fractions, DeltaSweepPoint};
pub use report::Table;
pub use sweep::{memory_recall_row, sweep_index, sweep_index_requests, MemoryRecallRow, SweepPoint};
