//! Recall-vs-delta-fraction sweeps for the live-mutation subsystem.
//!
//! The delta layer's contract is that merged (base CSR + delta graph)
//! search stays within 1% recall of a full offline rebuild while the delta
//! holds up to ~10% of the corpus. [`sweep_delta_fractions`] measures that
//! envelope directly: for each requested fraction `f` it freezes an NSG over
//! the first `(1-f)·N` corpus points, inserts the remaining `f·N` through
//! [`MutableIndex::insert`] (timing each), measures merged recall against
//! exact ground truth over the **whole** corpus, then runs
//! [`MutableIndex::compact`] (timed — this *is* the full Algorithm 2
//! rebuild) and measures the rebuilt index on the same queries. Insert order
//! matches corpus order, so external ids equal corpus indices before and
//! after compaction and recall needs no id translation.

use nsg_core::delta::MutableIndex;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::ground_truth::GroundTruth;
use nsg_vectors::metrics::mean_precision;
use nsg_vectors::VectorSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One operating point of a recall-vs-delta-fraction sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSweepPoint {
    /// The delta fraction this point was measured at (delta rows / corpus).
    pub delta_fraction: f64,
    /// Rows in the frozen base.
    pub base_len: usize,
    /// Rows inserted into the delta layer.
    pub delta_len: usize,
    /// Recall@k of merged base+delta search over the full corpus.
    pub merged_recall: f64,
    /// Recall@k of the compacted (fully rebuilt) index on the same queries.
    pub rebuilt_recall: f64,
    /// Mean merged-search latency per query, microseconds.
    pub mean_query_us: f64,
    /// Median single-insert latency, microseconds.
    pub insert_p50_us: f64,
    /// 99th-percentile single-insert latency, microseconds.
    pub insert_p99_us: f64,
    /// Wall time of `compact()` — the full Algorithm 2 rebuild plus the
    /// sealed handover.
    pub compact_wall: Duration,
}

impl DeltaSweepPoint {
    /// How far merged search trails the rebuild (positive = merged worse).
    pub fn recall_gap(&self) -> f64 {
        self.rebuilt_recall - self.merged_recall
    }
}

fn duration_quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn recall_of(index: &dyn AnnIndex, queries: &VectorSet, gt: &GroundTruth, request: &SearchRequest) -> (f64, f64) {
    let mut ctx = index.new_context();
    let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for q in 0..queries.len() {
        let neighbors = index.search_into(&mut ctx, request, queries.get(q));
        results.push(neighbors.iter().map(|nb| nb.id).collect());
    }
    let mean_us = start.elapsed().as_micros() as f64 / queries.len().max(1) as f64;
    (mean_precision(&results, gt, request.k), mean_us)
}

/// Runs the sweep described in the module docs over `fractions` (each in
/// `[0, 1)`), reusing one corpus, query set and ground truth for every
/// point. `gt` must be exact k-nearest-neighbor ids over the full `corpus`
/// for `queries` with `k >= request.k`.
pub fn sweep_delta_fractions(
    corpus: &VectorSet,
    queries: &VectorSet,
    gt: &GroundTruth,
    request: &SearchRequest,
    params: &NsgParams,
    fractions: &[f64],
) -> Vec<DeltaSweepPoint> {
    assert_eq!(queries.len(), gt.num_queries(), "query batch does not match the ground truth");
    let n = corpus.len();
    let mut points = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        assert!((0.0..1.0).contains(&fraction), "delta fraction must be in [0, 1)");
        let delta_len = (n as f64 * fraction).round() as usize;
        let base_len = n - delta_len;

        let mut base = VectorSet::with_capacity(corpus.dim(), base_len);
        for i in 0..base_len {
            base.push(corpus.get(i));
        }
        let frozen = NsgIndex::build(Arc::new(base), SquaredEuclidean, *params);
        let mutable = MutableIndex::new(frozen);

        let mut insert_latencies: Vec<Duration> = Vec::with_capacity(delta_len);
        for i in base_len..n {
            let started = Instant::now();
            let id = mutable
                .insert(corpus.get(i))
                .expect("sweep inserts cannot be sealed or mismatched"); // lint:allow(no-panic): harness-controlled index, dimensions match by construction
            insert_latencies.push(started.elapsed());
            assert_eq!(id as usize, i, "insert order must preserve corpus ids");
        }
        insert_latencies.sort_unstable();

        let (merged_recall, mean_query_us) = recall_of(&mutable, queries, gt, request);

        let compact_started = Instant::now();
        let rebuilt = mutable.compact();
        let compact_wall = compact_started.elapsed();
        let (rebuilt_recall, _) = recall_of(&rebuilt, queries, gt, request);

        points.push(DeltaSweepPoint {
            delta_fraction: fraction,
            base_len,
            delta_len,
            merged_recall,
            rebuilt_recall,
            mean_query_us,
            insert_p50_us: duration_quantile(&insert_latencies, 0.50).as_micros() as f64,
            insert_p99_us: duration_quantile(&insert_latencies, 0.99).as_micros() as f64,
            compact_wall,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_knn::NnDescentParams;
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::synthetic::uniform;

    #[test]
    fn sweep_measures_the_recall_parity_envelope() {
        let corpus = uniform(600, 10, 11);
        let queries = uniform(20, 10, 12);
        let gt = exact_knn(&corpus, &queries, 10, &SquaredEuclidean);
        let request = SearchRequest::new(10).with_effort(80);
        let params = NsgParams {
            build_pool_size: 30,
            max_degree: 16,
            knn: NnDescentParams { k: 16, ..Default::default() },
            reverse_insert: true,
            seed: 11,
        };
        let points =
            sweep_delta_fractions(&corpus, &queries, &gt, &request, &params, &[0.0, 0.10]);
        assert_eq!(points.len(), 2);
        // Zero delta: merged search IS the frozen index (fast path).
        assert_eq!(points[0].delta_len, 0);
        assert_eq!(points[0].insert_p50_us, 0.0);
        assert!(points[0].merged_recall > 0.8);
        // Ten percent delta: the contract this subsystem exists for.
        assert_eq!(points[1].delta_len, 60);
        assert!(points[1].insert_p99_us >= points[1].insert_p50_us);
        assert!(points[1].compact_wall > Duration::ZERO);
        assert!(
            points[1].recall_gap() <= 0.01 + 1e-9,
            "merged recall {} vs rebuilt {}",
            points[1].merged_recall,
            points[1].rebuilt_recall
        );
    }

    #[test]
    fn duration_quantiles_pick_rank_order_values() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(duration_quantile(&sorted, 0.50), Duration::from_micros(50));
        assert_eq!(duration_quantile(&sorted, 0.99), Duration::from_micros(99));
        assert_eq!(duration_quantile(&[], 0.5), Duration::ZERO);
    }
}
