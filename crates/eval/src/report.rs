//! Plain-text table and CSV report emission shared by the experiment
//! binaries.

/// A simple column-aligned text table, printed in the same row structure as
/// the paper's tables so the output can be compared side by side.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it is padded or truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize]| {
            let cells: Vec<String> = row
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            cells.join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells are expected not to contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with `digits` significant decimal places, trimming noise
/// from experiment output.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["algo", "qps"]);
        t.add_row(vec!["NSG", "12345"]);
        t.add_row(vec!["HNSW-long-name", "9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("NSG"));
        assert!(lines[3].starts_with("HNSW-long-name"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert_eq!(t.to_csv(), "a,b,c\n1,,\n");
    }

    #[test]
    fn fmt_f64_rounds_to_requested_digits() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(1.239, 2), "1.24");
    }
}
