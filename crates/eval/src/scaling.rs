//! Scaling-law fits for the complexity experiments.
//!
//! Figures 9–12 of the paper measure how search and indexing time grow with
//! the data size `n` (and with `k`), then fit power laws such as
//! `O(n^{1/d} log n^{1/d})` and report the exponent. This module provides the
//! least-squares log-log fit used to produce those exponents from measured
//! `(n, time)` points.

/// A fitted power law `time ≈ a * n^b`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerLawFit {
    /// Multiplicative constant `a`.
    pub coefficient: f64,
    /// Exponent `b`.
    pub exponent: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
}

/// Fits `y ≈ a * x^b` by linear regression in log-log space.
///
/// Returns `None` when fewer than two valid (positive) points are supplied.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = logs.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in &logs {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 0.0 {
        return None;
    }
    let exponent = sxy / sxx;
    let intercept = mean_y - exponent * mean_x;
    let r_squared = if syy <= 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(PowerLawFit {
        coefficient: intercept.exp(),
        exponent,
        r_squared,
    })
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

/// Fits `y ≈ a * (log x)^b`, the alternative model the paper fits for the
/// K-scaling of Figure 11 (`O((log K)^2.7)`).
pub fn fit_log_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 1.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y))
        .collect();
    fit_power_law(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_known_exponent() {
        let points: Vec<(f64, f64)> = (1..=10).map(|i| {
            let x = i as f64 * 1000.0;
            (x, 3.0 * x.powf(1.3))
        }).collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.exponent - 1.3).abs() < 1e-6);
        assert!((fit.coefficient - 3.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn noisy_data_still_gives_a_reasonable_exponent() {
        let points: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = i as f64 * 500.0;
                let noise = 1.0 + 0.05 * ((i % 3) as f64 - 1.0);
                (x, 2.0 * x.powf(0.5) * noise)
            })
            .collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.exponent - 0.5).abs() < 0.1, "exponent {}", fit.exponent);
    }

    #[test]
    fn prediction_interpolates() {
        let fit = PowerLawFit { coefficient: 2.0, exponent: 1.0, r_squared: 1.0 };
        assert_eq!(fit.predict(10.0), 20.0);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(10.0, 5.0)]).is_none());
        assert!(fit_power_law(&[(10.0, 5.0), (10.0, 6.0)]).is_none());
        assert!(fit_power_law(&[(-1.0, 5.0), (0.0, 6.0)]).is_none());
    }

    #[test]
    fn log_power_law_fits_logarithmic_growth() {
        let points: Vec<(f64, f64)> = (2..=50)
            .map(|i| {
                let x = i as f64;
                (x, 4.0 * x.ln().powf(2.7))
            })
            .collect();
        let fit = fit_log_power_law(&points).unwrap();
        assert!((fit.exponent - 2.7).abs() < 1e-6);
    }
}
