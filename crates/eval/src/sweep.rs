//! QPS-vs-precision sweeps.
//!
//! Figures 6 and 7 of the paper plot queries-per-second against precision for
//! each algorithm; every curve is produced by sweeping that algorithm's search
//! effort knob (candidate pool size for graph methods, probes for IVFPQ/LSH,
//! checks for KD-trees). [`sweep_index`] runs one such sweep against any
//! [`AnnIndex`] on the batch path: **one** [`SearchContext`] is created per
//! sweep and reused across every query and effort level, so the measured
//! latencies reflect the allocation-free serving configuration, and each
//! operating point reports the mean per-query instrumentation read back from
//! the context.

use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_vectors::ground_truth::GroundTruth;
use nsg_vectors::metrics::mean_precision;
use nsg_vectors::VectorSet;
use std::time::Instant;

/// One operating point of a QPS-vs-precision curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Effort value (pool size / probes / checks) this point was measured at.
    pub effort: usize,
    /// Exact-rerank factor of the request this point was measured with
    /// (1 = single-phase; see `SearchRequest::with_rerank`).
    pub rerank: usize,
    /// Mean precision at k.
    pub precision: f64,
    /// Queries per second (single-threaded, as in the paper's search
    /// experiments).
    pub qps: f64,
    /// Mean per-query latency in microseconds.
    pub mean_latency_us: f64,
    /// Mean distance computations per query (the cost axis of Figure 8),
    /// read from the search context's per-query stats.
    pub mean_distance_computations: f64,
    /// Mean greedy hops per query (graph methods; 0 for the others).
    pub mean_hops: f64,
}

/// Runs the query batch at every effort level and records precision, QPS and
/// mean per-query stats.
///
/// Queries run single-threaded through one reused context because the paper
/// evaluates all algorithms with a single thread (§4.1.2); throughput-style
/// parallel batching is [`AnnIndex::search_batch`]'s job.
pub fn sweep_index(
    index: &dyn AnnIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    k: usize,
    efforts: &[usize],
) -> Vec<SweepPoint> {
    let requests: Vec<SearchRequest> = efforts
        .iter()
        .map(|&effort| SearchRequest::new(k).with_effort(effort))
        .collect();
    sweep_index_requests(index, queries, ground_truth, &requests)
}

/// The general form of [`sweep_index`]: measures one operating point per
/// fully-specified [`SearchRequest`] (so two-phase rerank sweeps, or mixed
/// effort × rerank grids, reuse the same harness). `k` is taken from each
/// request; stats collection is forced on.
pub fn sweep_index_requests(
    index: &dyn AnnIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    requests: &[SearchRequest],
) -> Vec<SweepPoint> {
    assert_eq!(
        queries.len(),
        ground_truth.num_queries(),
        "query batch does not match the ground truth"
    );
    let mut ctx: SearchContext = index.new_context();
    let mut points = Vec::with_capacity(requests.len());
    for base_request in requests {
        let request = base_request.with_stats();
        let k = request.k;
        let effort = request.quality.effort;
        let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        let mut distance_computations = 0u64;
        let mut hops = 0u64;
        let start = Instant::now();
        for q in 0..queries.len() {
            let neighbors = index.search_into(&mut ctx, &request, queries.get(q));
            results.push(neighbors.iter().map(|nb| nb.id).collect());
            let stats = ctx.stats();
            distance_computations += stats.distance_computations;
            hops += stats.hops;
        }
        let elapsed = start.elapsed();
        let precision = mean_precision(&results, ground_truth, k);
        let n = queries.len().max(1) as f64;
        let secs = elapsed.as_secs_f64().max(1e-12);
        points.push(SweepPoint {
            effort,
            rerank: request.rerank_factor(),
            precision,
            qps: n / secs,
            mean_latency_us: elapsed.as_micros() as f64 / n,
            mean_distance_computations: distance_computations as f64 / n,
            mean_hops: hops as f64 / n,
        });
    }
    points
}

/// One row of a recall-vs-memory table: a labeled index configuration, its
/// resident vector-payload bytes, and the operating point measured for it —
/// the unit of the f32-vs-SQ8 tradeoff tables (`exp_memory_recall`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRecallRow {
    /// Configuration label (e.g. `"f32"`, `"sq8 r=4"`).
    pub label: String,
    /// Resident bytes of the traversal store's vector payload
    /// (`VectorStore::memory_bytes`).
    pub vector_bytes: usize,
    /// The measured operating point.
    pub point: SweepPoint,
}

/// Measures one [`MemoryRecallRow`]: runs the query batch at `request` and
/// pairs the resulting operating point with the store footprint the caller
/// reports for this configuration.
pub fn memory_recall_row(
    label: impl Into<String>,
    vector_bytes: usize,
    index: &dyn AnnIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    request: SearchRequest,
) -> MemoryRecallRow {
    let point = sweep_index_requests(index, queries, ground_truth, &[request])
        .pop()
        .expect("one request yields one point"); // lint:allow(no-panic): sweep maps requests 1:1, one request in means one point out
    MemoryRecallRow {
        label: label.into(),
        vector_bytes,
        point,
    }
}

/// A geometric ladder of effort values, the usual sweep grid of the
/// experiments (e.g. 10, 20, 40, ... up to `max`).
pub fn effort_ladder(min: usize, max: usize, factor: f64) -> Vec<usize> {
    assert!(factor > 1.0, "ladder factor must exceed 1");
    let mut out = Vec::new();
    let mut x = min.max(1) as f64;
    while (x as usize) < max {
        out.push(x as usize);
        x *= factor;
    }
    out.push(max);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::neighbor::Neighbor;
    use nsg_core::search::SearchStats;
    use nsg_vectors::distance::{Distance, SquaredEuclidean};
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::synthetic::uniform;

    /// A fake index whose accuracy grows with effort, for harness testing.
    struct FakeIndex {
        base: VectorSet,
    }

    impl AnnIndex for FakeIndex {
        fn new_context(&self) -> SearchContext {
            SearchContext::new()
        }
        fn search_into<'a>(
            &self,
            ctx: &'a mut SearchContext,
            request: &SearchRequest,
            query: &[f32],
        ) -> &'a [Neighbor] {
            // Scan only the first `effort` base vectors: precision rises with
            // effort and reaches 1.0 when effort covers the whole base.
            let limit = request.quality.effort.min(self.base.len());
            ctx.scored.clear();
            ctx.scored.extend(
                (0..limit).map(|i| Neighbor::new(i as u32, SquaredEuclidean.distance(query, self.base.get(i)))),
            );
            ctx.scored.sort_unstable_by(Neighbor::ordering);
            ctx.scored.truncate(request.k);
            std::mem::swap(&mut ctx.results, &mut ctx.scored);
            ctx.stats = SearchStats {
                distance_computations: limit as u64,
                hops: 1,
                visited: limit as u64,
            };
            &ctx.results
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "fake"
        }
    }

    #[test]
    fn sweep_reports_monotone_precision_for_a_monotone_index() {
        let base = uniform(400, 8, 1);
        let queries = uniform(20, 8, 2);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let index = FakeIndex { base };
        let points = sweep_index(&index, &queries, &gt, 5, &[10, 100, 400]);
        assert_eq!(points.len(), 3);
        assert!(points[0].precision <= points[1].precision);
        assert!(points[1].precision <= points[2].precision);
        assert!((points[2].precision - 1.0).abs() < 1e-12);
        assert!(points.iter().all(|p| p.qps > 0.0 && p.mean_latency_us > 0.0));
    }

    #[test]
    fn effort_ladder_is_increasing_and_ends_at_max() {
        let ladder = effort_ladder(10, 320, 2.0);
        assert_eq!(ladder, vec![10, 20, 40, 80, 160, 320]);
        assert_eq!(*effort_ladder(7, 7, 1.5).last().unwrap(), 7);
    }

    #[test]
    fn sweep_reports_per_query_stats_from_the_context() {
        let base = uniform(300, 4, 3);
        let queries = uniform(10, 4, 4);
        let gt = exact_knn(&base, &queries, 3, &SquaredEuclidean);
        let index = FakeIndex { base };
        let points = sweep_index(&index, &queries, &gt, 3, &[50, 300]);
        // The fake index performs exactly `effort` distance computations and
        // one hop per query.
        assert_eq!(points[0].mean_distance_computations, 50.0);
        assert_eq!(points[1].mean_distance_computations, 300.0);
        assert!(points.iter().all(|p| p.mean_hops == 1.0));
    }

    #[test]
    fn request_sweep_records_the_rerank_factor_and_memory_rows_pair_up() {
        let base = uniform(200, 4, 5);
        let queries = uniform(8, 4, 6);
        let gt = exact_knn(&base, &queries, 3, &SquaredEuclidean);
        let index = FakeIndex { base };
        let requests = [
            SearchRequest::new(3).with_effort(200),
            SearchRequest::new(3).with_effort(200).with_rerank(4),
        ];
        let points = sweep_index_requests(&index, &queries, &gt, &requests);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].rerank, 1);
        assert_eq!(points[1].rerank, 4);
        assert_eq!(points[0].effort, 200);

        let row = memory_recall_row("fake", 1234, &index, &queries, &gt, requests[0]);
        assert_eq!(row.label, "fake");
        assert_eq!(row.vector_bytes, 1234);
        assert_eq!(row.point.effort, 200);
        assert!(row.point.precision > 0.9, "effort 200 covers the whole fake base");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_ground_truth_is_rejected() {
        let base = uniform(50, 4, 1);
        let queries = uniform(5, 4, 2);
        let gt = exact_knn(&base, &queries, 3, &SquaredEuclidean);
        let other_queries = uniform(7, 4, 3);
        let index = FakeIndex { base };
        let _ = sweep_index(&index, &other_queries, &gt, 3, &[10]);
    }
}
