//! QPS-vs-precision sweeps.
//!
//! Figures 6 and 7 of the paper plot queries-per-second against precision for
//! each algorithm; every curve is produced by sweeping that algorithm's search
//! effort knob (candidate pool size for graph methods, probes for IVFPQ/LSH,
//! checks for KD-trees). [`sweep_index`] runs one such sweep against any
//! [`AnnIndex`].

use nsg_core::index::{AnnIndex, SearchQuality};
use nsg_vectors::ground_truth::GroundTruth;
use nsg_vectors::metrics::mean_precision;
use nsg_vectors::VectorSet;
use std::time::Instant;

/// One operating point of a QPS-vs-precision curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Effort value (pool size / probes / checks) this point was measured at.
    pub effort: usize,
    /// Mean precision at k.
    pub precision: f64,
    /// Queries per second (single-threaded, as in the paper's search
    /// experiments).
    pub qps: f64,
    /// Mean per-query latency in microseconds.
    pub mean_latency_us: f64,
}

/// Runs the query batch at every effort level and records precision and QPS.
///
/// Queries run single-threaded because the paper evaluates all algorithms with
/// a single thread (§4.1.2).
pub fn sweep_index(
    index: &dyn AnnIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    k: usize,
    efforts: &[usize],
) -> Vec<SweepPoint> {
    assert_eq!(
        queries.len(),
        ground_truth.num_queries(),
        "query batch does not match the ground truth"
    );
    let mut points = Vec::with_capacity(efforts.len());
    for &effort in efforts {
        let quality = SearchQuality::new(effort);
        let start = Instant::now();
        let results: Vec<Vec<u32>> = (0..queries.len())
            .map(|q| index.search(queries.get(q), k, quality))
            .collect();
        let elapsed = start.elapsed();
        let precision = mean_precision(&results, ground_truth, k);
        let n = queries.len().max(1) as f64;
        let secs = elapsed.as_secs_f64().max(1e-12);
        points.push(SweepPoint {
            effort,
            precision,
            qps: n / secs,
            mean_latency_us: elapsed.as_micros() as f64 / n,
        });
    }
    points
}

/// A geometric ladder of effort values, the usual sweep grid of the
/// experiments (e.g. 10, 20, 40, ... up to `max`).
pub fn effort_ladder(min: usize, max: usize, factor: f64) -> Vec<usize> {
    assert!(factor > 1.0, "ladder factor must exceed 1");
    let mut out = Vec::new();
    let mut x = min.max(1) as f64;
    while (x as usize) < max {
        out.push(x as usize);
        x *= factor;
    }
    out.push(max);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::{Distance, SquaredEuclidean};
    use nsg_vectors::ground_truth::exact_knn;
    use nsg_vectors::synthetic::uniform;

    /// A fake index whose accuracy grows with effort, for harness testing.
    struct FakeIndex {
        base: VectorSet,
    }

    impl AnnIndex for FakeIndex {
        fn search(&self, query: &[f32], k: usize, quality: SearchQuality) -> Vec<u32> {
            // Scan only the first `effort` base vectors: precision rises with
            // effort and reaches 1.0 when effort covers the whole base.
            let limit = quality.effort.min(self.base.len());
            let mut scored: Vec<(u32, f32)> = (0..limit)
                .map(|i| (i as u32, SquaredEuclidean.distance(query, self.base.get(i))))
                .collect();
            scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            scored.truncate(k);
            scored.into_iter().map(|(id, _)| id).collect()
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "fake"
        }
    }

    #[test]
    fn sweep_reports_monotone_precision_for_a_monotone_index() {
        let base = uniform(400, 8, 1);
        let queries = uniform(20, 8, 2);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        let index = FakeIndex { base };
        let points = sweep_index(&index, &queries, &gt, 5, &[10, 100, 400]);
        assert_eq!(points.len(), 3);
        assert!(points[0].precision <= points[1].precision);
        assert!(points[1].precision <= points[2].precision);
        assert!((points[2].precision - 1.0).abs() < 1e-12);
        assert!(points.iter().all(|p| p.qps > 0.0 && p.mean_latency_us > 0.0));
    }

    #[test]
    fn effort_ladder_is_increasing_and_ends_at_max() {
        let ladder = effort_ladder(10, 320, 2.0);
        assert_eq!(ladder, vec![10, 20, 40, 80, 160, 320]);
        assert_eq!(*effort_ladder(7, 7, 1.5).last().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_ground_truth_is_rejected() {
        let base = uniform(50, 4, 1);
        let queries = uniform(5, 4, 2);
        let gt = exact_knn(&base, &queries, 3, &SquaredEuclidean);
        let other_queries = uniform(7, 4, 3);
        let index = FakeIndex { base };
        let _ = sweep_index(&index, &other_queries, &gt, 3, &[10]);
    }
}
