//! Wall-clock helpers for the indexing-time experiments (Table 3, Figure 12,
//! Table 5).

use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration the way the paper's tables report indexing times:
/// seconds below ten minutes, otherwise hours.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 600.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.2}h", secs / 3600.0)
    }
}

/// Mean single-query response time in milliseconds, the metric of Table 5
/// (SQR98: single-query response time at 98% precision).
pub fn mean_query_millis(total: Duration, num_queries: usize) -> f64 {
    total.as_secs_f64() * 1e3 / num_queries.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value_and_positive_duration() {
        let (v, d) = time_it(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn duration_formatting_switches_units() {
        assert_eq!(format_duration(Duration::from_secs_f64(12.34)), "12.3s");
        assert_eq!(format_duration(Duration::from_secs(7200)), "2.00h");
    }

    #[test]
    fn per_query_millis() {
        assert_eq!(mean_query_millis(Duration::from_millis(500), 100), 5.0);
        assert_eq!(mean_query_millis(Duration::from_millis(500), 0), 500.0);
    }
}
