//! Exact kNN-graph construction by brute force.
//!
//! Quadratic in the number of points, but rayon-parallel over nodes; used for
//! small datasets, for the exact MRNG ablations, and as the quality reference
//! that NN-Descent recall is measured against.

use crate::graph::{KnnGraph, ScoredNeighbor};
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use rayon::prelude::*;

/// Builds the exact kNN graph of `base` under `metric`.
///
/// Each node's list excludes the node itself and is sorted by ascending
/// distance; `k` is clamped to `n - 1`.
pub fn build_exact_knn_graph<D: Distance + Sync + ?Sized>(
    base: &VectorSet,
    k: usize,
    metric: &D,
) -> KnnGraph {
    let n = base.len();
    let k = k.min(n.saturating_sub(1));
    let lists: Vec<Vec<ScoredNeighbor>> = (0..n)
        .into_par_iter()
        .map(|v| {
            let vq = base.get(v);
            let mut heap: std::collections::BinaryHeap<ScoredNeighbor> =
                std::collections::BinaryHeap::with_capacity(k + 1);
            for u in 0..n {
                if u == v {
                    continue;
                }
                let cand = ScoredNeighbor::new(u as u32, metric.distance(vq, base.get(u)));
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(worst) = heap.peek() {
                    if cand < *worst {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            let mut list = heap.into_vec();
            list.sort_unstable();
            list
        })
        .collect();
    KnnGraph::from_lists(lists, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;
    use nsg_vectors::VectorSet;

    #[test]
    fn line_graph_neighbors_are_adjacent_points() {
        // Points 0..6 on a line: the 2 nearest neighbors of an interior point
        // are its immediate left and right neighbors.
        let base = VectorSet::from_rows(1, &(0..6).map(|i| [i as f32]).collect::<Vec<_>>());
        let g = build_exact_knn_graph(&base, 2, &SquaredEuclidean);
        let ids: Vec<u32> = g.neighbor_ids(3).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2) && ids.contains(&4));
    }

    #[test]
    fn no_self_loops_and_k_respected() {
        let base = uniform(80, 6, 1);
        let g = build_exact_knn_graph(&base, 10, &SquaredEuclidean);
        for v in 0..g.len() as u32 {
            assert_eq!(g.neighbors(v).len(), 10);
            assert!(g.neighbor_ids(v).all(|u| u != v));
        }
    }

    #[test]
    fn k_is_clamped_for_tiny_sets() {
        let base = uniform(3, 2, 1);
        let g = build_exact_knn_graph(&base, 10, &SquaredEuclidean);
        for v in 0..3u32 {
            assert_eq!(g.neighbors(v).len(), 2);
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_by_distance() {
        let base = uniform(60, 4, 3);
        let g = build_exact_knn_graph(&base, 8, &SquaredEuclidean);
        for v in 0..g.len() as u32 {
            let dists: Vec<f32> = g.neighbors(v).iter().map(|n| n.dist).collect();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn distances_stored_match_metric() {
        let base = uniform(40, 3, 9);
        let g = build_exact_knn_graph(&base, 5, &SquaredEuclidean);
        for v in 0..g.len() as u32 {
            for n in g.neighbors(v) {
                let d = SquaredEuclidean.distance(base.get(v as usize), base.get(n.id as usize));
                assert!((d - n.dist).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_graph_matches_ground_truth_routine() {
        let base = uniform(50, 5, 21);
        let g = build_exact_knn_graph(&base, 4, &SquaredEuclidean);
        for v in 0..base.len() {
            let (ids, _) =
                nsg_vectors::ground_truth::exact_knn_single(&base, base.get(v), 5, &SquaredEuclidean);
            // Drop the point itself (returned at distance 0) and compare.
            let expected: Vec<u32> = ids.into_iter().filter(|&i| i as usize != v).take(4).collect();
            let got: Vec<u32> = g.neighbor_ids(v as u32).collect();
            assert_eq!(got, expected, "node {v}");
        }
    }
}
