//! The kNN-graph adjacency representation shared by the builders and by every
//! index that consumes a kNN graph (NSG, KGraph, Efanna, DPG, NSG-Naive).

use serde::{Deserialize, Serialize};

/// One scored directed edge: the neighbor's id and its distance to the source
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredNeighbor {
    /// Destination node id.
    pub id: u32,
    /// Distance from the source node to `id`.
    pub dist: f32,
}

impl ScoredNeighbor {
    /// Convenience constructor.
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for ScoredNeighbor {}

impl PartialOrd for ScoredNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredNeighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A directed k-nearest-neighbor graph: for every node, its (approximate or
/// exact) `k` nearest neighbors sorted by ascending distance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct KnnGraph {
    /// `neighbors[v]` is the sorted neighbor list of node `v`.
    neighbors: Vec<Vec<ScoredNeighbor>>,
    /// The `k` the graph was built with (lists may be shorter for tiny sets).
    k: usize,
}

impl KnnGraph {
    /// Wraps prebuilt adjacency lists. Each list is re-sorted by distance so
    /// downstream consumers can rely on the ordering invariant.
    pub fn from_lists(mut neighbors: Vec<Vec<ScoredNeighbor>>, k: usize) -> Self {
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup_by_key(|n| n.id);
        }
        Self { neighbors, k }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The `k` requested at build time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sorted neighbor list of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[ScoredNeighbor] {
        &self.neighbors[v as usize]
    }

    /// Neighbor ids of node `v` without the distances.
    pub fn neighbor_ids(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.neighbors[v as usize].iter().map(|n| n.id)
    }

    /// The nearest neighbor of `v`, if any (the head of its sorted list).
    pub fn nearest(&self, v: u32) -> Option<ScoredNeighbor> {
        self.neighbors[v as usize].first().copied()
    }

    /// Average out-degree of the graph.
    pub fn average_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.neighbors.len() as f64
    }

    /// Fraction of directed edges `u -> v` whose reverse edge `v -> u` is also
    /// present. NN-Descent quality is often monitored through this symmetry
    /// measure.
    pub fn symmetry(&self) -> f64 {
        let mut edges = 0usize;
        let mut symmetric = 0usize;
        for (u, list) in self.neighbors.iter().enumerate() {
            for n in list {
                edges += 1;
                if self.neighbors[n.id as usize].iter().any(|m| m.id as usize == u) {
                    symmetric += 1;
                }
            }
        }
        if edges == 0 {
            1.0
        } else {
            symmetric as f64 / edges as f64
        }
    }

    /// Recall of this graph against an exact reference graph: the average
    /// fraction of each node's true k nearest neighbors present in its list.
    ///
    /// # Panics
    /// Panics if the graphs have different node counts.
    pub fn recall_against(&self, exact: &KnnGraph) -> f64 {
        assert_eq!(self.len(), exact.len(), "graph sizes differ");
        if self.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        for v in 0..self.len() as u32 {
            let truth: std::collections::HashSet<u32> = exact.neighbor_ids(v).collect();
            if truth.is_empty() {
                total += 1.0;
                continue;
            }
            let hit = self.neighbor_ids(v).filter(|id| truth.contains(id)).count();
            total += hit as f64 / truth.len() as f64;
        }
        total / self.len() as f64
    }

    /// Consumes the graph and returns the raw adjacency lists.
    pub fn into_lists(self) -> Vec<Vec<ScoredNeighbor>> {
        self.neighbors
    }

    /// Mutable access used by builders that post-process lists (e.g. DPG's
    /// undirected compensation).
    pub fn lists_mut(&mut self) -> &mut Vec<Vec<ScoredNeighbor>> {
        &mut self.neighbors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnnGraph {
        KnnGraph::from_lists(
            vec![
                vec![ScoredNeighbor::new(1, 2.0), ScoredNeighbor::new(2, 1.0)],
                vec![ScoredNeighbor::new(0, 2.0)],
                vec![ScoredNeighbor::new(0, 1.0), ScoredNeighbor::new(1, 3.0)],
            ],
            2,
        )
    }

    #[test]
    fn lists_are_sorted_on_construction() {
        let g = toy();
        assert_eq!(g.neighbors(0)[0].id, 2);
        assert_eq!(g.neighbors(0)[1].id, 1);
        assert_eq!(g.nearest(0).unwrap().id, 2);
    }

    #[test]
    fn duplicate_ids_are_removed() {
        let g = KnnGraph::from_lists(
            vec![vec![
                ScoredNeighbor::new(1, 1.0),
                ScoredNeighbor::new(1, 1.0),
                ScoredNeighbor::new(2, 2.0),
            ]],
            3,
        );
        assert_eq!(g.neighbors(0).len(), 2);
    }

    #[test]
    fn average_degree_counts_edges() {
        let g = toy();
        assert!((g.average_degree() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_of_toy_graph() {
        let g = toy();
        // Edges: 0->2 (rev present), 0->1 (rev present), 1->0 (rev present),
        // 2->0 (rev present), 2->1 (rev 1->2 missing) => 4/5.
        assert!((g.symmetry() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn recall_against_itself_is_one() {
        let g = toy();
        assert_eq!(g.recall_against(&g), 1.0);
    }

    #[test]
    fn recall_against_disjoint_graph_is_low() {
        let g = toy();
        let other = KnnGraph::from_lists(
            vec![
                vec![ScoredNeighbor::new(1, 1.0)],
                vec![ScoredNeighbor::new(2, 1.0)],
                vec![ScoredNeighbor::new(1, 1.0)],
            ],
            1,
        );
        // Node 0: truth {1} vs ours {2,1} -> hit; node 1: truth {2} vs {0} -> miss;
        // node 2: truth {1} vs {0,1} -> hit. Recall = 2/3.
        assert!((g.recall_against(&other) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scored_neighbor_ordering_breaks_ties_by_id() {
        let a = ScoredNeighbor::new(5, 1.0);
        let b = ScoredNeighbor::new(3, 1.0);
        assert!(b < a);
    }
}
