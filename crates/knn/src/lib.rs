//! Approximate and exact k-nearest-neighbor graph construction.
//!
//! The NSG construction (Algorithm 2 of the paper) starts from a prebuilt
//! approximate kNN graph; the paper builds it with NN-Descent (Dong et al.,
//! WWW 2011) on CPU for the million-scale experiments and with Faiss on GPU
//! for DEEP100M. The kNN graph is also the index of the KGraph, Efanna and DPG
//! baselines.
//!
//! This crate provides:
//!
//! * [`graph::KnnGraph`] — the shared adjacency representation (per-node list
//!   of `(neighbor id, distance)` sorted by distance),
//! * [`bruteforce`] — an exact, rayon-parallel kNN-graph builder used at small
//!   scale and as a quality reference,
//! * [`nn_descent`] — the NN-Descent algorithm with neighbor-of-neighbor
//!   joins, sampling and early termination, matching the construction used in
//!   the paper.

pub mod bruteforce;
pub mod graph;
pub mod nn_descent;

pub use bruteforce::build_exact_knn_graph;
pub use graph::{KnnGraph, ScoredNeighbor};
pub use nn_descent::{build_nn_descent, NnDescentParams};
