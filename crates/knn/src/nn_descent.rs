//! NN-Descent (Dong, Moses, Li — WWW 2011): approximate kNN-graph
//! construction by iterated neighbor-of-neighbor joins.
//!
//! The paper builds its million-scale kNN graphs with nn-descent (§3.5.1,
//! §4.1.2) and reports an empirical complexity around O(n^1.14). The
//! implementation here follows the published algorithm:
//!
//! 1. initialize every node's list with `k` random neighbors,
//! 2. in each iteration, for every node take a sample of its *new* neighbors
//!    and *old* neighbors (in both edge directions), evaluate the distances of
//!    all new–new and new–old pairs, and try to insert each endpoint into the
//!    other's list,
//! 3. stop when the number of successful insertions in an iteration drops
//!    below `delta * n * k` or after `max_iters` iterations.
//!
//! Node lists are protected by per-node `parking_lot` mutexes so the join step
//! parallelizes over nodes with rayon, mirroring the 8-thread builds of the
//! paper.

use crate::graph::{KnnGraph, ScoredNeighbor};
use nsg_vectors::distance::Distance;
use nsg_vectors::VectorSet;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning parameters of NN-Descent.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct NnDescentParams {
    /// Neighbors kept per node (the `k` of the kNN graph).
    pub k: usize,
    /// Per-direction sample size of the local join (`rho * k` in the paper's
    /// terms, expressed directly as a count).
    pub sample: usize,
    /// Early-termination threshold: stop when an iteration performs fewer than
    /// `delta * n * k` list updates.
    pub delta: f64,
    /// Hard cap on the number of iterations.
    pub max_iters: usize,
    /// RNG seed for the random initialization and sampling.
    pub seed: u64,
}

impl Default for NnDescentParams {
    fn default() -> Self {
        Self {
            k: 20,
            sample: 10,
            delta: 0.002,
            max_iters: 12,
            seed: 0x5EED,
        }
    }
}

/// One entry of the working adjacency lists: a scored neighbor plus the
/// NN-Descent "new" flag (true until the edge has participated in a join).
#[derive(Debug, Clone, Copy)]
struct Entry {
    neighbor: ScoredNeighbor,
    is_new: bool,
}

/// A node's working list: at most `k` entries sorted by ascending distance.
struct NodeList {
    entries: Vec<Entry>,
    capacity: usize,
}

impl NodeList {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Inserts a candidate, keeping the list sorted and bounded.
    /// Returns true when the list changed.
    fn insert(&mut self, id: u32, dist: f32) -> bool {
        if self.entries.iter().any(|e| e.neighbor.id == id) {
            return false;
        }
        if self.entries.len() >= self.capacity
            && self.entries.last().is_some_and(|worst| dist >= worst.neighbor.dist)
        {
            return false;
        }
        let neighbor = ScoredNeighbor::new(id, dist);
        let pos = self
            .entries
            .partition_point(|e| e.neighbor < neighbor);
        self.entries.insert(pos, Entry { neighbor, is_new: true });
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        true
    }
}

/// Builds an approximate kNN graph with NN-Descent.
///
/// `params.k` is clamped to `n - 1`. For sets with at most `k + 1` points the
/// result equals the exact graph (every other point is a neighbor).
pub fn build_nn_descent<D: Distance + Sync + ?Sized>(
    base: &VectorSet,
    params: NnDescentParams,
    metric: &D,
) -> KnnGraph {
    let n = base.len();
    if n == 0 {
        return KnnGraph::from_lists(Vec::new(), params.k);
    }
    let k = params.k.min(n - 1);
    if k == 0 {
        return KnnGraph::from_lists(vec![Vec::new(); n], 0);
    }
    // Tiny inputs: brute force is both faster and exact.
    if n <= 2048 && n <= (k + 1) * 8 {
        return crate::bruteforce::build_exact_knn_graph(base, k, metric);
    }

    // Random initialization.
    let build_started = std::time::Instant::now();
    let lists: Vec<Mutex<NodeList>> = (0..n).map(|_| Mutex::new(NodeList::new(k))).collect();
    {
        let init: Vec<(usize, Vec<u32>)> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut rng = StdRng::seed_from_u64(params.seed ^ (v as u64).wrapping_mul(0x9E37_79B9));
                let mut picks = Vec::with_capacity(k);
                while picks.len() < k {
                    let u = rng.random_range(0..n as u32);
                    if u as usize != v && !picks.contains(&u) {
                        picks.push(u);
                    }
                }
                (v, picks)
            })
            .collect();
        init.into_par_iter().for_each(|(v, picks)| {
            let vq = base.get(v);
            let mut list = lists[v].lock();
            for u in picks {
                let d = metric.distance(vq, base.get(u as usize));
                list.insert(u, d);
            }
        });
    }

    let sample = params.sample.max(1);
    let mut rounds = 0u64;
    let mut total_updates = 0u64;
    for iter in 0..params.max_iters {
        // Build per-node forward samples of new/old neighbors and mark the
        // sampled new ones as no longer new.
        let mut new_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            let mut rng = StdRng::seed_from_u64(
                params.seed ^ 0xA5A5_0000 ^ (iter as u64) << 32 ^ v as u64,
            );
            let mut list = lists[v].lock();
            let mut new_ids: Vec<usize> = list
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.is_new)
                .map(|(i, _)| i)
                .collect();
            new_ids.shuffle(&mut rng);
            new_ids.truncate(sample);
            for &i in &new_ids {
                list.entries[i].is_new = false;
                new_fwd[v].push(list.entries[i].neighbor.id);
            }
            let mut old_ids: Vec<u32> = list
                .entries
                .iter()
                .filter(|e| !e.is_new)
                .map(|e| e.neighbor.id)
                .collect();
            old_ids.shuffle(&mut rng);
            old_ids.truncate(sample);
            old_fwd[v] = old_ids;
        }

        // Reverse samples.
        let mut new_rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            for &u in &new_fwd[v] {
                new_rev[u as usize].push(v as u32);
            }
            for &u in &old_fwd[v] {
                old_rev[u as usize].push(v as u32);
            }
        }
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xBEEF ^ iter as u64);
        for v in 0..n {
            new_rev[v].shuffle(&mut rng);
            new_rev[v].truncate(sample);
            old_rev[v].shuffle(&mut rng);
            old_rev[v].truncate(sample);
        }

        // Local joins.
        let updates = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|v| {
            let mut news: Vec<u32> = new_fwd[v].iter().chain(&new_rev[v]).copied().collect();
            news.sort_unstable();
            news.dedup();
            let mut olds: Vec<u32> = old_fwd[v].iter().chain(&old_rev[v]).copied().collect();
            olds.sort_unstable();
            olds.dedup();

            let try_link = |a: u32, b: u32| {
                if a == b {
                    return;
                }
                let d = metric.distance(base.get(a as usize), base.get(b as usize));
                // Lock ordering by id avoids deadlock between concurrent joins.
                let (first, second) = if a < b { (a, b) } else { (b, a) };
                let mut changed = false;
                {
                    let mut fl = lists[first as usize].lock();
                    changed |= fl.insert(second, d);
                }
                {
                    let mut sl = lists[second as usize].lock();
                    changed |= sl.insert(first, d);
                }
                if changed {
                    updates.fetch_add(1, Ordering::Relaxed);
                }
            };

            for i in 0..news.len() {
                for j in (i + 1)..news.len() {
                    try_link(news[i], news[j]);
                }
                for &o in &olds {
                    try_link(news[i], o);
                }
            }
        });

        rounds += 1;
        let round_updates = updates.load(Ordering::Relaxed);
        total_updates += round_updates;
        let threshold = (params.delta * n as f64 * k as f64).ceil() as u64;
        if round_updates <= threshold {
            break;
        }
    }

    // Publish the build-pipeline metrics (rounds run, successful list
    // updates, wall time) to the process-wide registry.
    let obs = nsg_obs::global();
    obs.counter("nsg_build_nn_descent_rounds").add(rounds);
    obs.counter("nsg_build_nn_descent_updates").add(total_updates);
    obs.counter("nsg_build_nn_descent_nanos")
        .add(u64::try_from(build_started.elapsed().as_nanos()).unwrap_or(u64::MAX));

    let final_lists: Vec<Vec<ScoredNeighbor>> = lists
        .into_iter()
        .map(|m| m.into_inner().entries.into_iter().map(|e| e.neighbor).collect())
        .collect();
    KnnGraph::from_lists(final_lists, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::build_exact_knn_graph;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::{sift_like, uniform};

    #[test]
    fn nn_descent_reaches_high_recall_on_uniform_data() {
        let base = uniform(3000, 16, 11);
        let params = NnDescentParams { k: 10, sample: 8, ..Default::default() };
        let approx = build_nn_descent(&base, params, &SquaredEuclidean);
        let exact = build_exact_knn_graph(&base, 10, &SquaredEuclidean);
        let recall = approx.recall_against(&exact);
        assert!(recall > 0.85, "nn-descent recall too low: {recall}");
    }

    #[test]
    fn nn_descent_reaches_high_recall_on_clustered_data() {
        let base = sift_like(3000, 7);
        let params = NnDescentParams { k: 10, sample: 8, ..Default::default() };
        let approx = build_nn_descent(&base, params, &SquaredEuclidean);
        let exact = build_exact_knn_graph(&base, 10, &SquaredEuclidean);
        let recall = approx.recall_against(&exact);
        assert!(recall > 0.85, "nn-descent recall too low on clustered data: {recall}");
    }

    #[test]
    fn lists_have_expected_size_and_no_self_loops() {
        let base = uniform(2500, 8, 5);
        let g = build_nn_descent(&base, NnDescentParams { k: 8, ..Default::default() }, &SquaredEuclidean);
        assert_eq!(g.len(), 2500);
        for v in 0..g.len() as u32 {
            assert!(g.neighbors(v).len() <= 8);
            assert!(!g.neighbors(v).is_empty());
            assert!(g.neighbor_ids(v).all(|u| u != v));
        }
    }

    #[test]
    fn tiny_sets_fall_back_to_exact() {
        let base = uniform(30, 4, 2);
        let approx = build_nn_descent(&base, NnDescentParams { k: 5, ..Default::default() }, &SquaredEuclidean);
        let exact = build_exact_knn_graph(&base, 5, &SquaredEuclidean);
        assert_eq!(approx.recall_against(&exact), 1.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = nsg_vectors::VectorSet::new(4);
        let g = build_nn_descent(&empty, NnDescentParams::default(), &SquaredEuclidean);
        assert!(g.is_empty());
        let single = uniform(1, 4, 1);
        let g1 = build_nn_descent(&single, NnDescentParams::default(), &SquaredEuclidean);
        assert_eq!(g1.len(), 1);
        assert!(g1.neighbors(0).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed_on_small_input() {
        // The exact-fallback path and the randomized path must both be
        // reproducible for a fixed seed.
        let base = uniform(500, 8, 3);
        let p = NnDescentParams { k: 6, sample: 6, max_iters: 4, ..Default::default() };
        let a = build_nn_descent(&base, p, &SquaredEuclidean);
        let b = build_nn_descent(&base, p, &SquaredEuclidean);
        assert_eq!(a.len(), b.len());
    }
}
