//! A hand-rolled lexer for (a useful superset of) Rust's token grammar.
//!
//! The rule engine in [`crate::rules`] works at token granularity: it needs
//! to know that `unwrap` inside a string literal or a comment is *text*, not
//! a call, and that `'a` in `&'a str` is a lifetime while `'a'` is a char.
//! Full parsing (a `syn`-style AST) is unnecessary at that granularity, and
//! the offline-shim discipline forbids external crates anyway, so this module
//! implements exactly the lexical subset the rules need:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* .. */`,
//!   **including nesting**, doc or not), kept as tokens so comment-driven
//!   directives (`// lint:allow`, `// lint:hot-path`, `// SAFETY:`) work;
//! * string-ish literals: `"…"` with escapes, byte strings `b"…"`,
//!   raw strings `r"…"` / `r#"…"#` (any number of `#`s), and the raw
//!   byte/C-string spellings `br"…"`, `cr#"…"#`, `c"…"`;
//! * char literals vs lifetimes: `'x'`, `'\n'`, `b'x'` are chars, `'a` in
//!   `<'a>` / `&'a` / `'outer:` is a lifetime;
//! * identifiers (including raw idents `r#match`), numeric literals
//!   (including `1_000`, `0x4E53`, `1.5e-3`, suffixed forms), and
//!   single-character punctuation.
//!
//! Multi-character operators (`::`, `->`, `=>`) are deliberately left as
//! sequences of single-char [`TokenKind::Punct`] tokens — the rules match
//! them positionally, and splitting keeps the lexer trivially correct.
//!
//! The lexer is strict about literal termination: an unterminated string or
//! block comment is a [`LexError`], not a silently-recovered token, because a
//! mis-lexed region could hide real violations from every rule downstream.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `SearchParams`, `r#match`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`). Text includes the
    /// leading quote.
    Lifetime,
    /// Character or byte-character literal (`'x'`, `'\''`, `b'\xFF'`).
    CharLit,
    /// String-ish literal: plain, byte, C or raw in any combination.
    StrLit,
    /// Numeric literal, including suffix (`42usize`, `0x7F`, `1.5e-3`).
    NumLit,
    /// Single punctuation character (`{`, `}`, `:`, `!`, `.`; also each half
    /// of `::` and friends).
    Punct,
    /// `// …` comment, text excludes the trailing newline.
    LineComment,
    /// `/* … */` comment, nesting-aware; may span lines.
    BlockComment,
}

/// One lexed token. `text` borrows from the source; `line`/`end_line` are
/// 1-based and equal except for block comments and multi-line strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
    pub end_line: u32,
}

/// A lexing failure. Fatal for the file: rules refuse to run over a token
/// stream that might be misaligned with the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn count_newlines(s: &str) -> u32 {
    s.bytes().filter(|&b| b == b'\n').count() as u32
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn err(&self, message: &str) -> LexError {
        LexError { line: self.line, message: message.to_string() }
    }

    fn peek(&self, off: usize) -> u8 {
        *self.bytes.get(self.pos + off).unwrap_or(&0)
    }

    fn token(&self, kind: TokenKind, start: usize, start_line: u32) -> Token<'a> {
        Token { kind, text: &self.src[start..self.pos], line: start_line, end_line: self.line }
    }

    /// Consumes `// …` up to (not including) the newline.
    fn line_comment(&mut self, start: usize) -> Token<'a> {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.token(TokenKind::LineComment, start, self.line)
    }

    /// Consumes `/* … */` honouring nesting.
    fn block_comment(&mut self, start: usize) -> Result<Token<'a>, LexError> {
        let start_line = self.line;
        self.pos += 2; // opening `/*`
        let mut depth = 1usize;
        while depth > 0 {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated block comment"));
            }
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        Ok(self.token(TokenKind::BlockComment, start, start_line))
    }

    /// Consumes a `"…"` body (opening quote at `self.pos`), with escapes.
    fn escaped_string(&mut self, start: usize, start_line: u32) -> Result<Token<'a>, LexError> {
        self.pos += 1; // opening quote
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(self.token(TokenKind::StrLit, start, start_line));
                }
                Some(b'\\') => {
                    // Any escape is two bytes at the lexical level; `\u{…}`
                    // continues with `{…}` which contains no quote. A `\`
                    // before a newline is Rust's line-continuation escape —
                    // the newline still counts for line accounting.
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` with `hashes` `#`s; `self.pos` is at the
    /// opening quote.
    fn raw_string(
        &mut self,
        start: usize,
        start_line: u32,
        hashes: usize,
    ) -> Result<Token<'a>, LexError> {
        self.pos += 1; // opening quote
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated raw string literal")),
                Some(b'"') => {
                    let tail = &self.bytes[self.pos + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                        self.pos += 1 + hashes;
                        return Ok(self.token(TokenKind::StrLit, start, start_line));
                    }
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Consumes a char literal body; `self.pos` is at the opening `'`.
    fn char_body(&mut self, start: usize) -> Result<Token<'a>, LexError> {
        let start_line = self.line;
        self.pos += 1; // opening quote
        loop {
            match self.bytes.get(self.pos) {
                None | Some(b'\n') => return Err(self.err("unterminated char literal")),
                Some(b'\'') => {
                    self.pos += 1;
                    return Ok(self.token(TokenKind::CharLit, start, start_line));
                }
                Some(b'\\') => {
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// `'` dispatch: char literal or lifetime. Rust disambiguates exactly by
    /// "ident-like run followed by a closing quote": `'a'` is a char, `'a` a
    /// lifetime, `'ab` a lifetime, `'\n'` a char.
    fn quote(&mut self, start: usize) -> Result<Token<'a>, LexError> {
        let next = self.peek(1);
        if next == b'\\' || !is_ident_start(next) {
            return self.char_body(start);
        }
        // Ident-like after the quote: scan the run, then look for a close.
        let mut j = self.pos + 1;
        while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
            j += 1;
        }
        if self.bytes.get(j) == Some(&b'\'') && j - (self.pos + 1) == 1 {
            return self.char_body(start); // e.g. 'x'
        }
        self.pos = j;
        Ok(self.token(TokenKind::Lifetime, start, self.line))
    }

    /// Consumes a numeric literal starting at a digit: integer/float bodies,
    /// `_` separators, base prefixes, exponents, type suffixes.
    fn number(&mut self, start: usize) -> Token<'a> {
        loop {
            let b = self.peek(0);
            if is_ident_continue(b) {
                // Covers digits, hex digits, `_`, suffixes and the `e`/`E`
                // of an exponent.
                let at_exponent = (b == b'e' || b == b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit();
                self.pos += 1;
                if at_exponent {
                    self.pos += 1; // consume the sign too
                }
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                self.pos += 1; // decimal point of `1.5` (but not `1.max()`)
            } else {
                break;
            }
        }
        self.token(TokenKind::NumLit, start, self.line)
    }

    /// Consumes an identifier run starting at `self.pos`, handling the
    /// string-prefix forms (`r"`, `b"`, `br#"`, `c"`, …), raw idents
    /// (`r#match`) and byte chars (`b'x'`).
    fn word(&mut self, start: usize) -> Result<Token<'a>, LexError> {
        let start_line = self.line;
        let mut j = self.pos;
        while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
            j += 1;
        }
        let word = &self.src[self.pos..j];

        // String-literal prefixes: the whole literal is one token.
        let raw_capable = matches!(word, "r" | "br" | "cr");
        if raw_capable {
            let mut hashes = 0usize;
            while self.bytes.get(j + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.bytes.get(j + hashes) == Some(&b'"') {
                self.pos = j + hashes;
                return self.raw_string(start, start_line, hashes);
            }
            // Raw identifier `r#match`: one `#` then an ident run.
            if word == "r" && hashes == 1 && is_ident_start(self.peek(j + 1 - self.pos)) {
                let mut k = j + 1;
                while k < self.bytes.len() && is_ident_continue(self.bytes[k]) {
                    k += 1;
                }
                self.pos = k;
                return Ok(self.token(TokenKind::Ident, start, start_line));
            }
        }
        if matches!(word, "b" | "c") && self.bytes.get(j) == Some(&b'"') {
            self.pos = j;
            return self.escaped_string(start, start_line);
        }
        if word == "b" && self.bytes.get(j) == Some(&b'\'') {
            self.pos = j;
            return self.char_body(start);
        }

        self.pos = j;
        Ok(self.token(TokenKind::Ident, start, start_line))
    }

    fn next_token(&mut self) -> Result<Option<Token<'a>>, LexError> {
        // Skip whitespace, tracking lines.
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.bytes[self.pos];
        let tok = match b {
            b'/' if self.peek(1) == b'/' => self.line_comment(start),
            b'/' if self.peek(1) == b'*' => self.block_comment(start)?,
            b'"' => self.escaped_string(start, self.line)?,
            b'\'' => self.quote(start)?,
            _ if is_ident_start(b) => self.word(start)?,
            _ if b.is_ascii_digit() => self.number(start),
            _ => {
                // Single punctuation byte. Non-ASCII bytes only ever appear
                // inside strings/comments in this codebase; if one shows up
                // here, emitting per-byte puncts keeps positions consistent.
                self.pos += 1;
                self.token(TokenKind::Punct, start, self.line)
            }
        };
        Ok(Some(tok))
    }
}

/// Lexes `src` into a full token stream, comments included.
pub fn lex(src: &str) -> Result<Vec<Token<'_>>, LexError> {
    let mut lx = Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(tok) = lx.next_token()? {
        debug_assert_eq!(
            tok.end_line,
            tok.line + count_newlines(tok.text),
            "token line accounting must match embedded newlines"
        );
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).expect("lexes").into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::NumLit, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn number_forms() {
        for src in ["1_000", "0x4E53_4731", "1.5e-3", "2e10", "42usize", "0b1010", "3.0f32"] {
            let toks = kinds(src);
            assert_eq!(toks, vec![(TokenKind::NumLit, src)], "lexing {src:?}");
        }
        // Method call on an integer must not eat the dot.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::NumLit, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Ident, "max"));
        // A float followed by an exponent-less `e` ident boundary.
        assert_eq!(kinds("1.5 + 2")[0], (TokenKind::NumLit, "1.5"));
    }

    #[test]
    fn comments_line_and_block() {
        let toks = kinds("a // trailing unwrap()\nb /* x /* nested */ y */ c");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::LineComment, "// trailing unwrap()"),
                (TokenKind::Ident, "b"),
                (TokenKind::BlockComment, "/* x /* nested */ y */"),
                (TokenKind::Ident, "c"),
            ]
        );
    }

    #[test]
    fn block_comment_line_spans() {
        let toks = lex("/* a\nb\nc */ x").expect("lexes");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!((toks[0].line, toks[0].end_line), (1, 3));
        assert_eq!((toks[1].text, toks[1].line), ("x", 3));
    }

    #[test]
    fn strings_plain_raw_byte() {
        assert_eq!(kinds(r#""has unwrap() inside""#)[0].0, TokenKind::StrLit);
        assert_eq!(kinds(r##"r#"raw "quoted" body"#"##)[0].0, TokenKind::StrLit);
        assert_eq!(kinds("r\"raw\"")[0].0, TokenKind::StrLit);
        assert_eq!(kinds("b\"bytes\\\"esc\"")[0].0, TokenKind::StrLit);
        assert_eq!(kinds("br#\"raw bytes\"#")[0].0, TokenKind::StrLit);
        assert_eq!(kinds(r#""esc \" quote""#)[0].0, TokenKind::StrLit);
        // The text of the literal is the full source form.
        assert_eq!(kinds(r##"r#"a"#"##)[0].1, r##"r#"a"#"##);
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'x'")[0], (TokenKind::CharLit, "'x'"));
        assert_eq!(kinds(r"'\n'")[0], (TokenKind::CharLit, r"'\n'"));
        assert_eq!(kinds(r"'\''")[0], (TokenKind::CharLit, r"'\''"));
        assert_eq!(kinds("b'x'")[0], (TokenKind::CharLit, "b'x'"));
        let toks = kinds("&'a str");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(kinds("<'static>")[1], (TokenKind::Lifetime, "'static"));
        assert_eq!(kinds("'outer: loop")[0], (TokenKind::Lifetime, "'outer"));
        // A char immediately followed by more tokens: `'e' =>`.
        let toks = kinds("'e' => x");
        assert_eq!(toks[0], (TokenKind::CharLit, "'e'"));
    }

    #[test]
    fn raw_idents() {
        assert_eq!(kinds("r#match")[0], (TokenKind::Ident, "r#match"));
        // `r` alone is a plain ident.
        assert_eq!(kinds("r + 1")[0], (TokenKind::Ident, "r"));
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("r#\"open").is_err());
        assert!(lex("'\\").is_err());
    }

    #[test]
    fn forbidden_words_inside_literals_are_not_idents() {
        let src = r#"let s = "call .unwrap() and panic!"; // also unwrap()"#;
        let idents: Vec<&str> = lex(src)
            .expect("lexes")
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }
}
