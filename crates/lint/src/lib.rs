//! `nsg-lint` — the project-invariant static-analysis gate.
//!
//! PRs 2–5 of this reproduction established contracts that keep the system
//! faithful to the paper and fast — a zero-allocation warm search path,
//! a single effort→[`SearchParams`] conversion site, checked narrowing in
//! every decode path, no `dyn Distance` on the query path. This crate makes
//! those contracts *mechanically* true on every `cargo test`: a hand-rolled
//! lexer ([`lexer`]) feeds a token-level rule engine ([`rules`]) that walks
//! every `.rs` file in the workspace and reports `file:line` diagnostics.
//!
//! Three comment-driven directives steer the engine:
//!
//! * `// lint:hot-path` — marks the next block (or the rest of the line's
//!   item) as a hot region where rule R2 forbids allocating calls;
//! * `// lint:allow(<rule>[, <rule>…]): <reason>` — suppresses findings of
//!   the named rules on the directive's target line. The reason is
//!   mandatory; a bare allow is itself reported (as `bad-allow`) and cannot
//!   be suppressed;
//! * `// SAFETY:` — the justification rule R4 requires adjacent to every
//!   `unsafe` (also accepted: a `/// # Safety` doc section on an
//!   `unsafe fn`).
//!
//! Entry points: [`lint_workspace`] for the gate test and the CLI, and
//! [`lint_source`] for rule unit tests over in-memory snippets.

pub mod lexer;
pub mod rules;

use lexer::{lex, Token, TokenKind};
use std::path::{Path, PathBuf};

/// Coarse classification of a source file by its path. Several rules only
/// apply to `Library` code: test, bench and binary code legitimately
/// unwraps, spawns threads and constructs params directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipped library code — the default, and the strictest class.
    Library,
    /// Integration tests (`tests/`) and anything under a `tests/` dir.
    Test,
    /// Criterion-style benches (`benches/`).
    Bench,
    /// Binaries and examples (`src/bin/`, `src/main.rs`, `examples/`),
    /// plus build scripts.
    BinOrExample,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.contains(&"tests") {
        FileClass::Test
    } else if parts.contains(&"benches") {
        FileClass::Bench
    } else if parts.contains(&"examples")
        || rel_path.contains("/src/bin/")
        || rel_path.starts_with("src/bin/")
        || rel_path.ends_with("src/main.rs")
        || rel_path.ends_with("build.rs")
    {
        FileClass::BinOrExample
    } else {
        FileClass::Library
    }
}

/// A parsed `// lint:allow(<rules>): <reason>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule names the directive suppresses.
    pub rules: Vec<String>,
    /// Mandatory human justification.
    pub reason: String,
    /// Line the suppression applies to (the directive's own line for a
    /// trailing comment, the next code line for a standalone comment).
    pub target_line: u32,
    /// Line the directive itself sits on (for `--list-allows`).
    pub comment_line: u32,
}

/// A single diagnostic: rule name + location + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.rel_path, self.line, self.rule, self.message)
    }
}

/// One analyzed source file: token stream plus the derived region maps the
/// rules consume.
pub struct SourceFile<'a> {
    pub rel_path: String,
    pub class: FileClass,
    /// Full token stream, comments included.
    pub tokens: Vec<Token<'a>>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Per-token: inside a `#[test]`/`#[cfg(test)]`-attributed item body.
    in_test: Vec<bool>,
    /// Per-token: inside a `// lint:hot-path` region.
    in_hot: Vec<bool>,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// Findings produced during analysis itself (malformed directives).
    directive_findings: Vec<Finding>,
}

impl<'a> SourceFile<'a> {
    /// Kind of the `i`-th *code* token; `Punct('\0')`-like sentinel (an
    /// empty-text Punct) past the end so rules can look ahead freely.
    pub fn code_kind(&self, ci: usize) -> TokenKind {
        self.code.get(ci).map_or(TokenKind::Punct, |&ti| self.tokens[ti].kind)
    }

    /// Text of the `i`-th code token ("" past the end).
    pub fn code_text(&self, ci: usize) -> &'a str {
        self.code.get(ci).map_or("", |&ti| self.tokens[ti].text)
    }

    /// Start line of the `i`-th code token (0 past the end).
    pub fn code_line(&self, ci: usize) -> u32 {
        self.code.get(ci).map_or(0, |&ti| self.tokens[ti].line)
    }

    /// Whether the `i`-th code token is inside a test-attributed body.
    pub fn code_in_test(&self, ci: usize) -> bool {
        self.code.get(ci).is_some_and(|&ti| self.in_test[ti])
    }

    /// Whether the `i`-th code token is inside a hot-path region.
    pub fn code_in_hot(&self, ci: usize) -> bool {
        self.code.get(ci).is_some_and(|&ti| self.in_hot[ti])
    }

    /// True if the code token is the punctuation `p`.
    pub fn code_is(&self, ci: usize, p: &str) -> bool {
        self.code_kind(ci) == TokenKind::Punct && self.code_text(ci) == p
    }

    /// True if code tokens `ci, ci+1` spell `::`.
    pub fn code_is_pathsep(&self, ci: usize) -> bool {
        self.code_is(ci, ":") && self.code_is(ci + 1, ":")
    }
}

/// Analyzes one source file: lexes, derives test/hot regions, parses allow
/// directives. `Err` carries a lex failure as a `parse` finding.
pub fn analyze<'a>(rel_path: &str, src: &'a str, class: FileClass) -> Result<SourceFile<'a>, Finding> {
    let tokens = lex(src).map_err(|e| Finding {
        rule: "parse",
        rel_path: rel_path.to_string(),
        line: e.line,
        message: format!("failed to lex: {}", e.message),
    })?;
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut sf = SourceFile {
        rel_path: rel_path.to_string(),
        class,
        in_test: vec![false; tokens.len()],
        in_hot: vec![false; tokens.len()],
        tokens,
        code,
        allows: Vec::new(),
        directive_findings: Vec::new(),
    };
    mark_test_regions(&mut sf);
    mark_hot_regions(&mut sf);
    parse_allows(&mut sf);
    Ok(sf)
}

/// Extracts directive text from a comment token: directives are plain `//`
/// comments (not `///` / `//!` docs — prose there may *mention* a directive)
/// whose text begins with `lint:` after the marker. Returns the trimmed
/// remainder.
fn directive_text(comment: &str) -> Option<&str> {
    let rest = comment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    let rest = rest.trim_start();
    rest.starts_with("lint:").then_some(rest)
}

/// Starting from code index `ci`, finds the body of the item that follows:
/// the first `{` at bracket depth 0 (skipping over `(…)`/`[…]` groups, e.g.
/// argument lists and further attributes). Returns the code-index range of
/// the body *including* both braces, or `None` if a depth-0 `;` ends the
/// item first (e.g. a declaration).
fn item_body(sf: &SourceFile<'_>, mut ci: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    while ci < sf.code.len() {
        let t = sf.code_text(ci);
        if sf.code_kind(ci) == TokenKind::Punct {
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return matching_brace(sf, ci).map(|close| (ci, close)),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        ci += 1;
    }
    None
}

/// Given the code index of a `{`, returns the code index of its matching
/// `}` (or `None` on imbalance — the rules then treat the region as running
/// to end-of-file, the conservative choice).
fn matching_brace(sf: &SourceFile<'_>, open_ci: usize) -> Option<usize> {
    let mut depth = 0usize;
    for ci in open_ci..sf.code.len() {
        match sf.code_text(ci) {
            "{" if sf.code_kind(ci) == TokenKind::Punct => depth += 1,
            "}" if sf.code_kind(ci) == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            _ => {}
        }
    }
    None
}

fn mark_range(flags: &mut [bool], sf_code: &[usize], from_ci: usize, to_ci: usize) {
    for &ti in &sf_code[from_ci..=to_ci.min(sf_code.len() - 1)] {
        flags[ti] = true;
    }
}

/// Marks token spans covered by `#[test]`- / `#[cfg(test)]`- / `#[bench]`-
/// attributed items (functions or whole `mod tests { … }` bodies).
fn mark_test_regions(sf: &mut SourceFile<'_>) {
    let mut ci = 0usize;
    while ci < sf.code.len() {
        if sf.code_is(ci, "#") && sf.code_is(ci + 1, "[") {
            // Scan the attribute to its closing `]`, collecting idents.
            let mut depth = 0usize;
            let mut j = ci + 1;
            let mut is_test_attr = false;
            while j < sf.code.len() {
                match sf.code_text(j) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" | "bench" if sf.code_kind(j) == TokenKind::Ident => {
                        is_test_attr = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                if let Some((open, close)) = item_body(sf, j + 1) {
                    let code = std::mem::take(&mut sf.code);
                    mark_range(&mut sf.in_test, &code, open, close);
                    sf.code = code;
                }
            }
            ci = j + 1;
        } else {
            ci += 1;
        }
    }
}

/// Marks the region introduced by each `// lint:hot-path` comment: the next
/// `{…}` body at depth 0.
fn mark_hot_regions(sf: &mut SourceFile<'_>) {
    let directive_tis: Vec<usize> = sf
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.kind == TokenKind::LineComment
                && directive_text(t.text).is_some_and(|d| d.starts_with("lint:hot-path"))
        })
        .map(|(ti, _)| ti)
        .collect();
    for ti in directive_tis {
        // First code token after the directive.
        let start_ci = match sf.code.iter().position(|&cti| cti > ti) {
            Some(ci) => ci,
            None => {
                sf.directive_findings.push(Finding {
                    rule: "bad-allow",
                    rel_path: sf.rel_path.clone(),
                    line: sf.tokens[ti].line,
                    message: "lint:hot-path directive with no following item".to_string(),
                });
                continue;
            }
        };
        match item_body(sf, start_ci) {
            Some((open, close)) => {
                let code = std::mem::take(&mut sf.code);
                mark_range(&mut sf.in_hot, &code, open, close);
                sf.code = code;
            }
            None => sf.directive_findings.push(Finding {
                rule: "bad-allow",
                rel_path: sf.rel_path.clone(),
                line: sf.tokens[ti].line,
                message: "lint:hot-path directive not followed by a braced body".to_string(),
            }),
        }
    }
}

/// Parses `// lint:allow(<rules>): <reason>` directives; malformed ones
/// become non-suppressible `bad-allow` findings.
fn parse_allows(sf: &mut SourceFile<'_>) {
    for ti in 0..sf.tokens.len() {
        let t = sf.tokens[ti];
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let Some(directive) = directive_text(t.text) else { continue };
        if !directive.starts_with("lint:allow") {
            continue;
        }
        let bad = |sf: &mut SourceFile<'_>, msg: String| {
            sf.directive_findings.push(Finding {
                rule: "bad-allow",
                rel_path: sf.rel_path.clone(),
                line: t.line,
                message: msg,
            });
        };
        let Some(rest) = directive.strip_prefix("lint:allow(") else {
            bad(sf, "malformed lint:allow (expected `lint:allow(<rule>): <reason>`)".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(sf, "lint:allow missing closing `)`".to_string());
            continue;
        };
        let rule_list = &rest[..close];
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            bad(sf, "lint:allow without a `:` reason — a bare allow is itself a violation".to_string());
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            bad(sf, "lint:allow with an empty reason — a bare allow is itself a violation".to_string());
            continue;
        }
        let rules: Vec<String> =
            rule_list.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
        if rules.is_empty() {
            bad(sf, "lint:allow names no rules".to_string());
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !rules::KNOWN_RULES.contains(&r.as_str()) {
                bad(sf, format!("lint:allow names unknown rule `{r}`"));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // Trailing comment (code earlier on the same line) suppresses its
        // own line; a standalone comment suppresses the next code line.
        let trailing = ti > 0
            && !matches!(sf.tokens[ti - 1].kind, TokenKind::LineComment)
            && sf.tokens[ti - 1].end_line == t.line;
        let target_line = if trailing {
            t.line
        } else {
            sf.code
                .iter()
                .find(|&&cti| cti > ti)
                .map_or(t.line + 1, |&cti| sf.tokens[cti].line)
        };
        sf.allows.push(Allow {
            rules,
            reason: reason.to_string(),
            target_line,
            comment_line: t.line,
        });
    }
}

/// Result of linting a tree: every finding (after suppression), every allow
/// in force, and the file count for reporting.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// `(rel_path, allow)` for each directive, for `--list-allows`.
    pub allows: Vec<(String, Allow)>,
    pub files_scanned: usize,
}

/// Lints a single in-memory source. Used by the CLI per file and by rule
/// unit tests. Returns findings after allow suppression, plus the allows.
pub fn lint_source(rel_path: &str, src: &str, class: FileClass) -> (Vec<Finding>, Vec<Allow>) {
    let sf = match analyze(rel_path, src, class) {
        Ok(sf) => sf,
        Err(finding) => return (vec![finding], Vec::new()),
    };
    let mut findings = rules::check_file(&sf);
    findings.extend(sf.directive_findings.iter().cloned());
    // Suppress: an allow kills findings of its rules on its target line.
    // `bad-allow` and `parse` are never suppressible.
    findings.retain(|f| {
        if f.rule == "bad-allow" || f.rule == "parse" {
            return true;
        }
        !sf.allows
            .iter()
            .any(|a| a.target_line == f.line && a.rules.iter().any(|r| r == f.rule))
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, sf.allows)
}

/// Recursively collects workspace `.rs` files under `root`, skipping
/// `target/`, VCS metadata and hidden directories. Sorted for determinism.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root` (the workspace checkout). I/O or lex
/// failures surface as findings so the gate can't silently skip a file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let class = classify(&rel);
        let (findings, allows) = lint_source(&rel, &src, class);
        report.findings.extend(findings);
        report.allows.extend(allows.into_iter().map(|a| (rel.clone(), a)));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    Ok(report)
}
