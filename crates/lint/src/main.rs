//! `nsg-lint` CLI — runs the project-invariant gate over a workspace tree.
//!
//! ```text
//! nsg-lint [--workspace] [--list-allows] [ROOT]
//! ```
//!
//! * default / `--workspace`: lint every `.rs` file under ROOT (default `.`),
//!   print `file:line: [rule] message` per finding, exit 1 if any.
//! * `--list-allows`: print every `lint:allow` suppression in force with its
//!   reason (for auditing drift), exit 0.
//!
//! The same engine backs `tests/lint_gate.rs`, so CI's `lint-gate` step and
//! tier-1 can never disagree.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut list_allows = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => {} // default (and only) scope; kept for clarity in CI
            "--list-allows" => list_allows = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("nsg-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("nsg-lint: more than one ROOT argument");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match nsg_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nsg-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list_allows {
        for (path, allow) in &report.allows {
            println!(
                "{}:{}: [{}] {}",
                path,
                allow.comment_line,
                allow.rules.join(", "),
                allow.reason
            );
        }
        println!("nsg-lint: {} suppression(s) in force", report.allows.len());
        return ExitCode::SUCCESS;
    }

    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        println!(
            "nsg-lint: {} file(s), 0 violations, {} suppression(s)",
            report.files_scanned,
            report.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "nsg-lint: {} violation(s) across {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!("nsg-lint — project-invariant static-analysis gate");
    println!();
    println!("usage: nsg-lint [--workspace] [--list-allows] [ROOT]");
    println!();
    println!("rules:");
    for rule in &nsg_lint::rules::RULES {
        println!("  {:20} {}", rule.name, rule.summary);
    }
    println!();
    println!("suppress a finding with `// lint:allow(<rule>): <reason>` (reason required);");
    println!("mark a zero-allocation region with `// lint:hot-path` before its fn or block.");
}
