//! The rule set: eight token-level checks encoding the ROADMAP contracts.
//!
//! | rule | name                 | contract |
//! |------|----------------------|----------|
//! | R1   | `params-construction`| `SearchParams` is only built inside nsg-core's request/search modules |
//! | R2   | `hot-path-alloc`     | no allocating calls inside `// lint:hot-path` regions |
//! | R3   | `checked-narrowing`  | no bare `as u8/u16/u32/u64` in decode-path files |
//! | R4   | `safety-comment`     | every `unsafe` is adjacent to a `// SAFETY:` justification |
//! | R5   | `std-sync`           | raw `std::sync` primitives / `thread::spawn` only in `shims/` + `crates/serve` |
//! | R6   | `no-panic`           | no `unwrap()` / `expect()` / `panic!` in library code |
//! | R7   | `dyn-distance`       | no `dyn Distance` / `.metric()` outside the audited dispatch module |
//! | R8   | `simd-dispatch`      | `#[target_feature]` only in the SIMD module; no kernel-table resolution in hot regions |
//!
//! All rules run over the analyzed token stream of [`SourceFile`], so text
//! inside strings and comments can never fire them. Suppression via
//! `// lint:allow(<name>): <reason>` is handled by the caller
//! ([`crate::lint_source`]).

use crate::lexer::TokenKind;
use crate::{FileClass, Finding, SourceFile};

/// Names accepted by `lint:allow(...)`.
pub const KNOWN_RULES: [&str; 8] = [
    "params-construction",
    "hot-path-alloc",
    "checked-narrowing",
    "safety-comment",
    "std-sync",
    "no-panic",
    "dyn-distance",
    "simd-dispatch",
];

/// One row of the rule table, for `--help`-style output and the README.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// Rule descriptions in R1..R8 order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        name: "params-construction",
        summary: "SearchParams may only be constructed in nsg-core's request/search modules",
    },
    RuleInfo {
        name: "hot-path-alloc",
        summary: "no allocating calls inside `// lint:hot-path` regions",
    },
    RuleInfo {
        name: "checked-narrowing",
        summary: "no bare `as u8/u16/u32/u64` in decode-path files (use checked narrowing)",
    },
    RuleInfo {
        name: "safety-comment",
        summary: "every `unsafe` must be immediately preceded by a `// SAFETY:` comment",
    },
    RuleInfo {
        name: "std-sync",
        summary: "raw std::sync primitives / thread::spawn only in shims/ and crates/serve",
    },
    RuleInfo {
        name: "no-panic",
        summary: "no unwrap()/expect()/panic! in library (non-test/bench/bin) code",
    },
    RuleInfo {
        name: "dyn-distance",
        summary: "no `dyn Distance` / `.metric()` call sites outside the audited dispatch module",
    },
    RuleInfo {
        name: "simd-dispatch",
        summary: "`#[target_feature]` only inside the SIMD module; no kernel-table resolution in hot-path regions",
    },
];

/// Files whose job *is* constructing [`SearchParams`]: the request mapping
/// (`SearchRequest::params()`) and the definition site itself.
const R1_EXEMPT_FILES: [&str; 2] = ["crates/core/src/index.rs", "crates/core/src/search.rs"];

/// Decode-path files rule R3 audits. Everything read from bytes or foreign
/// formats flows through these.
const R3_FILES: [&str; 5] = [
    "crates/core/src/serialize.rs",
    "crates/core/src/format.rs",
    "crates/core/src/snapshot.rs",
    "crates/vectors/src/quant.rs",
    "crates/vectors/src/io.rs",
];

/// The one module allowed to name `dyn Distance` / expose `.metric()`: the
/// audited dispatch layer from PR 5.
const R7_EXEMPT_FILES: [&str; 1] = ["crates/vectors/src/distance.rs"];

fn finding(sf: &SourceFile<'_>, rule: &'static str, line: u32, message: String) -> Finding {
    Finding { rule, rel_path: sf.rel_path.clone(), line, message }
}

fn is_shim(sf: &SourceFile<'_>) -> bool {
    sf.rel_path.starts_with("shims/")
}

/// Runs every applicable rule over one analyzed file.
pub fn check_file(sf: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    r1_params_construction(sf, &mut out);
    r2_hot_path_alloc(sf, &mut out);
    r3_checked_narrowing(sf, &mut out);
    r4_safety_comment(sf, &mut out);
    r5_std_sync(sf, &mut out);
    r6_no_panic(sf, &mut out);
    r7_dyn_distance(sf, &mut out);
    r8_simd_dispatch(sf, &mut out);
    out
}

/// R1: `SearchParams {` / `SearchParams::new` outside the audited modules.
/// Tier-1 ensures every effort knob flows through `SearchRequest::params()`.
fn r1_params_construction(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    if sf.class != FileClass::Library || R1_EXEMPT_FILES.contains(&sf.rel_path.as_str()) {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.code_in_test(ci)
            || sf.code_kind(ci) != TokenKind::Ident
            || sf.code_text(ci) != "SearchParams"
        {
            continue;
        }
        let construction = sf.code_is(ci + 1, "{")
            || (sf.code_is_pathsep(ci + 1) && sf.code_text(ci + 3) == "new");
        if construction {
            out.push(finding(
                sf,
                "params-construction",
                sf.code_line(ci),
                "SearchParams constructed outside nsg-core request/search modules — route through SearchRequest::params()".to_string(),
            ));
        }
    }
}

/// Allocating constructors R2 forbids when spelled `Type::method`.
const R2_ALLOC_TYPES: [&str; 7] =
    ["Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap"];
const R2_ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Allocating methods R2 forbids when spelled `.method(`.
const R2_ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "collect", "clone"];

/// R2: allocation inside a `// lint:hot-path` region — the static complement
/// to `tests/alloc_guard.rs`' tracking allocator.
fn r2_hot_path_alloc(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    for ci in 0..sf.code.len() {
        if !sf.code_in_hot(ci) {
            continue;
        }
        let t = sf.code_text(ci);
        let hit = match sf.code_kind(ci) {
            TokenKind::Ident if (t == "vec" || t == "format") && sf.code_is(ci + 1, "!") => {
                Some(format!("`{t}!` macro allocates"))
            }
            TokenKind::Ident
                if R2_ALLOC_TYPES.contains(&t)
                    && sf.code_is_pathsep(ci + 1)
                    && R2_ALLOC_CTORS.contains(&sf.code_text(ci + 3)) =>
            {
                Some(format!("`{}::{}` allocates", t, sf.code_text(ci + 3)))
            }
            TokenKind::Ident
                if R2_ALLOC_METHODS.contains(&t)
                    && ci > 0
                    && sf.code_is(ci - 1, ".")
                    && sf.code_is(ci + 1, "(") =>
            {
                Some(format!("`.{t}()` allocates"))
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push(finding(
                sf,
                "hot-path-alloc",
                sf.code_line(ci),
                format!("{what} inside a lint:hot-path region"),
            ));
        }
    }
}

/// R3: bare `as u8/u16/u32/u64` in decode-path files. Narrowing must go
/// through `try_from` + a typed error (`SerializeError::TooLarge` /
/// `IoError::Format`); deliberate widenings take a `lint:allow` with the
/// reason spelled out.
fn r3_checked_narrowing(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    if !R3_FILES.contains(&sf.rel_path.as_str()) {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.code_in_test(ci) || sf.code_text(ci) != "as" {
            continue;
        }
        let target = sf.code_text(ci + 1);
        if matches!(target, "u8" | "u16" | "u32" | "u64") {
            out.push(finding(
                sf,
                "checked-narrowing",
                sf.code_line(ci),
                format!("bare `as {target}` in a decode path — use try_from with a typed error"),
            ));
        }
    }
}

/// How many lines above an `unsafe` token a SAFETY comment may sit (allows
/// a `#[cfg…]` attribute or multi-line justification between them).
const R4_SAFETY_WINDOW: u32 = 5;

/// R4: every `unsafe` keyword (block, fn, impl) needs an adjacent
/// justification: a comment containing `SAFETY` (or an `unsafe fn`'s
/// `/// # Safety` doc section) ending within [`R4_SAFETY_WINDOW`] lines
/// above it. Applies to *all* file classes — tests and shims carry the same
/// proof obligations.
fn r4_safety_comment(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    for ci in 0..sf.code.len() {
        if sf.code_kind(ci) != TokenKind::Ident || sf.code_text(ci) != "unsafe" {
            continue;
        }
        let line = sf.code_line(ci);
        let ti = sf.code[ci];
        let min_line = line.saturating_sub(R4_SAFETY_WINDOW);
        let justified = sf.tokens[..ti]
            .iter()
            .rev()
            .take_while(|t| t.end_line >= min_line)
            .any(|t| {
                matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                    && (t.text.contains("SAFETY") || t.text.contains("# Safety"))
            });
        if !justified {
            out.push(finding(
                sf,
                "safety-comment",
                line,
                "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
            ));
        }
    }
}

const R5_PRIMITIVES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// R5: raw `std::sync::{Mutex,RwLock,Condvar}` / `std::thread::spawn` outside
/// `shims/` and `crates/serve/`. Library code goes through the parking_lot /
/// rayon shims so a future swap to the real crates is one Cargo.toml line.
fn r5_std_sync(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    if sf.class != FileClass::Library || is_shim(sf) || sf.rel_path.starts_with("crates/serve/") {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.code_in_test(ci) || sf.code_kind(ci) != TokenKind::Ident {
            continue;
        }
        match sf.code_text(ci) {
            // `std::sync::X` or `std::sync::{..., X, ...}`
            "std" if sf.code_is_pathsep(ci + 1)
                && sf.code_text(ci + 3) == "sync"
                && sf.code_is_pathsep(ci + 4) =>
            {
                let after = ci + 6;
                if R5_PRIMITIVES.contains(&sf.code_text(after)) {
                    out.push(finding(
                        sf,
                        "std-sync",
                        sf.code_line(after),
                        format!(
                            "raw std::sync::{} outside shims/ and crates/serve — use the parking_lot shim",
                            sf.code_text(after)
                        ),
                    ));
                } else if sf.code_is(after, "{") {
                    let mut j = after + 1;
                    while j < sf.code.len() && !sf.code_is(j, "}") {
                        if R5_PRIMITIVES.contains(&sf.code_text(j)) {
                            out.push(finding(
                                sf,
                                "std-sync",
                                sf.code_line(j),
                                format!(
                                    "raw std::sync::{} outside shims/ and crates/serve — use the parking_lot shim",
                                    sf.code_text(j)
                                ),
                            ));
                        }
                        j += 1;
                    }
                }
            }
            // `thread::spawn` (covers the `std::thread::spawn` tail too).
            "thread" if sf.code_is_pathsep(ci + 1) && sf.code_text(ci + 3) == "spawn" => {
                out.push(finding(
                    sf,
                    "std-sync",
                    sf.code_line(ci),
                    "thread::spawn outside shims/ and crates/serve — use the rayon shim or serve's workers"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Panicking macros R6 forbids.
const R6_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// R6: `unwrap()` / `expect()` / `panic!`-family in library code. Shims are
/// exempt (a parking_lot shim must unwrap poison to mirror the real API);
/// `crates/bench` is exempt as an experiment harness.
fn r6_no_panic(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    if sf.class != FileClass::Library || is_shim(sf) || sf.rel_path.starts_with("crates/bench/") {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.code_in_test(ci) || sf.code_kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = sf.code_text(ci);
        if (t == "unwrap" || t == "expect")
            && ci > 0
            && sf.code_is(ci - 1, ".")
            && sf.code_is(ci + 1, "(")
        {
            out.push(finding(
                sf,
                "no-panic",
                sf.code_line(ci),
                format!("`.{t}()` in library code — propagate a typed error instead"),
            ));
        } else if R6_MACROS.contains(&t) && sf.code_is(ci + 1, "!") {
            out.push(finding(
                sf,
                "no-panic",
                sf.code_line(ci),
                format!("`{t}!` in library code — propagate a typed error instead"),
            ));
        }
    }
}

/// R7: `dyn Distance` or a `.metric()` call outside the audited dispatch
/// module. PR 5 monomorphized the query path through `DistanceKind::dispatch`;
/// trait objects must not creep back in.
fn r7_dyn_distance(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    if sf.class != FileClass::Library || R7_EXEMPT_FILES.contains(&sf.rel_path.as_str()) {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.code_in_test(ci) || sf.code_kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = sf.code_text(ci);
        if t == "dyn" && sf.code_text(ci + 1) == "Distance" {
            out.push(finding(
                sf,
                "dyn-distance",
                sf.code_line(ci),
                "`dyn Distance` outside the audited dispatch module — use DistanceKind::dispatch"
                    .to_string(),
            ));
        } else if t == "metric"
            && ci > 0
            && sf.code_is(ci - 1, ".")
            && sf.code_is(ci + 1, "(")
        {
            out.push(finding(
                sf,
                "dyn-distance",
                sf.code_line(ci),
                "`.metric()` call outside the audited dispatch module".to_string(),
            ));
        }
    }
}

/// The one module allowed to write `#[target_feature]` kernels: the SIMD
/// dispatch layer, where every such function is reachable only through the
/// runtime-detection table.
const R8_EXEMPT_FILES: [&str; 1] = ["crates/vectors/src/simd.rs"];

/// Identifiers that resolve or re-check the kernel table / CPU features.
/// Fine on setup paths; forbidden inside `lint:hot-path` regions, where the
/// table must already have been resolved (at `prepare_query` at the latest).
const R8_DETECT_IDENTS: [&str; 4] =
    ["kernels", "table_for", "is_x86_feature_detected", "is_aarch64_feature_detected"];

/// R8: SIMD dispatch discipline. Two arms:
///
/// 1. `#[target_feature]` outside the audited SIMD module — unsafe-to-call
///    kernels must only exist where the detection-table invariant (installed
///    after runtime feature checks) justifies them.
/// 2. Kernel-table resolution (`kernels()`, `table_for()`, the `std::arch`
///    feature-detection macros) inside a `lint:hot-path` region — selection
///    must happen outside the per-candidate loop.
fn r8_simd_dispatch(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let exempt = R8_EXEMPT_FILES.contains(&sf.rel_path.as_str()) || is_shim(sf);
    for ci in 0..sf.code.len() {
        if sf.code_kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = sf.code_text(ci);
        if !exempt && t == "target_feature" {
            out.push(finding(
                sf,
                "simd-dispatch",
                sf.code_line(ci),
                "`#[target_feature]` outside crates/vectors/src/simd.rs — SIMD kernels live behind the detection table".to_string(),
            ));
        } else if R8_DETECT_IDENTS.contains(&t) && sf.code_in_hot(ci) {
            out.push(finding(
                sf,
                "simd-dispatch",
                sf.code_line(ci),
                format!(
                    "`{t}` inside a lint:hot-path region — resolve the kernel table per prepare_query, not per candidate"
                ),
            ));
        }
    }
}
