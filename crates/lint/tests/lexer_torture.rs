//! Lexer torture: property tests that forbidden tokens embedded *inside*
//! string literals, raw strings, char literals and (nested) comments never
//! make a rule misfire, and that a real violation among such noise is still
//! found on the right line.

use nsg_lint::{lint_source, FileClass};
use proptest::prelude::*;

const LIB: &str = "crates/core/src/torture.rs";

/// Single-line fragments that are saturated with forbidden spellings, every
/// one of them quoted or commented away. Each must lint clean on its own.
const BENIGN: &[&str] = &[
    r#"let a = "call .unwrap() then panic!(now)";"#,
    r##"let b = r#"raw "quoted" .expect("x") SearchParams::new(1,1)"#;"##,
    r#"let c = b"std::sync::Mutex dyn Distance as u32";"#,
    r#"let d = 'u'; let e = '\''; let f = b'\xFF';"#,
    "// comment discussing x.unwrap() and std::thread::spawn",
    "/* block with vec![0; 9] and Box::new(()) inside */",
    "/* nested /* .collect() panic!(\"deep\") */ still comment */",
    r#"let g = "escaped \" quote .to_vec() \" end";"#,
    r#"let h: &str = "lifetime 'a vs char, unsafe { } in text";"#,
    "let i = 0x4E53_4731u64; let j = 1.5e-3f32;",
    r#"println!("{} {}", "expect(", "unwrap(");"#,
    "let k = r\"raw with todo!() and unimplemented!()\";",
];

/// Joins fragments (one per line) into a compilable-looking fn body.
fn assemble(lines: &[&str]) -> String {
    let mut src = String::from("fn torture(x: Option<u32>) {\n");
    for l in lines {
        src.push_str(l);
        src.push('\n');
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of literal/comment-quoted forbidden tokens yields zero
    /// findings: the lexer must never leak them out as code idents.
    #[test]
    fn quoted_forbidden_tokens_never_fire(picks in proptest::collection::vec(0usize..BENIGN.len(), 0..24)) {
        let lines: Vec<&str> = picks.iter().map(|&i| BENIGN[i]).collect();
        let src = assemble(&lines);
        let (findings, allows) = lint_source(LIB, &src, FileClass::Library);
        prop_assert!(findings.is_empty(), "false positives on {src:?}: {findings:?}");
        prop_assert!(allows.is_empty());
    }

    /// One real violation hidden among the noise is still found, exactly
    /// once, on exactly the right line.
    #[test]
    fn real_violation_among_noise_is_located(
        picks in proptest::collection::vec(0usize..BENIGN.len(), 1..16),
        at in 0usize..16,
    ) {
        let mut lines: Vec<&str> = picks.iter().map(|&i| BENIGN[i]).collect();
        let at = at % (lines.len() + 1);
        lines.insert(at, "let v = x.unwrap();");
        let src = assemble(&lines);
        let (findings, _) = lint_source(LIB, &src, FileClass::Library);
        prop_assert_eq!(findings.len(), 1, "want exactly one finding in {}: {:?}", src, findings);
        prop_assert_eq!(findings[0].rule, "no-panic");
        // Line 1 is the fn header; fragment i sits on line i + 2.
        prop_assert_eq!(findings[0].line as usize, at + 2);
    }
}

/// Multi-line literals and comments keep line accounting straight: a
/// violation *after* them is still reported on its true source line.
#[test]
fn multiline_literals_keep_line_numbers_aligned() {
    let src = "fn f(x: Option<u32>) {\n\
               let a = \"line one\nline two\nline three\";\n\
               /* block\nspanning\nlines */\n\
               let b = r#\"raw\nmulti\"#;\n\
               x.unwrap();\n\
               }\n";
    let (findings, _) = lint_source(LIB, src, FileClass::Library);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "no-panic");
    // Header(1) + 3 string lines + 3 comment lines + 2 raw-string lines → 10.
    assert_eq!(findings[0].line, 10);
}
