//! Per-rule coverage: for each of R1–R8 one violating snippet and one
//! allowed/suppressed snippet, plus the directive edge cases (bad allows,
//! trailing vs standalone targeting).

use nsg_lint::{lint_source, FileClass};

/// Lints `src` as library code at `path`, returning the rule names found.
fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
    let (findings, _) = lint_source(path, src, nsg_lint::classify(path));
    findings.iter().map(|f| f.rule).collect()
}

const LIB: &str = "crates/core/src/example.rs";

#[test]
fn r1_flags_params_construction_outside_core() {
    let src = "fn f() { let p = SearchParams::new(10, 5); }";
    assert_eq!(rules_at("crates/baselines/src/x.rs", src), ["params-construction"]);
    let src = "fn f() { let p = SearchParams { pool_size: 3 }; }";
    assert_eq!(rules_at("crates/eval/src/x.rs", src), ["params-construction"]);
}

#[test]
fn r1_allows_audited_modules_suppressions_and_tests() {
    let src = "fn f() { let p = SearchParams::new(10, 5); }";
    // The definition/request modules are the audited construction sites.
    assert_eq!(rules_at("crates/core/src/search.rs", src), [] as [&str; 0]);
    // A reasoned allow suppresses.
    let src = "fn f() { let p = SearchParams::new(10, 5); } // lint:allow(params-construction): build-time params";
    assert_eq!(rules_at("crates/baselines/src/x.rs", src), [] as [&str; 0]);
    // Test code is out of scope: mention of the type in a test body is fine.
    let src = "#[cfg(test)]\nmod tests {\n fn f() { let p = SearchParams::new(1, 1); }\n}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // Plain *use* (no construction) is fine anywhere.
    assert_eq!(rules_at(LIB, "fn f(p: SearchParams) -> usize { p.pool_size }"), [] as [&str; 0]);
}

#[test]
fn r2_flags_allocation_only_inside_hot_regions() {
    let hot = "// lint:hot-path\nfn f() {\n let v: Vec<u32> = Vec::new();\n}";
    assert_eq!(rules_at(LIB, hot), ["hot-path-alloc"]);
    let hot = "// lint:hot-path\nfn f(xs: &[u32]) -> Vec<u32> {\n xs.iter().copied().collect()\n}";
    assert_eq!(rules_at(LIB, hot), ["hot-path-alloc"]);
    let hot = "// lint:hot-path\nfn f() {\n let v = vec![1, 2];\n}";
    assert_eq!(rules_at(LIB, hot), ["hot-path-alloc"]);
    // The same calls outside a hot region are not R2's business.
    let cold = "fn f() { let v: Vec<u32> = Vec::new(); }";
    assert_eq!(rules_at(LIB, cold), [] as [&str; 0]);
    // Non-allocating mutation inside a hot region is fine.
    let hot = "// lint:hot-path\nfn f(v: &mut Vec<u32>) {\n v.push(1);\n v.clear();\n}";
    assert_eq!(rules_at(LIB, hot), [] as [&str; 0]);
}

#[test]
fn r3_flags_bare_narrowing_in_decode_files_only() {
    let src = "fn f(x: i32) -> u32 { x as u32 }";
    assert_eq!(rules_at("crates/vectors/src/io.rs", src), ["checked-narrowing"]);
    assert_eq!(rules_at("crates/core/src/serialize.rs", src), ["checked-narrowing"]);
    // Same cast elsewhere is allowed (R3 audits decode paths, not the world).
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // Widening to usize is not narrowing.
    let src = "fn f(x: u32) -> usize { x as usize }";
    assert_eq!(rules_at("crates/vectors/src/io.rs", src), [] as [&str; 0]);
    // A reasoned allow suppresses.
    let src = "fn f(x: i32) -> u32 { x as u32 } // lint:allow(checked-narrowing): proven non-negative above";
    assert_eq!(rules_at("crates/vectors/src/io.rs", src), [] as [&str; 0]);
}

#[test]
fn r4_requires_safety_comment_on_unsafe() {
    let src = "fn f() { unsafe { g(); } }";
    assert_eq!(rules_at(LIB, src), ["safety-comment"]);
    let src = "fn f() {\n // SAFETY: g has no preconditions on this target.\n unsafe { g(); }\n}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // A `/// # Safety` doc section on an unsafe fn also counts.
    let src = "/// Does things.\n///\n/// # Safety\n/// Caller must ensure i < len.\npub unsafe fn g(i: usize) {}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // A cfg attribute between the comment and the keyword stays in-window.
    let src = "fn f() {\n // SAFETY: prefetch never faults.\n #[cfg(target_arch = \"x86_64\")]\n unsafe { g(); }\n}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // R4 applies to tests too: proof obligations don't vanish under cfg(test).
    let src = "#[cfg(test)]\nmod tests {\n fn f() { unsafe { g(); } }\n}";
    assert_eq!(rules_at(LIB, src), ["safety-comment"]);
}

#[test]
fn r5_flags_raw_sync_primitives_outside_serve_and_shims() {
    assert_eq!(rules_at(LIB, "use std::sync::Mutex;\n"), ["std-sync"]);
    // Inside a brace group, only the named primitives fire.
    assert_eq!(rules_at(LIB, "use std::sync::{Arc, RwLock};\n"), ["std-sync"]);
    assert_eq!(rules_at(LIB, "fn f() { std::thread::spawn(|| {}); }"), ["std-sync"]);
    // Arc / atomics are fine — only the lock primitives are shimmed.
    assert_eq!(rules_at(LIB, "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n"), [] as [&str; 0]);
    // serve and the shims are the sanctioned homes of raw primitives.
    assert_eq!(rules_at("crates/serve/src/slot.rs", "use std::sync::{Condvar, Mutex};\n"), [] as [&str; 0]);
    assert_eq!(rules_at("shims/parking_lot/src/lib.rs", "use std::sync::Mutex;\n"), [] as [&str; 0]);
}

#[test]
fn r6_flags_panicking_calls_in_library_code_only() {
    assert_eq!(rules_at(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap() }"), ["no-panic"]);
    assert_eq!(rules_at(LIB, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }"), ["no-panic"]);
    assert_eq!(rules_at(LIB, "fn f() { panic!(\"boom\"); }"), ["no-panic"]);
    assert_eq!(rules_at(LIB, "fn f() { todo!() }"), ["no-panic"]);
    // Non-panicking relatives are distinct identifiers and never fire.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn g(r: LockResult<T>) -> T { r.unwrap_or_else(|e| e.into_inner()) }";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // Tests, benches, bins and the bench harness may panic freely.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_at("tests/x.rs", src), [] as [&str; 0]);
    assert_eq!(rules_at("crates/bench/src/lib.rs", src), [] as [&str; 0]);
    assert_eq!(rules_at("crates/eval/src/bin/tool.rs", src), [] as [&str; 0]);
    // `panic!` inside a string or comment is text, not a call.
    let src = "fn f() -> &'static str { \"do not panic!(here)\" } // panic! is fine to discuss";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
}

#[test]
fn r7_flags_dyn_distance_outside_dispatch_module() {
    assert_eq!(rules_at(LIB, "fn f(d: &dyn Distance) {}"), ["dyn-distance"]);
    assert_eq!(rules_at(LIB, "fn f(k: DistanceKind) -> f32 { k.metric().distance(a, b) }"), ["dyn-distance"]);
    // The audited dispatch module is the one sanctioned home.
    assert_eq!(
        rules_at("crates/vectors/src/distance.rs", "fn f(d: Box<dyn Distance>) { d.metric(); }"),
        [] as [&str; 0]
    );
    // Other trait objects are not R7's business.
    assert_eq!(rules_at(LIB, "fn f(w: &mut dyn Write) {}"), [] as [&str; 0]);
}

#[test]
fn r8_flags_target_feature_outside_the_simd_module() {
    let src = "/// # Safety\n/// AVX2 required.\n#[target_feature(enable = \"avx2\")]\nunsafe fn fast(a: &[f32]) -> f32 { 0.0 }";
    assert_eq!(rules_at(LIB, src), ["simd-dispatch"]);
    // The audited SIMD module is the one sanctioned home (its own `unsafe`
    // hygiene is R4's business, so feed it a justified snippet).
    let src = "/// # Safety\n/// AVX2 detected by the table.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn fast(a: &[f32]) -> f32 { 0.0 }";
    assert_eq!(rules_at("crates/vectors/src/simd.rs", src), [] as [&str; 0]);
    // Rule applies to tests and bins too: a kernel compiled for a feature the
    // CPU may lack is unsound wherever it lives.
    let src = "/// # Safety\n/// AVX2 required.\n#[target_feature(enable = \"avx2\")]\nunsafe fn fast() {}\nfn main() {}";
    assert_eq!(rules_at("crates/eval/src/bin/tool.rs", src), ["simd-dispatch"]);
}

#[test]
fn r8_flags_kernel_table_resolution_in_hot_regions() {
    let hot = "// lint:hot-path\nfn score(a: &[f32], b: &[f32]) -> f32 {\n (crate::simd::kernels().squared_l2)(a, b)\n}";
    assert_eq!(rules_at(LIB, hot), ["simd-dispatch"]);
    let hot = "// lint:hot-path\nfn pick() {\n if std::arch::is_x86_feature_detected!(\"avx2\") {}\n}";
    assert_eq!(rules_at(LIB, hot), ["simd-dispatch"]);
    // The same resolution outside a hot region is the intended setup path.
    let cold = "fn resolve(s: &mut Scratch) { s.table = crate::simd::kernels(); }";
    assert_eq!(rules_at(LIB, cold), [] as [&str; 0]);
    // Reading the already-cached table in a hot region is the whole point.
    let hot = "// lint:hot-path\nfn score(s: &Scratch, a: &[f32], b: &[f32]) -> f32 {\n (s.table().squared_l2)(a, b)\n}";
    assert_eq!(rules_at(LIB, hot), [] as [&str; 0]);
    // A reasoned allow suppresses.
    let src = "// lint:hot-path\nfn score(a: &[f32], b: &[f32]) -> f32 {\n // lint:allow(simd-dispatch): one-shot path, no per-candidate loop\n (crate::simd::kernels().squared_l2)(a, b)\n}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
}

#[test]
fn bad_allows_are_findings_and_unsuppressible() {
    // Bare allow: no reason.
    let (findings, _) = lint_source(LIB, "fn f() { x.unwrap() } // lint:allow(no-panic)", FileClass::Library);
    let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"bad-allow"), "bare allow must be flagged: {rules:?}");
    assert!(rules.contains(&"no-panic"), "a bad allow must not suppress: {rules:?}");
    // Empty reason.
    assert!(rules_at(LIB, "fn f() {} // lint:allow(no-panic):   ").contains(&"bad-allow"));
    // Unknown rule name.
    assert!(rules_at(LIB, "fn f() {} // lint:allow(no-such-rule): because").contains(&"bad-allow"));
    // Doc comments *mentioning* the directive are prose, not directives.
    assert_eq!(rules_at(LIB, "/// Suppress with `// lint:allow(no-panic): reason`.\nfn f() {}"), [] as [&str; 0]);
}

#[test]
fn allow_targets_trailing_line_or_next_code_line() {
    // Standalone comment suppresses the next code line...
    let src = "fn f(x: Option<u32>) -> u32 {\n // lint:allow(no-panic): checked by caller\n x.unwrap()\n}";
    assert_eq!(rules_at(LIB, src), [] as [&str; 0]);
    // ...but not a line further down.
    let src = "fn f(x: Option<u32>) -> u32 {\n // lint:allow(no-panic): checked by caller\n let y = x;\n y.unwrap()\n}";
    assert_eq!(rules_at(LIB, src), ["no-panic"]);
    // An allow for rule A does not suppress rule B on the same line.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(checked-narrowing): wrong rule";
    assert_eq!(rules_at(LIB, src), ["no-panic"]);
}

#[test]
fn allows_are_reported_for_auditing() {
    let src = "fn f() { let p = SearchParams::new(1, 1); } // lint:allow(params-construction): build-time";
    let (findings, allows) = lint_source("crates/baselines/src/x.rs", src, FileClass::Library);
    assert!(findings.is_empty());
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rules, ["params-construction"]);
    assert_eq!(allows[0].reason, "build-time");
    assert_eq!(allows[0].comment_line, 1);
}

#[test]
fn lex_failure_is_a_finding_not_a_skip() {
    let (findings, _) = lint_source(LIB, "fn f() { \"unterminated }", FileClass::Library);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "parse");
}
