//! Registry exporters: Prometheus text exposition and JSON snapshots.
//!
//! Both walk the same name-sorted instrument listings, so a scrape and a
//! `BENCH_*.json` artifact taken at the same moment describe the same
//! registry state. Exporting is the cold path — it allocates freely and
//! takes the registry family locks briefly to clone the handle lists.

use crate::json;
use crate::registry::Registry;
use std::fmt::Write;

/// Rewrites `name` into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every other byte mapped to `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let valid = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// A Prometheus sample value: finite floats as-is, the IEEE specials in the
/// exposition format's spelling.
fn prometheus_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// Renders every instrument in Prometheus text exposition format —
    /// `# TYPE` headers, counters and gauges as single samples, histograms
    /// as cumulative `_bucket{le=...}` series (seconds) plus `_sum` /
    /// `_count`. The output of one call is a complete, valid scrape body.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self.counters() {
            let name = prometheus_name(&name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        for (name, gauge) in self.gauges() {
            let name = prometheus_name(&name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", prometheus_value(gauge.get()));
        }
        for (name, hist) in self.histograms() {
            hist.render_prometheus_into(&prometheus_name(&name), &mut out);
        }
        out
    }

    /// Renders the registry as one JSON document (via the same [`json`]
    /// fragments the `BENCH_*.json` artifacts are built from): counters and
    /// gauges as `name: value` maps, histograms as
    /// `{count, sum, mean, p50, p90, p99}` in base units (nanoseconds for
    /// latency histograms).
    pub fn snapshot_json(&self) -> String {
        let counters: Vec<(String, String)> = self
            .counters()
            .into_iter()
            .map(|(n, c)| (n, json::number(c.get() as f64)))
            .collect();
        let gauges: Vec<(String, String)> = self
            .gauges()
            .into_iter()
            .map(|(n, g)| (n, json::number(g.get())))
            .collect();
        let histograms: Vec<(String, String)> = self
            .histograms()
            .into_iter()
            .map(|(n, h)| {
                let count = h.count();
                let mean = if count == 0 { 0.0 } else { h.sum() as f64 / count as f64 };
                let doc = json::object(&[
                    ("count", json::number(count as f64)),
                    ("sum", json::number(h.sum() as f64)),
                    ("mean", json::number(mean)),
                    ("p50", json::number(h.quantile_value(0.50) as f64)),
                    ("p90", json::number(h.quantile_value(0.90) as f64)),
                    ("p99", json::number(h.quantile_value(0.99) as f64)),
                ]);
                (n, doc)
            })
            .collect();
        let as_fields = |entries: &[(String, String)]| {
            let fields: Vec<(&str, String)> =
                entries.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            json::object(&fields)
        };
        json::object(&[
            ("counters", as_fields(&counters)),
            ("gauges", as_fields(&gauges)),
            ("histograms", as_fields(&histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A strict little parser for the subset of the text exposition format
    /// the exporter emits: TYPE headers, `name value` samples, one optional
    /// `{le="..."}` label, float-parsable values.
    fn assert_valid_exposition(body: &str) {
        let mut typed: Vec<String> = Vec::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().expect("TYPE line has a name");
                let kind = parts.next().expect("TYPE line has a kind");
                assert!(parts.next().is_none(), "trailing tokens: {line}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown metric kind: {line}"
                );
                typed.push(name.to_string());
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let name = series.split('{').next().expect("sample line has a name");
            assert!(!name.is_empty(), "empty metric name: {line}");
            let mut chars = name.chars();
            let first = chars.next().expect("non-empty");
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "invalid name start: {line}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "invalid name char: {line}"
            );
            if let Some((_, labels)) = series.split_once('{') {
                let labels = labels.strip_suffix('}').expect("label braces close");
                let (key, val) = labels.split_once('=').expect("label has a value");
                assert_eq!(key, "le", "only le labels are emitted: {line}");
                assert!(val.starts_with('"') && val.ends_with('"'), "unquoted label: {line}");
            }
            assert!(
                value == "NaN" || value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok(),
                "unparsable value: {line}"
            );
            // Every sample belongs to a typed family.
            assert!(
                typed.iter().any(|t| name == t
                    || name.strip_prefix(t.as_str()).is_some_and(|suffix| matches!(
                        suffix,
                        "_bucket" | "_sum" | "_count"
                    ))),
                "sample before its TYPE header: {line}"
            );
        }
    }

    #[test]
    fn render_prometheus_output_is_valid_exposition_format() {
        let r = Registry::new();
        r.counter("queries_completed").add(41);
        r.counter("weird name-with.bad/chars").inc();
        r.gauge("queue_depth").set(3.0);
        r.gauge("nan_gauge").set(f64::NAN);
        let h = r.histogram("latency");
        for us in [5u64, 5, 80, 900] {
            h.record(Duration::from_micros(us));
        }
        let body = r.render_prometheus();
        assert_valid_exposition(&body);
        assert!(body.contains("# TYPE queries_completed counter\nqueries_completed 41\n"));
        assert!(body.contains("weird_name_with_bad_chars 1\n"));
        assert!(body.contains("# TYPE queue_depth gauge\nqueue_depth 3\n"));
        assert!(body.contains("nan_gauge NaN\n"));
        assert!(body.contains("latency_bucket{le=\"+Inf\"} 4\n"));
        assert!(body.contains("latency_count 4\n"));
    }

    #[test]
    fn empty_registry_renders_empty_but_valid_documents() {
        let r = Registry::new();
        assert_eq!(r.render_prometheus(), "");
        assert_eq!(
            r.snapshot_json(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}"
        );
    }

    #[test]
    fn snapshot_json_reports_counts_and_quantiles() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.gauge("fraction").set(0.25);
        let h = r.histogram("batch");
        for v in [1u64, 2, 2, 4] {
            h.observe(v);
        }
        let doc = r.snapshot_json();
        assert!(doc.contains("\"hits\": 3"));
        assert!(doc.contains("\"fraction\": 0.25"));
        assert!(doc.contains("\"count\": 4"));
        assert!(doc.contains("\"sum\": 9"));
        assert!(doc.contains("\"p99\": 4"));
    }

    #[test]
    fn names_sanitize_to_valid_prometheus_identifiers() {
        assert_eq!(prometheus_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(prometheus_name("has spaces/and.dots"), "has_spaces_and_dots");
        assert_eq!(prometheus_name("9starts_with_digit"), "_9starts_with_digit");
        assert_eq!(prometheus_name(""), "_");
    }
}
