//! The fixed-bucket log-scale concurrent histogram: [`LatencyHistogram`].
//!
//! 64 power-of-two octaves of nanoseconds (or any `u64` unit — batch sizes
//! and queue depths use the same buckets), each split into 8 linear
//! sub-buckets (HDR-histogram style), giving ≤ 12.5% relative error across
//! the full range from 1 ns to centuries with a flat 496-counter array.
//!
//! Recording is a single relaxed atomic increment into the calling thread's
//! shard — no locks, no allocation, no shared cache line between workers —
//! and the shards are only summed when a reader asks for a count, quantile
//! or mean. Lived in `nsg-serve` (PR 3) until the observability layer
//! hoisted it here; the bucket math and the read-side API are unchanged, so
//! the serve accessors and their ≤ 12.5% error bound hold verbatim.

use crate::{shard_id, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// 64 octaves × 8 sub-buckets (the first octaves are exact).
pub(crate) const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a value in base units to its histogram bucket: the octave of the
/// leading bit, refined by the next [`SUB_BITS`] bits. Monotone in `value`.
fn bucket_index(value: u64) -> usize {
    let n = value.max(1);
    let msb = 63 - n.leading_zeros();
    if msb < SUB_BITS {
        n as usize
    } else {
        let sub = ((n >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB + sub
    }
}

/// Upper bound (inclusive, in base units) of the values a bucket covers —
/// the value reported for a quantile that lands in the bucket.
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let msb = (index / SUB) as u32 + SUB_BITS - 1;
        let sub = (index % SUB) as u128;
        // Start of the next sub-bucket, minus one; computed in u128 because
        // the topmost bucket's bound is exactly 2^64 (it saturates to
        // u64::MAX).
        let bound = (((1u128 << SUB_BITS) + sub + 1) << (msb - SUB_BITS)) - 1;
        u64::try_from(bound).unwrap_or(u64::MAX)
    }
}

/// One worker shard: a private copy of the bucket array plus the exact sum
/// and count. Padded to its own cache lines by sheer size.
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum for the mean (the buckets alone would round it).
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistShard {
    const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The sharded fixed-bucket concurrent histogram (see the module docs).
pub struct LatencyHistogram {
    shards: [HistShard; SHARDS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (flat arrays of zeroed counters).
    pub fn new() -> Self {
        Self {
            shards: [const { HistShard::new() }; SHARDS],
        }
    }

    /// Records one latency observation. Lock-free and allocation-free.
    pub fn record(&self, latency: Duration) {
        self.observe(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw observation in base units (nanoseconds for
    /// latencies; plain counts for size-style histograms such as batch
    /// sizes). Three relaxed atomic increments into this thread's shard.
    // lint:hot-path
    pub fn observe(&self, value: u64) {
        let shard = &self.shards[shard_id()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations (aggregated over shards).
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    /// Exact sum of all recorded values, in base units.
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.sum.load(Ordering::Relaxed)).sum()
    }

    /// Total count in bucket `index`, aggregated over shards.
    pub(crate) fn bucket_total(&self, index: usize) -> u64 {
        self.shards.iter().map(|s| s.buckets[index].load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, as the upper
    /// bound of the bucket holding that rank (≤ 12.5% high). Zero when
    /// nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile_value(q))
    }

    /// [`quantile`](Self::quantile) in base units rather than as a
    /// `Duration` — the form size-style histograms read back.
    pub fn quantile_value(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.bucket_total(i);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Exact mean of the recorded values (zero when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum() / count)
    }

    /// Renders this histogram in Prometheus text exposition format under
    /// `name`, with `le` bounds in seconds: cumulative `_bucket` lines only
    /// where the count changes, then the mandatory `+Inf` bucket, `_sum`
    /// and `_count`.
    pub(crate) fn render_prometheus_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            let in_bucket = self.bucket_total(i);
            if in_bucket == 0 {
                continue;
            }
            cumulative += in_bucket;
            let le = bucket_upper_bound(i) as f64 / 1e9;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum() as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0u32..63 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(4)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must not decrease ({v})");
            assert!(idx < BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(0), bucket_index(1));
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn extreme_latencies_do_not_overflow_the_bucket_bounds() {
        // The topmost bucket's upper bound is 2^64: the math must saturate,
        // not wrap (or panic in debug builds).
        assert_eq!(bucket_upper_bound(bucket_index(u64::MAX)), u64::MAX);
        let h = LatencyHistogram::new();
        h.record(Duration::MAX);
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn bucket_bounds_cover_their_values_with_bounded_error() {
        for &v in &[1u64, 7, 8, 100, 999, 1_000, 123_456, 1_000_000, 10_u64.pow(9), u64::MAX / 2] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // ≤ 12.5% relative error plus rounding slack in the tiny buckets.
            assert!(ub as f64 <= v as f64 * 1.125 + 1.0, "bucket too wide for {v}: {ub}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 observations: 1µs ×90, 1ms ×9, 100ms ×1.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(2));
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(1) && p99 < Duration::from_micros(1200));
        let p100 = h.quantile(1.0);
        assert!(p100 >= Duration::from_millis(100));
        assert!(h.mean() > Duration::from_micros(1000));
        assert_eq!(LatencyHistogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn small_counts_land_in_exact_buckets() {
        // The first octaves are exact: size-style histograms (batch sizes,
        // queue depths) read back small values with zero error.
        let h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 4, 7] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile_value(0.0), 1);
        assert_eq!(h.quantile_value(1.0), 7);
        assert_eq!(h.sum(), 21);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_complete() {
        let h = LatencyHistogram::new();
        for _ in 0..5 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(5));
        let mut out = String::new();
        h.render_prometheus_into("x", &mut out);
        assert!(out.starts_with("# TYPE x histogram\n"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 6\n"));
        assert!(out.contains("x_count 6\n"));
        // Cumulative counts never decrease.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("x_bucket"))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse().ok())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {counts:?}");
    }
}
