//! Minimal JSON emission for the committed `BENCH_*.json` artifacts and
//! [`Registry::snapshot_json`](crate::Registry::snapshot_json).
//!
//! The offline build's serde shim strips the derives to no-ops, so the
//! experiment binaries and the registry exporter render their
//! machine-readable summaries by hand. Values are pre-rendered JSON
//! fragments: compose with [`object`] / [`array`] and render leaves with
//! [`string`] / [`number`]. (Hoisted from `nsg_bench::common` so the bench
//! bins and the observability exporters share one renderer; `nsg-bench`
//! re-exports this module under its old path.)

/// Renders a JSON string literal, escaping quotes, backslashes and
/// control characters.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite number; NaN and infinities (unrepresentable in
/// JSON) become `null`.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders an object from pre-rendered `(key, value)` fields, keys in
/// the given order.
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}: {}", string(k), v)).collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders an array from pre-rendered elements.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_fragments_compose_into_valid_documents() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let doc = object(&[
            ("name", string("nsg")),
            ("points", array(&[number(1.0), number(2.5)])),
        ]);
        assert_eq!(doc, "{\"name\": \"nsg\", \"points\": [1, 2.5]}");
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("tab\tend"), "\"tab\\tend\"");
    }
}
