//! # nsg-obs — unified observability for the NSG workspace
//!
//! One instrumentation substrate for the three places the paper's evaluation
//! (and the ROADMAP's production north-star) needs numbers from:
//!
//! * **Metrics registry** ([`Registry`]) — named [`Counter`]s, [`Gauge`]s and
//!   log2-bucket [`LatencyHistogram`]s. Recording on the hot path is a single
//!   relaxed atomic op into a per-worker shard ([cache-padded slots picked by
//!   a thread-local shard id](shard_id)); shards are aggregated only at
//!   scrape time, so heavy multi-worker traffic never bounces one cache line.
//!   Registration (`registry.counter("name")`) is the cold path and hands
//!   back an `Arc` handle to keep — **never** look a metric up per request.
//! * **Sampled query-path tracing** ([`TraceRecorder`] / [`QueryTrace`]) —
//!   for 1-in-N sampled requests, per-stage wall time and distance
//!   computations through the stages Algorithm 1 actually goes through
//!   (entry seeding, base traversal, delta traversal, sorted merge,
//!   tombstone filter, exact rerank). The untraced path pays exactly one
//!   sampling-decision branch.
//! * **Exporters** — [`Registry::render_prometheus`] (text exposition
//!   format, for the future HTTP `/metrics` front door) and
//!   [`Registry::snapshot_json`] (the same hand-rolled [`json`] fragments
//!   the `BENCH_*.json` artifacts use), so dashboards and the bench bins
//!   consume one registry.
//!
//! A process-wide registry is available through [`global`] for build-time
//! instrumentation (NN-Descent rounds, Algorithm 2 phases, compaction);
//! request-scoped subsystems like `nsg-serve` create their own [`Registry`]
//! per server so two servers in one process never mix counters.

pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::LatencyHistogram;
pub use registry::{global, Counter, Gauge, Registry};
pub use trace::{QueryTrace, StageSample, TraceRecorder, TraceStage};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of per-worker shards each [`Counter`] and [`LatencyHistogram`]
/// spreads its recording over. Threads hash onto shards round-robin; eight
/// slots keep same-line contention negligible at the worker counts the
/// serving subsystem runs while keeping aggregation (and memory) cheap.
pub(crate) const SHARDS: usize = 8;

/// Hands out shard slots to threads round-robin, once per thread.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot; `usize::MAX` = not assigned yet.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard slot in `0..SHARDS`, assigned round-robin on
/// first use and cached in a const-initialized thread-local afterwards — no
/// allocation, no lock, on any call.
// lint:hot-path
pub(crate) fn shard_id() -> usize {
    SHARD.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            cached
        } else {
            let fresh = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(fresh);
            fresh
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_id_is_stable_per_thread_and_in_range() {
        let first = shard_id();
        assert!(first < SHARDS);
        for _ in 0..100 {
            assert_eq!(shard_id(), first, "shard slot must be cached per thread");
        }
    }

    #[test]
    fn distinct_threads_get_spread_over_slots() {
        let mut seen: Vec<usize> = std::thread::scope(|scope| {
            (0..SHARDS)
                .map(|_| scope.spawn(shard_id))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        assert!(seen.iter().all(|&s| s < SHARDS));
    }
}
