//! Named-metric registry: [`Registry`], [`Counter`], [`Gauge`], [`global`].
//!
//! A registry owns three families of named instruments. Lookup
//! (`registry.counter("nsg_completed")`) is get-or-register and returns an
//! `Arc` handle: call it once at construction time, keep the handle, and
//! record through the handle on the hot path — recording is a relaxed
//! atomic op into a per-thread shard, never a name lookup, never a lock.
//!
//! Two scopes exist by convention:
//! * [`global()`] — one process-wide registry for build-time
//!   instrumentation (NN-Descent, Algorithm 2 phases, compaction), where
//!   "which build" ambiguity doesn't matter because builds are sequential.
//! * Per-subsystem registries — `nsg-serve` creates one [`Registry`] per
//!   `Server` so two servers in one process never mix their counters, and
//!   a scrape of one server's `/metrics` sees only that server.

use crate::hist::LatencyHistogram;
use crate::{shard_id, SHARDS};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One cache line per shard so two workers bumping the same counter never
/// write the same line.
#[repr(align(64))]
struct Slot(AtomicU64);

/// A monotonically increasing sum, sharded per worker thread.
pub struct Counter {
    slots: [Slot; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self {
            slots: [const { Slot(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds one. A single relaxed atomic increment on this thread's shard.
    // lint:hot-path
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A single relaxed atomic increment on this thread's shard.
    // lint:hot-path
    pub fn add(&self, n: u64) {
        self.slots[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total, aggregated over shards at read time.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins instantaneous value (queue depth, delta fraction).
/// Stored as `f64` bits in one atomic; gauges are set, not accumulated, so
/// they need no shards.
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge reading 0.
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the current value. A single relaxed atomic store.
    // lint:hot-path
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s and [`LatencyHistogram`]s
/// (see the module docs for the usage discipline).
pub struct Registry {
    counters: RwLock<Vec<(String, Arc<Counter>)>>,
    gauges: RwLock<Vec<(String, Arc<Gauge>)>>,
    histograms: RwLock<Vec<(String, Arc<LatencyHistogram>)>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Linear-scan get-or-register under the family's lock: metric counts are
/// tens, registration happens once per subsystem construction, and a `Vec`
/// keeps scrape iteration allocation-light and deterministic.
fn get_or_register<T>(
    family: &RwLock<Vec<(String, Arc<T>)>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some((_, found)) = family.read().iter().find(|(n, _)| n == name) {
        return Arc::clone(found);
    }
    let mut entries = family.write();
    // Double-check under the write lock: another thread may have registered
    // the name between our read unlock and write lock.
    if let Some((_, found)) = entries.iter().find(|(n, _)| n == name) {
        return Arc::clone(found);
    }
    let fresh = Arc::new(make());
    entries.push((name.to_string(), Arc::clone(&fresh)));
    fresh
}

/// Name-sorted clones of a family, for deterministic export output.
fn sorted<T>(family: &RwLock<Vec<(String, Arc<T>)>>) -> Vec<(String, Arc<T>)> {
    let mut entries: Vec<(String, Arc<T>)> = family
        .read()
        .iter()
        .map(|(n, v)| (n.clone(), Arc::clone(v)))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            counters: RwLock::new(Vec::new()),
            gauges: RwLock::new(Vec::new()),
            histograms: RwLock::new(Vec::new()),
        }
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        get_or_register(&self.histograms, name, LatencyHistogram::new)
    }

    /// Name-sorted counter handles (export / test introspection).
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        sorted(&self.counters)
    }

    /// Name-sorted gauge handles (export / test introspection).
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        sorted(&self.gauges)
    }

    /// Name-sorted histogram handles (export / test introspection).
    pub fn histograms(&self) -> Vec<(String, Arc<LatencyHistogram>)> {
        sorted(&self.histograms)
    }
}

/// The process-wide registry for build-time instrumentation. Lazily
/// initialized, never torn down; request-scoped subsystems should create
/// their own [`Registry`] instead (see the module docs).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.counters().len(), 1);
        // Different names are different instruments.
        let c = r.counter("misses");
        assert_eq!(c.get(), 0);
        assert_eq!(r.counters().len(), 2);
    }

    #[test]
    fn families_are_namespaced_independently() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("x").set(2.5);
        r.histogram("x").record(Duration::from_micros(3));
        assert_eq!(r.counter("x").get(), 1);
        assert_eq!(r.gauge("x").get(), 2.5);
        assert_eq!(r.histogram("x").count(), 1);
    }

    #[test]
    fn counter_aggregates_across_threads() {
        let r = Registry::new();
        let c = r.counter("spread");
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 16_000);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("obs_test_global_singleton");
        let b = global().counter("obs_test_global_singleton");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn listings_come_back_name_sorted() {
        let r = Registry::new();
        r.counter("zeta");
        r.counter("alpha");
        r.counter("mid");
        let names: Vec<String> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
