//! Sampled query-path tracing: [`TraceRecorder`], [`QueryTrace`],
//! [`TraceStage`].
//!
//! A recorder lives inside every `SearchContext`. For 1-in-N sampled
//! requests (`SearchRequest::with_trace(n)`), it timestamps the stages
//! Algorithm 1 actually goes through and charges each stage its share of
//! the distance computations; the result is surfaced as a [`QueryTrace`]
//! alongside `SearchStats`. For the other N−1 requests, the *entire* cost
//! of tracing is the one sampling-decision branch in [`TraceRecorder::arm`]
//! — no clock reads, no stores, no allocation — so the instrumented warm
//! path stays inside the alloc-guard and hot-path lint contracts.
//!
//! Stage timers follow a begin/finish pair:
//! [`begin`](TraceRecorder::begin) returns `Some(Instant)` only when this
//! query is sampled, and [`finish`](TraceRecorder::finish) is a no-op on
//! `None` — so the untraced path never touches the clock.

use std::time::Instant;

/// The stages a query can pass through, in execution order. Base-only
/// queries touch a prefix plus the rerank tail; merged base+delta queries
/// (the live-mutation path) touch all six.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// Scoring the entry points that seed the candidate pool.
    EntrySeeding = 0,
    /// The Algorithm 1 expansion loop over the frozen base graph.
    BaseTraversal = 1,
    /// The same loop over the delta graph (live-mutation path only).
    DeltaTraversal = 2,
    /// Merging base and delta candidates into one sorted stream.
    SortedMerge = 3,
    /// Dropping tombstoned ids while extracting the top-k.
    TombstoneFilter = 4,
    /// Exact rescoring of quantized-traversal candidates.
    ExactRerank = 5,
}

/// Number of [`TraceStage`] variants.
pub const STAGE_COUNT: usize = 6;

impl TraceStage {
    /// Every stage, in execution order.
    pub const ALL: [TraceStage; STAGE_COUNT] = [
        TraceStage::EntrySeeding,
        TraceStage::BaseTraversal,
        TraceStage::DeltaTraversal,
        TraceStage::SortedMerge,
        TraceStage::TombstoneFilter,
        TraceStage::ExactRerank,
    ];

    /// Stable snake_case name (metric labels, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::EntrySeeding => "entry_seeding",
            TraceStage::BaseTraversal => "base_traversal",
            TraceStage::DeltaTraversal => "delta_traversal",
            TraceStage::SortedMerge => "sorted_merge",
            TraceStage::TombstoneFilter => "tombstone_filter",
            TraceStage::ExactRerank => "exact_rerank",
        }
    }
}

/// One stage's share of a traced query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Wall time spent in the stage, in nanoseconds.
    pub nanos: u64,
    /// Distance computations charged to the stage.
    pub distance_computations: u64,
}

/// The per-stage breakdown of one sampled query, indexable by
/// [`TraceStage`]. `Copy`, fixed-size, and surfaced through
/// `SearchContext::trace()` next to the usual `SearchStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    stages: [StageSample; STAGE_COUNT],
}

impl QueryTrace {
    /// The sample recorded for `stage` (zero if the query skipped it).
    pub fn stage(&self, stage: TraceStage) -> StageSample {
        self.stages[stage as usize]
    }

    /// Total traced wall time across all stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Total distance computations across all stages.
    pub fn total_distance_computations(&self) -> u64 {
        self.stages.iter().map(|s| s.distance_computations).sum()
    }
}

/// The fixed-capacity recorder embedded in every `SearchContext` (see the
/// module docs). `arm` decides sampling per query; stage hooks between
/// `arm` calls accumulate into the current trace.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    /// Queries seen since construction (the sampling clock).
    seen: u64,
    /// Whether the current query is being traced.
    enabled: bool,
    /// Which traversal stage the shared Algorithm 1 loop is currently
    /// attributed to: the merged-search path flips this to
    /// `DeltaTraversal` around its delta pass.
    traversal: TraceStage,
    trace: QueryTrace,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates an idle recorder; nothing is traced until [`arm`](Self::arm)
    /// enables a sampled query.
    pub const fn new() -> Self {
        Self {
            seen: 0,
            enabled: false,
            traversal: TraceStage::BaseTraversal,
            trace: QueryTrace {
                stages: [StageSample { nanos: 0, distance_computations: 0 }; STAGE_COUNT],
            },
        }
    }

    /// Starts a new query: traces it iff it is the `every`-th since the
    /// last sampled one (`every == 0` disables tracing). This is the whole
    /// per-query overhead of an untraced request — one branch.
    // lint:hot-path
    pub fn arm(&mut self, every: u32) {
        self.seen = self.seen.wrapping_add(1);
        if every != 0 && self.seen.is_multiple_of(u64::from(every)) {
            self.enabled = true;
            self.traversal = TraceStage::BaseTraversal;
            self.trace = QueryTrace::default();
        } else {
            self.enabled = false;
        }
    }

    /// Whether the current query is being traced.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a stage timer: the clock is read only for sampled queries.
    // lint:hot-path
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a stage timer from [`begin`](Self::begin), accumulating the
    /// elapsed wall time and `distance_computations` into `stage`. No-op
    /// (and clock-free) when the query is not sampled.
    // lint:hot-path
    pub fn finish(&mut self, stage: TraceStage, started: Option<Instant>, distance_computations: u64) {
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let sample = &mut self.trace.stages[stage as usize];
            sample.nanos += nanos;
            sample.distance_computations += distance_computations;
        }
    }

    /// Closes a stage timer against the current traversal attribution (see
    /// [`set_traversal_stage`](Self::set_traversal_stage)).
    // lint:hot-path
    pub fn finish_traversal(&mut self, started: Option<Instant>, distance_computations: u64) {
        self.finish(self.traversal, started, distance_computations);
    }

    /// Redirects the shared traversal loop's attribution (the merged
    /// base+delta search brackets its delta pass with
    /// `DeltaTraversal`/`BaseTraversal`).
    pub fn set_traversal_stage(&mut self, stage: TraceStage) {
        self.traversal = stage;
    }

    /// The trace of the most recent sampled query, if the current query was
    /// sampled.
    pub fn trace(&self) -> Option<QueryTrace> {
        if self.enabled {
            Some(self.trace)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sampling_hits_exactly_one_in_n() {
        let mut rec = TraceRecorder::new();
        let mut sampled = 0;
        for _ in 0..100 {
            rec.arm(4);
            if rec.enabled() {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 25);
        // every == 0 disables tracing entirely.
        let mut off = TraceRecorder::new();
        for _ in 0..10 {
            off.arm(0);
            assert!(!off.enabled());
            assert!(off.trace().is_none());
        }
        // every == 1 traces every query.
        let mut all = TraceRecorder::new();
        all.arm(1);
        assert!(all.enabled());
    }

    #[test]
    fn stages_accumulate_time_and_distances() {
        let mut rec = TraceRecorder::new();
        rec.arm(1);
        let t = rec.begin();
        assert!(t.is_some());
        std::thread::sleep(Duration::from_millis(2));
        rec.finish(TraceStage::EntrySeeding, t, 7);
        let t2 = rec.begin();
        rec.finish(TraceStage::EntrySeeding, t2, 3);
        let trace = rec.trace().expect("sampled query must expose a trace");
        let seed = trace.stage(TraceStage::EntrySeeding);
        assert!(seed.nanos >= 2_000_000, "slept 2ms but recorded {}ns", seed.nanos);
        assert_eq!(seed.distance_computations, 10);
        assert_eq!(trace.total_distance_computations(), 10);
        assert!(trace.total_nanos() >= seed.nanos);
        assert_eq!(trace.stage(TraceStage::ExactRerank), StageSample::default());
    }

    #[test]
    fn unsampled_queries_never_touch_the_clock_or_the_trace() {
        let mut rec = TraceRecorder::new();
        rec.arm(1);
        let t = rec.begin();
        rec.finish(TraceStage::BaseTraversal, t, 5);
        let first = rec.trace().expect("first query is sampled");
        assert!(first.stage(TraceStage::BaseTraversal).distance_computations == 5);
        // The second query is unsampled at every=3 (2 % 3 != 0): begin
        // returns None, finish is a no-op, and the stale trace is not
        // exposed.
        rec.arm(3);
        assert!(!rec.enabled());
        let t = rec.begin();
        assert!(t.is_none());
        rec.finish(TraceStage::BaseTraversal, t, 99);
        assert!(rec.trace().is_none());
    }

    #[test]
    fn traversal_attribution_is_redirectable() {
        let mut rec = TraceRecorder::new();
        rec.arm(1);
        let t = rec.begin();
        rec.finish_traversal(t, 4);
        rec.set_traversal_stage(TraceStage::DeltaTraversal);
        let t = rec.begin();
        rec.finish_traversal(t, 6);
        let trace = rec.trace().expect("sampled");
        assert_eq!(trace.stage(TraceStage::BaseTraversal).distance_computations, 4);
        assert_eq!(trace.stage(TraceStage::DeltaTraversal).distance_computations, 6);
        // A fresh arm resets both the trace and the attribution.
        rec.arm(1);
        let trace = rec.trace().expect("sampled");
        assert_eq!(trace.total_distance_computations(), 0);
        let t = rec.begin();
        rec.finish_traversal(t, 1);
        assert_eq!(
            rec.trace().expect("sampled").stage(TraceStage::BaseTraversal).distance_computations,
            1
        );
    }

    #[test]
    fn stage_names_are_stable_and_distinct() {
        let names: Vec<&str> = TraceStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "entry_seeding",
                "base_traversal",
                "delta_traversal",
                "sorted_merge",
                "tombstone_filter",
                "exact_rerank"
            ]
        );
    }
}
