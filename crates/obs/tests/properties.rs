//! Property tests for the observability primitives: the histogram's
//! documented ≤ 12.5% quantile error bound over arbitrary sample streams,
//! exact cross-shard aggregation (recording from many threads reads back
//! identically to recording from one), and scrape consistency under
//! concurrent load.

use nsg_obs::{LatencyHistogram, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any stream and any quantile, the histogram's estimate is the
    /// upper bound of the bucket holding the exact rank: never below the
    /// exact order statistic, and at most 12.5% above it (plus one unit of
    /// rounding slack in the tiny exact buckets).
    #[test]
    fn quantile_estimates_stay_within_documented_error(
        values in proptest::collection::vec(0u64..1_000_000_000_000u64, 1..300)
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        let mut values = values;
        values.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let est = h.quantile_value(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            prop_assert!(
                est as f64 <= exact as f64 * 1.125 + 1.0,
                "q={q}: estimate {est} exceeds 12.5% bound over exact {exact}"
            );
        }
    }

    /// Recording a stream from several threads (each landing in whatever
    /// per-thread shard it gets) reads back *identically* — count, sum, and
    /// every quantile — to recording the same multiset from one thread:
    /// shard aggregation at scrape time loses nothing.
    #[test]
    fn sharded_recording_aggregates_like_a_single_thread(
        values in proptest::collection::vec(1u64..1_000_000u64, 1..200),
        threads in 2usize..5,
    ) {
        let single = LatencyHistogram::new();
        for &v in &values {
            single.observe(v);
        }
        let sharded = LatencyHistogram::new();
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let sharded = &sharded;
                s.spawn(move || {
                    for &v in chunk {
                        sharded.observe(v);
                    }
                });
            }
        });
        prop_assert_eq!(sharded.count(), single.count());
        prop_assert_eq!(sharded.sum(), single.sum());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(sharded.quantile_value(q), single.quantile_value(q));
        }
    }

    /// Counter increments spread over threads sum exactly.
    #[test]
    fn counter_shards_sum_exactly_over_threads(
        adds in proptest::collection::vec(1u64..1000u64, 1..64),
        threads in 2usize..5,
    ) {
        let registry = Registry::new();
        let counter = registry.counter("shard_sum");
        std::thread::scope(|s| {
            for chunk in adds.chunks(adds.len().div_ceil(threads)) {
                let counter = &counter;
                s.spawn(move || {
                    for &a in chunk {
                        counter.add(a);
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), adds.iter().sum::<u64>());
    }
}

/// Scraping a registry while writers are hammering it never tears: every
/// intermediate Prometheus/JSON render parses structurally, counter reads
/// are monotone across scrapes, and the final totals are exact.
#[test]
fn scrape_under_load_is_consistent() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let registry = Registry::new();
    let counter = registry.counter("load_ops");
    let hist = registry.histogram("load_latency");
    registry.gauge("load_phase").set(1.0);
    let mut last_seen = 0u64;
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let counter = &counter;
            let hist = &hist;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    counter.inc();
                    hist.observe(i % 1024 + 1);
                }
            });
        }
        // Scrape concurrently with the writers.
        for _ in 0..50 {
            let prom = registry.render_prometheus();
            assert!(prom.contains("# TYPE load_ops counter"));
            assert!(prom.contains("# TYPE load_latency histogram"));
            let json = registry.snapshot_json();
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            let seen = counter.get();
            assert!(seen >= last_seen, "counter went backwards: {seen} < {last_seen}");
            last_seen = seen;
        }
    });
    assert_eq!(counter.get(), WRITERS as u64 * PER_WRITER);
    assert_eq!(hist.count(), WRITERS as u64 * PER_WRITER);
    let p100 = hist.quantile_value(1.0);
    assert!((1024..=1152).contains(&p100), "p100 {p100} outside bucket bound");
}
