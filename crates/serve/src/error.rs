//! The explicit failure modes of the serving subsystem.
//!
//! Every way a served query can fail is a visible, typed outcome — most
//! importantly [`ServeError::Overloaded`], the backpressure rejection a
//! bounded admission queue turns a full buffer into. A service that serves
//! billion-scale traffic (the paper's Taobao deployment) sheds load
//! explicitly; it does not queue unboundedly and let latency collapse.

use std::fmt;

/// Why a served query did not produce an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full: the request was rejected at submit time
    /// without blocking (counted in
    /// [`ServerMetrics::rejected`](crate::metrics::MetricsSnapshot::rejected)).
    Overloaded,
    /// The server's workers have shut down; no more requests are accepted.
    ShuttingDown,
    /// The request's deadline passed while it waited in the queue; the worker
    /// dropped it without searching (the answer would have arrived too late
    /// to be useful).
    DeadlineExceeded,
    /// The response slot already carries an in-flight request; one slot
    /// tracks one outstanding query at a time.
    SlotBusy,
    /// `wait` was called on a slot with no submitted request to wait for.
    NotSubmitted,
    /// `wait_timeout` elapsed before the response arrived (the request may
    /// still complete later; the slot stays pending).
    WaitTimeout,
    /// The search panicked on the worker thread. The worker caught it,
    /// resolved this request with this error, and kept serving — a client is
    /// never left waiting on a request a panic swallowed.
    WorkerPanicked,
    /// An insert/delete was submitted to a server that was not started with
    /// [`Server::start_mutable`](crate::server::Server::start_mutable) —
    /// a frozen index has no mutation path.
    NotMutable,
    /// The index refused the mutation: the vector's dimension did not match
    /// the index, or the sealed-successor handover could not be completed.
    MutationRejected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ServeError::Overloaded => "admission queue full: request rejected (overloaded)",
            ServeError::ShuttingDown => "server is shutting down",
            ServeError::DeadlineExceeded => "deadline passed before the query was served",
            ServeError::SlotBusy => "response slot already has an in-flight request",
            ServeError::NotSubmitted => "no submitted request to wait for",
            ServeError::WaitTimeout => "timed out waiting for the response",
            ServeError::WorkerPanicked => "the search panicked on the worker thread",
            ServeError::NotMutable => "server is not serving a mutable index",
            ServeError::MutationRejected => "the index refused the mutation",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_compare() {
        assert_eq!(ServeError::Overloaded, ServeError::Overloaded);
        assert_ne!(ServeError::Overloaded, ServeError::ShuttingDown);
        for e in [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::DeadlineExceeded,
            ServeError::SlotBusy,
            ServeError::NotSubmitted,
            ServeError::WaitTimeout,
            ServeError::WorkerPanicked,
            ServeError::NotMutable,
            ServeError::MutationRejected,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
