//! Atomically hot-swappable index snapshots: [`IndexHandle`].
//!
//! A live service cannot stop answering queries while its index is rebuilt —
//! the paper's production setting (an e-commerce catalog) re-indexes behind
//! continuous traffic. The handle makes that safe with the simplest possible
//! protocol: the current snapshot (an `Arc<dyn AnnIndex>` plus a
//! monotonically increasing generation number) lives behind a read-write
//! lock; readers [`load`](IndexHandle::load) a clone of the `Arc` (two atomic
//! ref-count bumps, no heap allocation) and search it lock-free for as long
//! as they like, while [`swap`](IndexHandle::swap) installs a replacement
//! under the write lock. A reader therefore always observes a **consistent**
//! `(index, generation)` pair — never a torn mix of old graph and new
//! vectors — and an old index is freed only when the last in-flight reader
//! drops its clone.
//!
//! Since the frozen-graph refactor, every graph index behind the
//! `Arc<dyn AnnIndex>` carries its adjacency as a frozen CSR
//! `CompactGraph` (`nsg_core::graph`): a snapshot is immutable by
//! construction, its neighbor arena is one contiguous allocation shared by
//! all worker threads, and the workers' hot loops get the flat-layout +
//! prefetch traversal on every served query.

use nsg_core::index::AnnIndex;
use nsg_core::nsg::NsgParams;
use nsg_core::serialize::SerializeError;
use nsg_core::snapshot::Snapshot as FileSnapshot;
use parking_lot::RwLock;
use std::path::Path;
use std::sync::Arc;

/// One consistent `(index, generation)` pair loaded from an [`IndexHandle`].
///
/// Clones are cheap (`Arc` bumps); hold one for the duration of a query (or
/// a micro-batch) and re-[`load`](IndexHandle::load) to observe swaps.
#[derive(Clone)]
pub struct Snapshot {
    /// The index this snapshot serves.
    pub index: Arc<dyn AnnIndex>,
    /// Generation counter: 0 for the handle's initial index, incremented by
    /// every [`IndexHandle::swap`].
    pub generation: u64,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("index", &self.index.name())
            .field("generation", &self.generation)
            .finish()
    }
}

/// The hot-swap cell the server's workers read their index through (see the
/// module docs for the consistency protocol).
pub struct IndexHandle {
    current: RwLock<Snapshot>,
}

impl IndexHandle {
    /// Creates a handle serving `index` as generation 0.
    pub fn new(index: Arc<dyn AnnIndex>) -> Self {
        Self {
            current: RwLock::new(Snapshot { index, generation: 0 }),
        }
    }

    /// Returns the current snapshot. The returned clone stays valid (and
    /// keeps its index alive) across any number of concurrent swaps.
    pub fn load(&self) -> Snapshot {
        self.current.read().clone()
    }

    /// Atomically replaces the served index, returning the snapshot that was
    /// displaced. The new snapshot's generation is one above the previous
    /// one; queries in flight on the old snapshot finish undisturbed, and the
    /// old index is dropped once its last reader lets go.
    pub fn swap(&self, index: Arc<dyn AnnIndex>) -> Snapshot {
        let mut current = self.current.write();
        let next = Snapshot {
            index,
            generation: current.generation + 1,
        };
        std::mem::replace(&mut *current, next)
    }

    /// The current generation number (0 until the first swap).
    pub fn generation(&self) -> u64 {
        self.current.read().generation
    }

    /// Hot-swaps in an on-disk NSG2 snapshot — O(1) in the index size. The
    /// file is mapped (`nsg_core::snapshot::Snapshot::open`), its section
    /// table validated, borrowed views wrapped into a serving index, and the
    /// generation flipped: no arena is decoded or copied. The displaced
    /// snapshot is returned; its mapped region (if it came from a snapshot
    /// too) stays resident until the last in-flight query drops it, then
    /// unmaps.
    ///
    /// Trust model: this is the fast path for snapshots produced by this
    /// process's own build pipeline. Table validation rejects anything
    /// structurally unsound, but does not scan payloads; for snapshots from
    /// untrusted storage use [`swap_snapshot_verified`](Self::swap_snapshot_verified).
    pub fn swap_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<Snapshot, SerializeError> {
        let snap = FileSnapshot::open(path)?;
        Ok(self.swap(snap.into_index(NsgParams::default())))
    }

    /// Like [`swap_snapshot`](Self::swap_snapshot), but runs the deep O(n+m)
    /// content check ([`nsg_core::snapshot::Snapshot::verify`]) before the
    /// swap, so a payload-corrupt file is refused while the old generation
    /// keeps serving.
    pub fn swap_snapshot_verified<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<Snapshot, SerializeError> {
        let snap = FileSnapshot::open(path)?;
        snap.verify()?;
        Ok(self.swap(snap.into_index(NsgParams::default())))
    }
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle").field("current", &self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::context::SearchContext;
    use nsg_core::index::SearchRequest;
    use nsg_core::neighbor::Neighbor;

    /// Returns `k` neighbors whose ids all equal the index's tag.
    struct Tagged(u32);
    impl AnnIndex for Tagged {
        fn new_context(&self) -> SearchContext {
            SearchContext::new()
        }
        fn search_into<'a>(
            &self,
            ctx: &'a mut SearchContext,
            request: &SearchRequest,
            _query: &[f32],
        ) -> &'a [Neighbor] {
            ctx.results.clear();
            ctx.results
                .extend((0..request.k).map(|i| Neighbor::new(self.0, i as f32)));
            &ctx.results
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "tagged"
        }
    }

    #[test]
    fn swap_increments_generation_and_returns_the_displaced_snapshot() {
        let handle = IndexHandle::new(Arc::new(Tagged(10)));
        assert_eq!(handle.generation(), 0);
        let displaced = handle.swap(Arc::new(Tagged(20)));
        assert_eq!(displaced.generation, 0);
        assert_eq!(handle.generation(), 1);
        let snap = handle.load();
        assert_eq!(snap.generation, 1);
        let res = snap.index.search(&[0.0], &SearchRequest::new(1));
        assert_eq!(res[0].id, 20);
    }

    #[test]
    fn a_loaded_snapshot_survives_later_swaps() {
        let handle = IndexHandle::new(Arc::new(Tagged(1)));
        let old = handle.load();
        handle.swap(Arc::new(Tagged(2)));
        handle.swap(Arc::new(Tagged(3)));
        // The old snapshot still answers with its own index and generation.
        assert_eq!(old.generation, 0);
        assert_eq!(old.index.search(&[0.0], &SearchRequest::new(1))[0].id, 1);
        assert_eq!(handle.load().generation, 2);
    }

    #[test]
    fn concurrent_loads_never_observe_a_torn_pair() {
        // Generation g always serves Tagged(g): any mismatch between the
        // snapshot's generation and the id its index answers is a tear.
        let handle = Arc::new(IndexHandle::new(Arc::new(Tagged(0))));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = Arc::clone(&handle);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = handle.load();
                        let res = snap.index.search(&[0.0], &SearchRequest::new(1));
                        assert_eq!(
                            res[0].id as u64, snap.generation,
                            "torn snapshot: generation/index mismatch"
                        );
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();
        for g in 1..=50u32 {
            handle.swap(Arc::new(Tagged(g)));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(handle.generation(), 50);
    }
}
