//! # nsg-serve — embedded concurrent serving for ANN indices
//!
//! The paper's headline deployment is a **live search service** (the NSG
//! "has been integrated into the search engine of Taobao" serving
//! billion-scale e-commerce traffic); this crate models that setting on top
//! of the workspace's query API: sustained concurrent query traffic against
//! an index that is rebuilt and replaced behind the traffic.
//!
//! The pieces, one module each:
//!
//! * [`server`] — [`Server`]: a pool of long-lived worker threads behind a
//!   **bounded** MPMC admission queue, with optional micro-batching. The
//!   bounded queue is the backpressure boundary: a full queue rejects with
//!   [`ServeError::Overloaded`] instead of letting latency collapse.
//! * [`handle`] — [`IndexHandle`]: the atomically hot-swappable
//!   `Arc<dyn AnnIndex>` snapshot (with a generation counter) workers read,
//!   so re-indexing never shows readers a torn state.
//! * [`slot`] — [`ResponseSlot`]: the reusable submit/wait rendezvous whose
//!   warm buffers keep the steady-state round trip allocation-free on both
//!   sides.
//! * [`metrics`] — [`ServerMetrics`]: fixed-bucket latency histogram
//!   (p50/p90/p99), QPS, rejection/deadline counters, mutation/compaction
//!   tallies, queue-pressure instruments and mean distance computations per
//!   query — all handles into a per-server `nsg-obs`
//!   [`Registry`](nsg_obs::Registry) scrapeable as Prometheus text or JSON
//!   via [`ServerMetrics::registry`].
//! * [`mutation`] — [`MutationPolicy`]: live inserts/deletes against a
//!   [`MutableAnnIndex`](nsg_core::delta::MutableAnnIndex) served behind the
//!   same queue ([`Server::start_mutable`]), with threshold-triggered
//!   compaction that rebuilds the frozen base and swaps it in behind
//!   traffic.
//! * [`error`] — [`ServeError`]: every failure mode, typed.
//!
//! Workers pin one search context each via the same
//! [`PinnedContext`](nsg_core::context::PinnedContext) helper
//! `AnnIndex::search_batch` uses — the context-reuse contract's
//! "one context per worker thread" shape, kept across index hot-swaps.
//!
//! ## Quickstart
//!
//! ```
//! use nsg_serve::{Server, ServerConfig, ResponseSlot};
//! use nsg_core::index::{AnnIndex, SearchRequest};
//! use nsg_core::context::SearchContext;
//! use nsg_core::neighbor::Neighbor;
//! use std::sync::Arc;
//!
//! // Any AnnIndex works; a real application serves an NsgIndex.
//! struct Zero;
//! impl AnnIndex for Zero {
//!     fn new_context(&self) -> SearchContext { SearchContext::new() }
//!     fn search_into<'a>(&self, ctx: &'a mut SearchContext, r: &SearchRequest, _q: &[f32])
//!         -> &'a [Neighbor]
//!     {
//!         ctx.results.clear();
//!         ctx.results.extend((0..r.k as u32).map(|i| Neighbor::new(i, i as f32)));
//!         &ctx.results
//!     }
//!     fn memory_bytes(&self) -> usize { 0 }
//!     fn name(&self) -> &'static str { "zero" }
//! }
//!
//! let server = Server::start(Arc::new(Zero), ServerConfig::with_workers(2));
//!
//! // Client loop: one reusable slot, zero allocation per query once warm.
//! let slot = Arc::new(ResponseSlot::new());
//! let request = SearchRequest::new(3);
//! server.try_submit(&slot, &[0.0], &request, None).unwrap();
//! let response = slot.wait().unwrap();
//! assert_eq!(response.neighbors().len(), 3);
//! drop(response);
//!
//! // Hot-swap a rebuilt index behind the running traffic.
//! server.handle().swap(Arc::new(Zero));
//! assert_eq!(server.handle().generation(), 1);
//!
//! println!("{}", server.metrics().snapshot());
//! server.shutdown();
//! ```

pub mod error;
pub mod handle;
pub mod metrics;
pub mod mutation;
pub mod server;
pub mod slot;
mod worker;

pub use error::ServeError;
pub use handle::{IndexHandle, Snapshot};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServerMetrics};
pub use mutation::MutationPolicy;
pub use server::{Server, ServerConfig};
pub use slot::{ResponseGuard, ResponseSlot};
