//! Latency SLO instrumentation: [`ServerMetrics`].
//!
//! Every instrument lives in a per-server [`Registry`] from `nsg-obs`: each
//! [`Server`](crate::server::Server) gets its own registry so two servers in
//! one process never mix their counters, and a scrape
//! ([`Registry::render_prometheus`](nsg_obs::Registry::render_prometheus) /
//! [`Registry::snapshot_json`](nsg_obs::Registry::snapshot_json) via
//! [`ServerMetrics::registry`]) sees exactly one server's state.
//!
//! Every completed query's end-to-end latency (enqueue → response written)
//! lands in the registry's **fixed-bucket** log-scale
//! [`LatencyHistogram`]: 64 power-of-two octaves of nanoseconds, each split
//! into 8 linear sub-buckets (HDR-histogram style), giving ≤ 12.5% relative
//! error across the full range with a flat counter array. Recording is a
//! relaxed atomic increment into a per-thread shard — no locks, no
//! allocation — so the warm query path stays allocation-free with metrics
//! on.
//!
//! [`ServerMetrics::snapshot`] derives the numbers an SLO dashboard wants:
//! p50/p90/p99 latency, QPS over the metrics window, the rejected and
//! deadline-expired counts, and the mean distance computations per query
//! (straight from the [`SearchStats`] every index already reports).

use nsg_core::search::SearchStats;
pub use nsg_obs::LatencyHistogram;
use nsg_obs::{Counter, Gauge, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// All serving instruments of one [`Server`](crate::server::Server), held as
/// pre-registered handles into the server's own metrics [`Registry`]: the
/// latency histograms plus completion, rejection, deadline and search-cost
/// tallies, queue-pressure histograms, and delta-layer gauges. Shared by
/// every worker; all recording is atomic.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    latency: Arc<LatencyHistogram>,
    /// End-to-end insert/delete latencies, kept out of the query histogram
    /// so mutations never distort the query SLO percentiles.
    mutation_latency: Arc<LatencyHistogram>,
    /// Time a job spent in the admission queue before a worker picked it up.
    queue_wait: Arc<LatencyHistogram>,
    /// Jobs drained per worker wake-up (raw counts, not nanoseconds).
    batch_size: Arc<LatencyHistogram>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    expired: Arc<Counter>,
    failed: Arc<Counter>,
    inserts: Arc<Counter>,
    deletes: Arc<Counter>,
    compactions: Arc<Counter>,
    compaction_nanos: Arc<Counter>,
    distance_computations: Arc<Counter>,
    /// Jobs sitting in the admission queue, sampled at worker drain time.
    queue_depth: Arc<Gauge>,
    /// Fraction of the serving corpus living in the delta graph.
    delta_fraction: Arc<Gauge>,
    /// Fraction of ids tombstoned on the serving index.
    tombstone_fraction: Arc<Gauge>,
    started: Instant,
}

impl ServerMetrics {
    /// Creates zeroed metrics in a fresh per-server registry; the QPS window
    /// starts now.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            latency: registry.histogram("serve_latency"),
            mutation_latency: registry.histogram("serve_mutation_latency"),
            queue_wait: registry.histogram("serve_queue_wait"),
            batch_size: registry.histogram("serve_batch_size"),
            completed: registry.counter("serve_completed"),
            rejected: registry.counter("serve_rejected"),
            expired: registry.counter("serve_expired"),
            failed: registry.counter("serve_failed"),
            inserts: registry.counter("serve_inserts"),
            deletes: registry.counter("serve_deletes"),
            compactions: registry.counter("serve_compactions"),
            compaction_nanos: registry.counter("serve_compaction_nanos"),
            distance_computations: registry.counter("serve_distance_computations"),
            queue_depth: registry.gauge("serve_queue_depth"),
            delta_fraction: registry.gauge("serve_delta_fraction"),
            tombstone_fraction: registry.gauge("serve_tombstone_fraction"),
            registry,
            started: Instant::now(),
        }
    }

    /// The per-server registry behind these metrics — scrape it with
    /// [`Registry::render_prometheus`](nsg_obs::Registry::render_prometheus)
    /// or [`Registry::snapshot_json`](nsg_obs::Registry::snapshot_json).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one successfully answered query (worker side).
    // lint:hot-path
    pub fn record_completed(&self, latency: Duration, stats: SearchStats) {
        self.latency.record(latency);
        self.completed.inc();
        self.distance_computations.add(stats.distance_computations);
    }

    /// Records one admission rejection (queue full at submit time).
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Records one request dropped because its deadline passed in the queue.
    pub fn record_expired(&self) {
        self.expired.inc();
    }

    /// Records one request that failed because its search panicked on the
    /// worker (the request resolved to `WorkerPanicked`).
    pub fn record_failed(&self) {
        self.failed.inc();
    }

    /// Records one applied insert (worker side).
    pub fn record_insert(&self, latency: Duration) {
        self.mutation_latency.record(latency);
        self.inserts.inc();
    }

    /// Records one acknowledged delete (worker side).
    pub fn record_delete(&self, latency: Duration) {
        self.mutation_latency.record(latency);
        self.deletes.inc();
    }

    /// Records one completed compaction and its wall time.
    pub fn record_compaction(&self, wall: Duration) {
        self.compactions.inc();
        self.compaction_nanos
            .add(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one job's time-in-queue (admission → worker pickup).
    // lint:hot-path
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Records how many jobs one worker wake-up drained.
    // lint:hot-path
    pub fn record_batch_size(&self, batch: usize) {
        self.batch_size.observe(batch as u64);
    }

    /// Publishes the current admission-queue depth.
    // lint:hot-path
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as f64);
    }

    /// Publishes the serving index's delta and tombstone fractions (from
    /// `DeltaStats`), so a scrape shows how far the index has drifted from
    /// its last compaction.
    pub fn set_delta_fractions(&self, delta: f64, tombstone: f64) {
        self.delta_fraction.set(delta);
        self.tombstone_fraction.set(tombstone);
    }

    /// The read side of the insert/delete latency histogram.
    pub fn mutation_latency(&self) -> &LatencyHistogram {
        &self.mutation_latency
    }

    /// Number of admission rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Number of successfully answered queries so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// The read side of the direct latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Derives the SLO report from the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let completed = self.completed.get();
        let elapsed = self.started.elapsed();
        MetricsSnapshot {
            completed,
            rejected: self.rejected.get(),
            expired: self.expired.get(),
            failed: self.failed.get(),
            elapsed,
            qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            p50: self.latency.quantile(0.50),
            p90: self.latency.quantile(0.90),
            p99: self.latency.quantile(0.99),
            mean_latency: self.latency.mean(),
            inserts: self.inserts.get(),
            deletes: self.deletes.get(),
            compactions: self.compactions.get(),
            compaction_time: Duration::from_nanos(self.compaction_nanos.get()),
            mutation_p50: self.mutation_latency.quantile(0.50),
            mutation_p99: self.mutation_latency.quantile(0.99),
            mean_distance_computations: if completed == 0 {
                0.0
            } else {
                self.distance_computations.get() as f64 / completed as f64
            },
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time SLO report derived by [`ServerMetrics::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries answered successfully.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests dropped because their deadline passed before execution.
    pub expired: u64,
    /// Requests whose search panicked on the worker (resolved to
    /// `WorkerPanicked`, worker kept serving).
    pub failed: u64,
    /// Length of the metrics window (server start to this snapshot).
    pub elapsed: Duration,
    /// Completed queries per second over the window.
    pub qps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 90th-percentile end-to-end latency.
    pub p90: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Mean end-to-end latency (exact, not bucketed).
    pub mean_latency: Duration,
    /// Inserts applied by the delta layer.
    pub inserts: u64,
    /// Deletes acknowledged (tombstoned or confirmed-absent).
    pub deletes: u64,
    /// Compactions that rebuilt the base and swapped it behind traffic.
    pub compactions: u64,
    /// Total wall time spent compacting.
    pub compaction_time: Duration,
    /// Median end-to-end insert/delete latency.
    pub mutation_p50: Duration,
    /// 99th-percentile end-to-end insert/delete latency.
    pub mutation_p99: Duration,
    /// Mean distance computations per completed query.
    pub mean_distance_computations: f64,
}

impl MetricsSnapshot {
    /// Fraction of submissions that were rejected (0 when none arrived).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.completed + self.rejected + self.expired + self.failed;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }
}

/// Microseconds with one decimal — latency numbers at serving scale.
fn fmt_us(d: Duration) -> String {
    format!("{:.1}µs", d.as_nanos() as f64 / 1000.0)
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} qps | p50 {} p90 {} p99 {} mean {} | {} ok, {} rejected, {} expired, {} failed | {:.0} dist/query",
            self.qps,
            fmt_us(self.p50),
            fmt_us(self.p90),
            fmt_us(self.p99),
            fmt_us(self.mean_latency),
            self.completed,
            self.rejected,
            self.expired,
            self.failed,
            self.mean_distance_computations,
        )?;
        if self.inserts + self.deletes + self.compactions > 0 {
            write!(
                f,
                " | {} ins, {} del (p50 {} p99 {}), {} compactions ({:.1}ms)",
                self.inserts,
                self.deletes,
                fmt_us(self.mutation_p50),
                fmt_us(self.mutation_p99),
                self.compactions,
                self.compaction_time.as_secs_f64() * 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Migration regression: the registry-backed histogram must report the
    /// same quantiles (within the documented ≤ 12.5% bucket error) the
    /// pre-migration local histogram did for the same stream.
    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 observations: 1µs ×90, 1ms ×9, 100ms ×1.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(2));
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(1) && p99 < Duration::from_micros(1200));
        let p100 = h.quantile(1.0);
        assert!(p100 >= Duration::from_millis(100));
        assert!(h.mean() > Duration::from_micros(1000));
        assert_eq!(LatencyHistogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_derives_rates_and_means() {
        let m = ServerMetrics::new();
        m.record_completed(
            Duration::from_micros(100),
            SearchStats { distance_computations: 200, hops: 10, visited: 200 },
        );
        m.record_completed(
            Duration::from_micros(300),
            SearchStats { distance_computations: 400, hops: 20, visited: 400 },
        );
        m.record_rejected();
        m.record_expired();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        assert!((snap.mean_distance_computations - 300.0).abs() < 1e-9);
        assert!((snap.rejection_rate() - 0.25).abs() < 1e-9);
        assert!(snap.qps > 0.0);
        assert!(snap.p99 >= snap.p50);
        assert!(!snap.to_string().is_empty());
        // Empty metrics degrade to zeros, not NaNs or panics.
        let empty = ServerMetrics::new().snapshot();
        assert_eq!(empty.mean_distance_computations, 0.0);
        assert_eq!(empty.rejection_rate(), 0.0);
        assert_eq!(empty.p50, Duration::ZERO);
    }

    #[test]
    fn queue_and_delta_instruments_land_in_the_registry() {
        let m = ServerMetrics::new();
        m.record_queue_wait(Duration::from_micros(50));
        m.record_batch_size(4);
        m.record_batch_size(2);
        m.set_queue_depth(7);
        m.set_delta_fractions(0.25, 0.05);
        let r = m.registry();
        assert_eq!(r.histogram("serve_queue_wait").count(), 1);
        assert_eq!(r.histogram("serve_batch_size").count(), 2);
        assert_eq!(r.histogram("serve_batch_size").sum(), 6);
        assert_eq!(r.gauge("serve_queue_depth").get(), 7.0);
        assert_eq!(r.gauge("serve_delta_fraction").get(), 0.25);
        assert_eq!(r.gauge("serve_tombstone_fraction").get(), 0.05);
        // A scrape of the per-server registry sees the SLO counters too.
        m.record_rejected();
        let body = r.render_prometheus();
        assert!(body.contains("serve_rejected 1"));
        assert!(body.contains("# TYPE serve_queue_wait histogram"));
    }

    #[test]
    fn two_servers_metrics_are_isolated() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.record_rejected();
        assert_eq!(a.rejected(), 1);
        assert_eq!(b.rejected(), 0);
        assert!(!Arc::ptr_eq(a.registry(), b.registry()));
    }
}
