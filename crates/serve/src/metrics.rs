//! Latency SLO instrumentation: [`ServerMetrics`].
//!
//! Every completed query's end-to-end latency (enqueue → response written)
//! lands in a **fixed-bucket** log-scale histogram: 64 power-of-two octaves
//! of nanoseconds, each split into 8 linear sub-buckets (HDR-histogram
//! style), giving ≤ 12.5% relative error across the full range from 1 ns to
//! centuries with a flat 512-counter array. Recording is a single atomic
//! increment — no locks, no allocation — so the warm query path stays
//! allocation-free with metrics on.
//!
//! [`ServerMetrics::snapshot`] derives the numbers an SLO dashboard wants:
//! p50/p90/p99 latency, QPS over the metrics window, the rejected and
//! deadline-expired counts, and the mean distance computations per query
//! (straight from the [`SearchStats`] every index already reports).

use nsg_core::search::SearchStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// 64 octaves × 8 sub-buckets (the first octaves are exact).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a latency in nanoseconds to its histogram bucket: the octave of the
/// leading bit, refined by the next [`SUB_BITS`] bits. Monotone in `nanos`.
fn bucket_index(nanos: u64) -> usize {
    let n = nanos.max(1);
    let msb = 63 - n.leading_zeros();
    if msb < SUB_BITS {
        n as usize
    } else {
        let sub = ((n >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB + sub
    }
}

/// Upper bound (inclusive, in nanoseconds) of the values a bucket covers —
/// the value reported for a quantile that lands in the bucket.
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let msb = (index / SUB) as u32 + SUB_BITS - 1;
        let sub = (index % SUB) as u128;
        // Start of the next sub-bucket, minus one; computed in u128 because
        // the topmost bucket's bound is exactly 2^64 (it saturates to
        // u64::MAX).
        let bound = (((1u128 << SUB_BITS) + sub + 1) << (msb - SUB_BITS)) - 1;
        u64::try_from(bound).unwrap_or(u64::MAX)
    }
}

/// The fixed-bucket concurrent latency histogram (see the module docs).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum for the mean (the buckets alone would round it).
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (a flat array of zeroed counters).
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one latency observation. Lock-free and allocation-free.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded latencies, as the
    /// upper bound of the bucket holding that rank (≤ 12.5% high). Zero when
    /// nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(bucket_upper_bound(i));
            }
        }
        Duration::from_nanos(bucket_upper_bound(BUCKETS - 1))
    }

    /// Exact mean of the recorded latencies (zero when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / count)
    }
}

/// All serving counters of one [`Server`](crate::server::Server): the latency
/// histogram plus completion, rejection, deadline and search-cost tallies.
/// Shared by every worker; all recording is atomic.
pub struct ServerMetrics {
    latency: LatencyHistogram,
    /// End-to-end insert/delete latencies, kept out of the query histogram
    /// so mutations never distort the query SLO percentiles.
    mutation_latency: LatencyHistogram,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    compactions: AtomicU64,
    compaction_nanos: AtomicU64,
    distance_computations: AtomicU64,
    started: Instant,
}

impl ServerMetrics {
    /// Creates zeroed metrics; the QPS window starts now.
    pub fn new() -> Self {
        Self {
            latency: LatencyHistogram::new(),
            mutation_latency: LatencyHistogram::new(),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_nanos: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one successfully answered query (worker side).
    pub fn record_completed(&self, latency: Duration, stats: SearchStats) {
        self.latency.record(latency);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.distance_computations
            .fetch_add(stats.distance_computations, Ordering::Relaxed);
    }

    /// Records one admission rejection (queue full at submit time).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request dropped because its deadline passed in the queue.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request that failed because its search panicked on the
    /// worker (the request resolved to `WorkerPanicked`).
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one applied insert (worker side).
    pub fn record_insert(&self, latency: Duration) {
        self.mutation_latency.record(latency);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one acknowledged delete (worker side).
    pub fn record_delete(&self, latency: Duration) {
        self.mutation_latency.record(latency);
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed compaction and its wall time.
    pub fn record_compaction(&self, wall: Duration) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_nanos
            .fetch_add(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The read side of the insert/delete latency histogram.
    pub fn mutation_latency(&self) -> &LatencyHistogram {
        &self.mutation_latency
    }

    /// Number of admission rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of successfully answered queries so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// The read side of the direct latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Derives the SLO report from the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        MetricsSnapshot {
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            elapsed,
            qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            p50: self.latency.quantile(0.50),
            p90: self.latency.quantile(0.90),
            p99: self.latency.quantile(0.99),
            mean_latency: self.latency.mean(),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_time: Duration::from_nanos(self.compaction_nanos.load(Ordering::Relaxed)),
            mutation_p50: self.mutation_latency.quantile(0.50),
            mutation_p99: self.mutation_latency.quantile(0.99),
            mean_distance_computations: if completed == 0 {
                0.0
            } else {
                self.distance_computations.load(Ordering::Relaxed) as f64 / completed as f64
            },
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time SLO report derived by [`ServerMetrics::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries answered successfully.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests dropped because their deadline passed before execution.
    pub expired: u64,
    /// Requests whose search panicked on the worker (resolved to
    /// `WorkerPanicked`, worker kept serving).
    pub failed: u64,
    /// Length of the metrics window (server start to this snapshot).
    pub elapsed: Duration,
    /// Completed queries per second over the window.
    pub qps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 90th-percentile end-to-end latency.
    pub p90: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Mean end-to-end latency (exact, not bucketed).
    pub mean_latency: Duration,
    /// Inserts applied by the delta layer.
    pub inserts: u64,
    /// Deletes acknowledged (tombstoned or confirmed-absent).
    pub deletes: u64,
    /// Compactions that rebuilt the base and swapped it behind traffic.
    pub compactions: u64,
    /// Total wall time spent compacting.
    pub compaction_time: Duration,
    /// Median end-to-end insert/delete latency.
    pub mutation_p50: Duration,
    /// 99th-percentile end-to-end insert/delete latency.
    pub mutation_p99: Duration,
    /// Mean distance computations per completed query.
    pub mean_distance_computations: f64,
}

impl MetricsSnapshot {
    /// Fraction of submissions that were rejected (0 when none arrived).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.completed + self.rejected + self.expired + self.failed;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }
}

/// Microseconds with one decimal — latency numbers at serving scale.
fn fmt_us(d: Duration) -> String {
    format!("{:.1}µs", d.as_nanos() as f64 / 1000.0)
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} qps | p50 {} p90 {} p99 {} mean {} | {} ok, {} rejected, {} expired, {} failed | {:.0} dist/query",
            self.qps,
            fmt_us(self.p50),
            fmt_us(self.p90),
            fmt_us(self.p99),
            fmt_us(self.mean_latency),
            self.completed,
            self.rejected,
            self.expired,
            self.failed,
            self.mean_distance_computations,
        )?;
        if self.inserts + self.deletes + self.compactions > 0 {
            write!(
                f,
                " | {} ins, {} del (p50 {} p99 {}), {} compactions ({:.1}ms)",
                self.inserts,
                self.deletes,
                fmt_us(self.mutation_p50),
                fmt_us(self.mutation_p99),
                self.compactions,
                self.compaction_time.as_secs_f64() * 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0u32..63 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(4)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must not decrease ({v})");
            assert!(idx < BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(0), bucket_index(1));
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn extreme_latencies_do_not_overflow_the_bucket_bounds() {
        // The topmost bucket's upper bound is 2^64: the math must saturate,
        // not wrap (or panic in debug builds).
        assert_eq!(bucket_upper_bound(bucket_index(u64::MAX)), u64::MAX);
        let h = LatencyHistogram::new();
        h.record(Duration::MAX);
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn bucket_bounds_cover_their_values_with_bounded_error() {
        for &v in &[1u64, 7, 8, 100, 999, 1_000, 123_456, 1_000_000, 10_u64.pow(9), u64::MAX / 2] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // ≤ 12.5% relative error plus rounding slack in the tiny buckets.
            assert!(ub as f64 <= v as f64 * 1.125 + 1.0, "bucket too wide for {v}: {ub}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 observations: 1µs ×90, 1ms ×9, 100ms ×1.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(1));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(2));
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(1) && p99 < Duration::from_micros(1200));
        let p100 = h.quantile(1.0);
        assert!(p100 >= Duration::from_millis(100));
        assert!(h.mean() > Duration::from_micros(1000));
        assert_eq!(LatencyHistogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_derives_rates_and_means() {
        let m = ServerMetrics::new();
        m.record_completed(
            Duration::from_micros(100),
            SearchStats { distance_computations: 200, hops: 10, visited: 200 },
        );
        m.record_completed(
            Duration::from_micros(300),
            SearchStats { distance_computations: 400, hops: 20, visited: 400 },
        );
        m.record_rejected();
        m.record_expired();
        let snap = m.snapshot();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        assert!((snap.mean_distance_computations - 300.0).abs() < 1e-9);
        assert!((snap.rejection_rate() - 0.25).abs() < 1e-9);
        assert!(snap.qps > 0.0);
        assert!(snap.p99 >= snap.p50);
        assert!(!snap.to_string().is_empty());
        // Empty metrics degrade to zeros, not NaNs or panics.
        let empty = ServerMetrics::new().snapshot();
        assert_eq!(empty.mean_distance_computations, 0.0);
        assert_eq!(empty.rejection_rate(), 0.0);
        assert_eq!(empty.p50, Duration::ZERO);
    }
}
