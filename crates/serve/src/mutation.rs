//! Live-mutation runtime: the mutable-index cell and the compaction policy.
//!
//! A server started with
//! [`Server::start_mutable`](crate::server::Server::start_mutable) serves a
//! [`MutableAnnIndex`] — the frozen base plus its delta layer — and routes
//! inserts/deletes through the same worker pool as queries. This module owns
//! the two pieces that make that safe behind live traffic:
//!
//! * the **cell**: the current mutation view, reloaded by workers per
//!   mutation so a compaction's successor is picked up without restarting
//!   anything (the query view is the [`IndexHandle`] snapshot, as always);
//! * the **compaction trigger**: after every applied mutation a worker
//!   checks the [`MutationPolicy`] thresholds against
//!   [`DeltaStats`](nsg_core::delta::DeltaStats) and, if it wins the
//!   `compacting` flag, rebuilds inline — `compact_sealed()` re-runs the
//!   paper's Algorithm 2 over base+delta minus tombstones, the successor is
//!   installed in the cell, and the frozen query view is swapped into the
//!   [`IndexHandle`] behind live readers.
//!
//! Mutations racing a compaction are never lost: the delta layer's
//! seal-and-replay handover folds post-gather writes into the successor, and
//! the brief window in which the old index answers `Sealed` is absorbed by a
//! bounded retry in the worker (see `worker::serve_mutation`).

use crate::handle::IndexHandle;
use crate::metrics::ServerMetrics;
use nsg_core::delta::MutableAnnIndex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// When the server folds the delta layer back into a fresh frozen base.
///
/// The defaults track the validated operating envelope: merged (base+delta)
/// search recall is tested to stay within 1% of a full rebuild up to a 10%
/// delta fraction, so compaction fires before the layer outgrows that bound.
#[derive(Debug, Clone, Copy)]
pub struct MutationPolicy {
    /// Compact once delta points exceed this fraction of the live index
    /// (default `0.10`).
    pub max_delta_fraction: f64,
    /// Compact once tombstones exceed this fraction of base+delta rows
    /// (default `0.10`).
    pub max_tombstone_fraction: f64,
    /// Never compact before this many mutations (delta rows + tombstones)
    /// accumulated (default `64`) — keeps a nearly empty index from
    /// compacting on its very first insert.
    pub min_mutations: usize,
}

impl Default for MutationPolicy {
    fn default() -> Self {
        Self {
            max_delta_fraction: 0.10,
            max_tombstone_fraction: 0.10,
            min_mutations: 64,
        }
    }
}

impl MutationPolicy {
    /// A policy that never compacts automatically — for benchmarks that want
    /// to sweep the delta fraction without the trigger folding it away.
    pub fn never() -> Self {
        Self {
            max_delta_fraction: f64::INFINITY,
            max_tombstone_fraction: f64::INFINITY,
            min_mutations: usize::MAX,
        }
    }

    /// Sets the delta-fraction threshold.
    pub fn max_delta_fraction(mut self, fraction: f64) -> Self {
        self.max_delta_fraction = fraction;
        self
    }

    /// Sets the tombstone-fraction threshold.
    pub fn max_tombstone_fraction(mut self, fraction: f64) -> Self {
        self.max_tombstone_fraction = fraction;
        self
    }

    /// Sets the minimum accumulated mutations before any compaction.
    pub fn min_mutations(mut self, count: usize) -> Self {
        self.min_mutations = count;
        self
    }
}

/// The server-side mutation state shared by all workers.
pub(crate) struct MutationRuntime {
    /// The current mutation view. Workers reload it per mutation, so the
    /// successor installed by a compaction is picked up immediately.
    cell: RwLock<Arc<dyn MutableAnnIndex>>,
    /// Single-flight guard: at most one worker compacts at a time; the
    /// others keep serving.
    compacting: AtomicBool,
    pub(crate) policy: MutationPolicy,
}

impl MutationRuntime {
    pub(crate) fn new(index: Arc<dyn MutableAnnIndex>, policy: MutationPolicy) -> Self {
        Self {
            cell: RwLock::new(index),
            compacting: AtomicBool::new(false),
            policy,
        }
    }

    /// The current mutation view (an `Arc` clone; cheap).
    pub(crate) fn load(&self) -> Arc<dyn MutableAnnIndex> {
        Arc::clone(&self.cell.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn install(&self, next: Arc<dyn MutableAnnIndex>) {
        *self.cell.write().unwrap_or_else(|e| e.into_inner()) = next;
    }

    /// Whether the policy says the given index is due for compaction.
    fn due(&self, index: &dyn MutableAnnIndex) -> bool {
        let stats = index.delta_stats();
        if stats.delta_len + stats.tombstones < self.policy.min_mutations {
            return false;
        }
        stats.delta_fraction() > self.policy.max_delta_fraction
            || stats.tombstone_fraction() > self.policy.max_tombstone_fraction
    }

    /// Runs the compaction trigger: if the thresholds are exceeded and no
    /// other worker is already compacting, rebuilds the base from
    /// base+delta minus tombstones and installs the successor — mutation
    /// view into the cell, frozen query view into `handle` via
    /// [`IndexHandle::swap`] — behind live traffic.
    ///
    /// Runs inline on the worker that applied the tipping mutation, after
    /// that mutation's response was already completed: the compaction wall
    /// time never inflates a recorded mutation latency, and the other
    /// workers keep draining the queue meanwhile.
    pub(crate) fn maybe_compact(&self, handle: &IndexHandle, metrics: &ServerMetrics) {
        let current = self.load();
        let stats = current.delta_stats();
        metrics.set_delta_fractions(stats.delta_fraction(), stats.tombstone_fraction());
        if !self.due(current.as_ref()) {
            return;
        }
        if self.compacting.swap(true, Ordering::AcqRel) {
            return;
        }
        // Re-read under the flag: another worker may have compacted between
        // our threshold check and winning the flag, and compacting its
        // sealed predecessor would resurrect a stale generation.
        let index = self.load();
        if self.due(index.as_ref()) {
            let started = Instant::now();
            let pair = index.compact_sealed();
            self.install(Arc::clone(&pair.mutable));
            handle.swap(Arc::clone(&pair.index));
            metrics.record_compaction(started.elapsed());
            let stats = pair.mutable.delta_stats();
            metrics.set_delta_fractions(stats.delta_fraction(), stats.tombstone_fraction());
        }
        self.compacting.store(false, Ordering::Release);
    }
}
