//! The embedded query service: [`Server`] and [`ServerConfig`].
//!
//! A `Server` owns a pool of worker threads behind one bounded MPMC
//! admission queue. Clients submit queries through reusable
//! [`ResponseSlot`]s; workers answer them on worker-pinned
//! [`PinnedContext`](nsg_core::context::PinnedContext)s against the current
//! [`IndexHandle`] snapshot, which can be [hot-swapped](IndexHandle::swap)
//! behind live traffic at any time. The queue is the backpressure boundary:
//! [`try_submit`](Server::try_submit) never blocks — a full queue is an
//! explicit [`ServeError::Overloaded`] rejection the caller (and the
//! [`ServerMetrics`] rejected counter) sees, which is what lets an
//! overloaded service keep its latency SLO instead of queueing unboundedly.
//!
//! Shutdown is graceful by construction: dropping the server closes the
//! queue's send side; workers drain every accepted request before exiting,
//! so no submitted query is left waiting forever.

use crate::error::ServeError;
use crate::handle::IndexHandle;
use crate::metrics::ServerMetrics;
use crate::mutation::{MutationPolicy, MutationRuntime};
use crate::slot::ResponseSlot;
use crate::worker::worker_loop;
use crossbeam_channel::{bounded, Sender, TrySendError};
use nsg_core::delta::{DeltaStats, MutableAnnIndex};
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of a [`Server`]'s worker pool, admission queue and micro-batches.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads, each with its own pinned search context. Clamped to
    /// at least 1.
    pub workers: usize,
    /// Capacity of the bounded admission queue — the backpressure knob: a
    /// submit hitting a full queue is rejected with
    /// [`ServeError::Overloaded`]. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains (non-blocking) per wakeup and serves
    /// on one snapshot load. `1` (the default) disables micro-batching.
    ///
    /// Trade-off: batching amortizes snapshot loads under sustained load,
    /// but on a lightly loaded server one worker can drain a whole burst
    /// and serve it sequentially while its peers sit idle — the last job of
    /// the batch then waits `max_batch` service times instead of spreading
    /// across workers. Keep `1` when tail latency matters more than
    /// throughput. Clamped to at least 1.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            workers,
            queue_capacity: workers * 64,
            max_batch: 1,
        }
    }
}

impl ServerConfig {
    /// A config with `workers` threads and proportionate queue capacity.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            queue_capacity: workers.max(1) * 64,
            max_batch: 1,
        }
    }

    /// Sets the admission queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the micro-batch drain limit.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }
}

/// What a queued job asks the worker to do. Mutations ride the same bounded
/// admission queue as queries — one backpressure boundary for all traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Answer the query carried in the slot's query buffer.
    Query,
    /// Insert the vector carried in the slot's query buffer.
    Insert,
    /// Tombstone this id.
    Delete(u32),
}

/// One queued request: the client's slot (carrying the query and receiving
/// the answer), the request description, and its timing.
pub(crate) struct Job {
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) request: SearchRequest,
    pub(crate) kind: JobKind,
    pub(crate) deadline: Option<Instant>,
    pub(crate) enqueued: Instant,
}

/// The embedded concurrent query service (see the module docs).
pub struct Server {
    handle: Arc<IndexHandle>,
    metrics: Arc<ServerMetrics>,
    /// `Some` when the server was started over a mutable index
    /// ([`start_mutable`](Self::start_mutable)) and accepts inserts/deletes.
    mutation: Option<Arc<MutationRuntime>>,
    /// `None` once shutdown began (the queue's send side is closed).
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
}

impl Server {
    /// Starts a server over `index` (wrapped as generation 0 of a fresh
    /// [`IndexHandle`]).
    pub fn start(index: Arc<dyn AnnIndex>, config: ServerConfig) -> Self {
        Self::with_handle(Arc::new(IndexHandle::new(index)), config)
    }

    /// Starts a server over an existing hot-swap handle (shared with the
    /// re-indexing side that calls [`IndexHandle::swap`]).
    pub fn with_handle(handle: Arc<IndexHandle>, config: ServerConfig) -> Self {
        Self::start_inner(handle, config, None)
    }

    /// Starts a server over a **mutable** index: queries are served from the
    /// merged base+delta view, and [`submit_insert`](Self::submit_insert) /
    /// [`submit_delete`](Self::submit_delete) route through the same worker
    /// pool. After every applied mutation the worker checks `policy`; when a
    /// threshold trips, it compacts the delta into a fresh frozen base and
    /// installs it behind live traffic via [`IndexHandle::swap`].
    pub fn start_mutable<M>(index: Arc<M>, config: ServerConfig, policy: MutationPolicy) -> Self
    where
        M: MutableAnnIndex + 'static,
    {
        let queryable: Arc<dyn AnnIndex> = Arc::clone(&index) as Arc<dyn AnnIndex>;
        let mutable: Arc<dyn MutableAnnIndex> = index;
        Self::start_inner(
            Arc::new(IndexHandle::new(queryable)),
            config,
            Some(Arc::new(MutationRuntime::new(mutable, policy))),
        )
    }

    fn start_inner(
        handle: Arc<IndexHandle>,
        config: ServerConfig,
        mutation: Option<Arc<MutationRuntime>>,
    ) -> Self {
        // Clamp once and keep the clamped values: `Server::config` must
        // report the configuration the server actually runs with.
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
        };
        let workers = config.workers;
        let max_batch = config.max_batch;
        let (tx, rx) = bounded(config.queue_capacity);
        let metrics = Arc::new(ServerMetrics::new());
        let threads = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let handle = Arc::clone(&handle);
                let metrics = Arc::clone(&metrics);
                let mutation = mutation.clone();
                std::thread::Builder::new()
                    .name(format!("nsg-serve-{i}"))
                    .spawn(move || worker_loop(rx, handle, metrics, max_batch, mutation))
                    .expect("failed to spawn serving worker") // lint:allow(no-panic): spawn failure at startup is unrecoverable, fail fast before serving begins
            })
            .collect();
        Self {
            handle,
            metrics,
            mutation,
            tx: Some(tx),
            workers: threads,
            config,
        }
    }

    /// The hot-swap handle: call [`IndexHandle::swap`] on it to replace the
    /// served index behind live traffic.
    pub fn handle(&self) -> &Arc<IndexHandle> {
        &self.handle
    }

    /// The server's SLO counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The effective configuration the server runs with (out-of-range
    /// values requested at start are clamped to at least 1).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared submission sequence behind [`try_submit`](Self::try_submit)
    /// and [`submit`](Self::submit): claim the slot, build the job, enqueue
    /// it (blocking or not), and release the slot on any failure.
    fn submit_impl(
        &self,
        slot: &Arc<ResponseSlot>,
        query: &[f32],
        request: &SearchRequest,
        kind: JobKind,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<(), ServeError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        slot.begin(query)?;
        let enqueued = Instant::now();
        let job = Job {
            slot: Arc::clone(slot),
            request: *request,
            kind,
            deadline: deadline.map(|d| enqueued + d),
            enqueued,
        };
        let error = if blocking {
            match tx.send(job) {
                Ok(()) => return Ok(()),
                Err(_) => ServeError::ShuttingDown,
            }
        } else {
            match tx.try_send(job) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(_)) => {
                    self.metrics.record_rejected();
                    ServeError::Overloaded
                }
                Err(TrySendError::Disconnected(_)) => ServeError::ShuttingDown,
            }
        };
        slot.cancel();
        Err(error)
    }

    /// Submits a query through `slot` **without blocking**. `deadline` is a
    /// time budget measured from now; a request still queued when it runs
    /// out is dropped (the slot resolves to
    /// [`ServeError::DeadlineExceeded`]).
    ///
    /// A full queue rejects with [`ServeError::Overloaded`] and bumps the
    /// metrics rejected counter — the explicit load-shedding path. On any
    /// error the slot is released and reusable immediately.
    pub fn try_submit(
        &self,
        slot: &Arc<ResponseSlot>,
        query: &[f32],
        request: &SearchRequest,
        deadline: Option<Duration>,
    ) -> Result<(), ServeError> {
        self.submit_impl(slot, query, request, JobKind::Query, deadline, false)
    }

    /// Submits a query through `slot`, **blocking** while the queue is full —
    /// cooperative backpressure for closed-loop clients that would rather
    /// wait than be rejected.
    pub fn submit(
        &self,
        slot: &Arc<ResponseSlot>,
        query: &[f32],
        request: &SearchRequest,
        deadline: Option<Duration>,
    ) -> Result<(), ServeError> {
        self.submit_impl(slot, query, request, JobKind::Query, deadline, true)
    }

    /// One-off convenience: submits on a fresh slot, blocks for the answer,
    /// and returns it owned. Allocates per call — client loops should hold a
    /// slot and use [`try_submit`](Self::try_submit) + `wait` instead.
    pub fn search_blocking(
        &self,
        query: &[f32],
        request: &SearchRequest,
    ) -> Result<Vec<Neighbor>, ServeError> {
        let slot = Arc::new(ResponseSlot::new());
        self.submit(&slot, query, request, None)?;
        let response = slot.wait()?;
        Ok(response.neighbors().to_vec())
    }

    /// Submits an insert through `slot`, blocking while the queue is full.
    /// The vector rides in the slot's warm query buffer; the worker applies
    /// it to the delta layer and resolves the slot with a mutation
    /// acknowledgement ([`ResponseGuard::mutation`](crate::slot::ResponseGuard::mutation)
    /// carries the assigned id). Fails with [`ServeError::NotMutable`] on a
    /// server not started with [`start_mutable`](Self::start_mutable).
    pub fn submit_insert(
        &self,
        slot: &Arc<ResponseSlot>,
        vector: &[f32],
        deadline: Option<Duration>,
    ) -> Result<(), ServeError> {
        if self.mutation.is_none() {
            return Err(ServeError::NotMutable);
        }
        self.submit_impl(slot, vector, &SearchRequest::new(1), JobKind::Insert, deadline, true)
    }

    /// Submits a delete (tombstone) of `id` through `slot`, blocking while
    /// the queue is full. The acknowledgement's `applied` flag reports
    /// whether the id was live (`false` for an id already deleted or out of
    /// range). Fails with [`ServeError::NotMutable`] on a server not started
    /// with [`start_mutable`](Self::start_mutable).
    pub fn submit_delete(
        &self,
        slot: &Arc<ResponseSlot>,
        id: u32,
        deadline: Option<Duration>,
    ) -> Result<(), ServeError> {
        if self.mutation.is_none() {
            return Err(ServeError::NotMutable);
        }
        self.submit_impl(slot, &[], &SearchRequest::new(1), JobKind::Delete(id), deadline, true)
    }

    /// One-off convenience: inserts `vector` and blocks for its assigned id.
    /// Allocates per call — writer loops should hold a slot and use
    /// [`submit_insert`](Self::submit_insert) + `wait` instead.
    pub fn insert_blocking(&self, vector: &[f32]) -> Result<u32, ServeError> {
        let slot = Arc::new(ResponseSlot::new());
        self.submit_insert(&slot, vector, None)?;
        let response = slot.wait()?;
        response.mutation().map(|(id, _)| id).ok_or(ServeError::MutationRejected)
    }

    /// One-off convenience: deletes `id` and blocks for whether the delete
    /// took effect (see [`submit_delete`](Self::submit_delete)).
    pub fn delete_blocking(&self, id: u32) -> Result<bool, ServeError> {
        let slot = Arc::new(ResponseSlot::new());
        self.submit_delete(&slot, id, None)?;
        let response = slot.wait()?;
        response.mutation().map(|(_, applied)| applied).ok_or(ServeError::MutationRejected)
    }

    /// Delta-layer statistics of the served mutable index (`None` on a
    /// query-only server).
    pub fn delta_stats(&self) -> Option<DeltaStats> {
        self.mutation.as_ref().map(|m| m.load().delta_stats())
    }

    /// Stops accepting new requests, serves everything already accepted, and
    /// joins the workers. Called automatically on drop; call it explicitly
    /// to observe the joined state (e.g. before reading final metrics).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Closing the send side lets workers drain the queue and exit.
        self.tx = None;
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsg_core::context::SearchContext;
    use nsg_core::delta::MutableIndex;
    use nsg_core::neighbor;
    use nsg_core::nsg::{NsgIndex, NsgParams};
    use nsg_knn::NnDescentParams;
    use nsg_vectors::distance::SquaredEuclidean;
    use nsg_vectors::synthetic::uniform;

    /// Deterministic toy index: neighbor ids count up from the floor of the
    /// query's first coordinate.
    struct Echo;
    impl AnnIndex for Echo {
        fn new_context(&self) -> SearchContext {
            SearchContext::new()
        }
        fn search_into<'a>(
            &self,
            ctx: &'a mut SearchContext,
            request: &SearchRequest,
            query: &[f32],
        ) -> &'a [Neighbor] {
            let start = query.first().copied().unwrap_or(0.0) as u32;
            ctx.results.clear();
            ctx.results
                .extend((0..request.k as u32).map(|i| Neighbor::new(start + i, i as f32)));
            &ctx.results
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "echo"
        }
    }

    fn echo_server(workers: usize) -> Server {
        Server::start(Arc::new(Echo), ServerConfig::with_workers(workers))
    }

    #[test]
    fn serves_queries_end_to_end() {
        let server = echo_server(2);
        let res = server
            .search_blocking(&[7.0], &SearchRequest::new(3))
            .unwrap();
        assert_eq!(neighbor::ids(&res), vec![7, 8, 9]);
        let snap = server.metrics().snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.rejected, 0);
        server.shutdown();
    }

    #[test]
    fn slot_reuse_serves_many_queries_in_order() {
        let server = echo_server(1);
        let slot = Arc::new(ResponseSlot::new());
        let request = SearchRequest::new(2);
        for q in 0..100u32 {
            server.try_submit(&slot, &[q as f32], &request, None).unwrap();
            let response = slot.wait().unwrap();
            assert_eq!(neighbor::ids(response.neighbors()), vec![q, q + 1]);
            assert_eq!(response.generation(), 0);
        }
        assert_eq!(server.metrics().snapshot().completed, 100);
    }

    #[test]
    fn hot_swap_changes_answers_between_queries() {
        let server = echo_server(1);
        let slot = Arc::new(ResponseSlot::new());
        let request = SearchRequest::new(1);
        server.try_submit(&slot, &[0.0], &request, None).unwrap();
        assert_eq!(slot.wait().unwrap().generation(), 0);
        server.handle().swap(Arc::new(Echo));
        server.try_submit(&slot, &[0.0], &request, None).unwrap();
        assert_eq!(slot.wait().unwrap().generation(), 1);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let server = echo_server(1);
        let slots: Vec<Arc<ResponseSlot>> =
            (0..16).map(|_| Arc::new(ResponseSlot::new())).collect();
        for (i, slot) in slots.iter().enumerate() {
            server.submit(slot, &[i as f32], &SearchRequest::new(1), None).unwrap();
        }
        server.shutdown();
        for (i, slot) in slots.iter().enumerate() {
            let response = slot.wait().expect("accepted request must be served");
            assert_eq!(response.neighbors()[0].id, i as u32);
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let mut server = echo_server(1);
        server.shutdown_in_place();
        let slot = Arc::new(ResponseSlot::new());
        assert_eq!(
            server.try_submit(&slot, &[0.0], &SearchRequest::new(1), None).err(),
            Some(ServeError::ShuttingDown)
        );
        assert_eq!(
            server.search_blocking(&[0.0], &SearchRequest::new(1)).err(),
            Some(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn expired_deadline_is_reported_not_served() {
        let server = echo_server(1);
        let slot = Arc::new(ResponseSlot::new());
        // A deadline of zero is already past when the worker picks it up.
        server
            .try_submit(&slot, &[0.0], &SearchRequest::new(1), Some(Duration::ZERO))
            .unwrap();
        assert_eq!(slot.wait().err(), Some(ServeError::DeadlineExceeded));
        let snap = server.metrics().snapshot();
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn config_reports_effective_clamped_values() {
        let server = Server::start(
            Arc::new(Echo),
            ServerConfig { workers: 0, queue_capacity: 0, max_batch: 0 },
        );
        assert_eq!(server.config().workers, 1);
        assert_eq!(server.config().queue_capacity, 1);
        assert_eq!(server.config().max_batch, 1);
        // And the clamped server actually serves.
        assert_eq!(server.search_blocking(&[0.0], &SearchRequest::new(1)).unwrap().len(), 1);
    }

    #[test]
    fn panicking_search_resolves_the_request_and_the_worker_survives() {
        struct Panicker;
        impl AnnIndex for Panicker {
            fn new_context(&self) -> SearchContext {
                SearchContext::new()
            }
            fn search_into<'a>(
                &self,
                _ctx: &'a mut SearchContext,
                _request: &SearchRequest,
                _query: &[f32],
            ) -> &'a [Neighbor] {
                panic!("broken index");
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "panicker"
            }
        }

        let server = Server::start(Arc::new(Panicker), ServerConfig::with_workers(1));
        let slot = Arc::new(ResponseSlot::new());
        server.try_submit(&slot, &[0.0], &SearchRequest::new(1), None).unwrap();
        // The client is told, not left hanging.
        assert_eq!(
            slot.wait_timeout(Duration::from_secs(30)).err(),
            Some(ServeError::WorkerPanicked)
        );
        assert_eq!(server.metrics().snapshot().failed, 1);
        // The worker survived: hot-swap a healthy index and serve on.
        server.handle().swap(Arc::new(Echo));
        server.try_submit(&slot, &[3.0], &SearchRequest::new(2), None).unwrap();
        let response = slot.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(neighbor::ids(response.neighbors()), vec![3, 4]);
        drop(response);
        server.shutdown();
    }

    fn small_mutable(size: usize, seed: u64) -> Arc<MutableIndex<SquaredEuclidean>> {
        let base = Arc::new(uniform(size, 8, seed));
        let frozen = NsgIndex::build(
            base,
            SquaredEuclidean,
            NsgParams {
                build_pool_size: 20,
                max_degree: 12,
                knn: NnDescentParams { k: 12, ..Default::default() },
                reverse_insert: true,
                seed,
            },
        );
        Arc::new(MutableIndex::new(frozen))
    }

    #[test]
    fn mutations_on_a_query_only_server_are_rejected() {
        let server = echo_server(1);
        assert_eq!(server.insert_blocking(&[0.0; 8]).err(), Some(ServeError::NotMutable));
        assert_eq!(server.delete_blocking(3).err(), Some(ServeError::NotMutable));
        assert!(server.delta_stats().is_none());
        // Queries still fine on the same server.
        assert_eq!(server.search_blocking(&[0.0], &SearchRequest::new(1)).unwrap().len(), 1);
    }

    #[test]
    fn insert_and_delete_round_trip_through_the_worker_pool() {
        let index = small_mutable(120, 5);
        let server =
            Server::start_mutable(index, ServerConfig::with_workers(2), MutationPolicy::never());
        let vector = [9.0f32; 8];
        let id = server.insert_blocking(&vector).unwrap();
        assert_eq!(id, 120);
        // The inserted point is findable through the served merged view.
        let hits = server
            .search_blocking(&vector, &SearchRequest::new(1).with_effort(60))
            .unwrap();
        assert_eq!(hits[0].id, id);
        assert_eq!(hits[0].dist, 0.0);
        // Delete it: applied once, then an acknowledged no-op.
        assert!(server.delete_blocking(id).unwrap());
        assert!(!server.delete_blocking(id).unwrap());
        let gone = server
            .search_blocking(&vector, &SearchRequest::new(1).with_effort(60))
            .unwrap();
        assert_ne!(gone[0].id, id);
        // A dimension mismatch is a typed rejection, not a hang.
        assert_eq!(server.insert_blocking(&[1.0; 3]).err(), Some(ServeError::MutationRejected));
        let stats = server.delta_stats().unwrap();
        assert_eq!(stats.delta_len, 1);
        assert_eq!(stats.tombstones, 1);
        let snap = server.metrics().snapshot();
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.deletes, 2);
        assert_eq!(snap.compactions, 0);
        assert_eq!(snap.failed, 1);
        server.shutdown();
    }

    #[test]
    fn compaction_trigger_swaps_a_fresh_base_behind_traffic() {
        let index = small_mutable(100, 6);
        let policy = MutationPolicy::default().min_mutations(4).max_delta_fraction(0.05);
        let server = Server::start_mutable(index, ServerConfig::with_workers(2), policy);
        let slot = Arc::new(ResponseSlot::new());
        for i in 0..12u32 {
            server.submit_insert(&slot, &[i as f32; 8], None).unwrap();
            let response = slot.wait().unwrap();
            assert!(response.mutation().unwrap().1);
        }
        // The tipping mutation's response completes *before* the rebuild, so
        // the compaction lands asynchronously — poll for it.
        let deadline = Instant::now() + Duration::from_secs(60);
        while server.metrics().snapshot().compactions == 0 {
            assert!(Instant::now() < deadline, "threshold policy never compacted");
            std::thread::sleep(Duration::from_millis(10));
        }
        let snap = server.metrics().snapshot();
        assert!(snap.compaction_time > Duration::ZERO);
        assert!(server.handle().generation() >= 1, "compaction must swap the query view");
        // Nothing was lost across the handover: every insert — gathered or
        // replayed — is live, and mutations keep landing on the successor.
        let stats = server.delta_stats().unwrap();
        assert_eq!(stats.live(), 112);
        let id = server.insert_blocking(&[50.0; 8]).unwrap();
        assert!(server.delete_blocking(id).unwrap());
        server.shutdown();
    }

    #[test]
    fn micro_batching_still_answers_every_request() {
        let server = Server::start(
            Arc::new(Echo),
            ServerConfig::with_workers(2).max_batch(8).queue_capacity(64),
        );
        let slots: Vec<Arc<ResponseSlot>> =
            (0..48).map(|_| Arc::new(ResponseSlot::new())).collect();
        for (i, slot) in slots.iter().enumerate() {
            server.submit(slot, &[i as f32], &SearchRequest::new(1), None).unwrap();
        }
        for (i, slot) in slots.iter().enumerate() {
            let response = slot.wait_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(response.neighbors()[0].id, i as u32);
        }
        assert_eq!(server.metrics().snapshot().completed, 48);
    }
}
