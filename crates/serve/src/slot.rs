//! Reusable response rendezvous: [`ResponseSlot`].
//!
//! A served query needs a place for the answer to land and a way for the
//! submitter to block until it does. A one-shot channel per request would
//! allocate on every query; a `ResponseSlot` is instead a **reusable**
//! rendezvous the client creates once and submits through repeatedly — its
//! query and result buffers stay warm, so the steady-state round trip
//! (submit → worker search → wait) performs zero heap allocation on both
//! sides (enforced by the `alloc_guard` integration test).
//!
//! One slot tracks one outstanding request at a time. Closed-loop clients
//! reuse a single slot; open-loop (fire-and-forget) clients rotate through a
//! pool of slots and let completed outcomes be overwritten by the next
//! submission.

use crate::error::ServeError;
use nsg_core::neighbor::Neighbor;
use nsg_core::search::SearchStats;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No request in flight (a not-yet-consumed outcome may still be stored).
    Idle,
    /// Submitted and not yet completed by a worker.
    Pending,
}

#[derive(Debug)]
struct SlotState {
    phase: Phase,
    /// `Some` once a worker (or a failed submit) resolved the request;
    /// consumed by `wait`, or silently discarded by the next `begin` —
    /// fire-and-forget clients never wait.
    outcome: Option<Result<(), ServeError>>,
    /// The query vector, written by the submitter, read by the worker.
    query: Vec<f32>,
    /// The answer, copied out of the worker's search context.
    results: Vec<Neighbor>,
    stats: SearchStats,
    generation: u64,
    latency: Duration,
}

/// A reusable single-request response rendezvous (see the module docs).
///
/// Wrap it in an `Arc` and hand the same slot to
/// [`Server::try_submit`](crate::server::Server::try_submit) for every query
/// of a client loop.
#[derive(Debug)]
pub struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Default for ResponseSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseSlot {
    /// Creates an idle slot; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(SlotState {
                phase: Phase::Idle,
                outcome: None,
                query: Vec::new(),
                results: Vec::new(),
                stats: SearchStats::default(),
                generation: 0,
                latency: Duration::ZERO,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a submitted request has not completed yet.
    pub fn is_pending(&self) -> bool {
        self.lock().phase == Phase::Pending
    }

    /// Claims the slot for a new request and stores its query. Fails with
    /// [`ServeError::SlotBusy`] while a previous request is still in flight;
    /// an unconsumed previous outcome is discarded.
    pub(crate) fn begin(&self, query: &[f32]) -> Result<(), ServeError> {
        let mut state = self.lock();
        if state.phase == Phase::Pending {
            return Err(ServeError::SlotBusy);
        }
        state.phase = Phase::Pending;
        state.outcome = None;
        state.query.clear();
        state.query.extend_from_slice(query);
        Ok(())
    }

    /// Releases a claim made by [`begin`] whose submission failed (queue
    /// full / shutting down): the slot returns to idle without an outcome.
    pub(crate) fn cancel(&self) {
        let mut state = self.lock();
        state.phase = Phase::Idle;
        state.outcome = None;
    }

    /// Copies the in-flight request's query into `buf` (worker side).
    // lint:hot-path
    pub(crate) fn read_query_into(&self, buf: &mut Vec<f32>) {
        let state = self.lock();
        buf.clear();
        buf.extend_from_slice(&state.query);
    }

    /// Resolves the in-flight request with an answer (worker side): copies
    /// `results` into the slot and wakes the waiter.
    // lint:hot-path
    pub(crate) fn complete_ok(
        &self,
        results: &[Neighbor],
        stats: SearchStats,
        generation: u64,
        latency: Duration,
    ) {
        let mut state = self.lock();
        state.results.clear();
        state.results.extend_from_slice(results);
        state.stats = stats;
        state.generation = generation;
        state.latency = latency;
        state.outcome = Some(Ok(()));
        state.phase = Phase::Idle;
        drop(state);
        self.ready.notify_all();
    }

    /// Resolves an in-flight **mutation** (worker side). The acknowledgement
    /// reuses the warm result buffer: one `Neighbor` whose id is the
    /// assigned/target id and whose distance encodes whether the mutation
    /// took effect (`0.0` applied, `1.0` acknowledged no-op — e.g. deleting
    /// an id that was already gone). Read it back with
    /// [`ResponseGuard::mutation`].
    pub(crate) fn complete_mutation(
        &self,
        id: u32,
        applied: bool,
        generation: u64,
        latency: Duration,
    ) {
        let ack = [Neighbor::new(id, if applied { 0.0 } else { 1.0 })];
        self.complete_ok(&ack, SearchStats::default(), generation, latency);
    }

    /// Resolves the in-flight request with a failure (worker side).
    pub(crate) fn complete_err(&self, err: ServeError, latency: Duration) {
        let mut state = self.lock();
        state.latency = latency;
        state.outcome = Some(Err(err));
        state.phase = Phase::Idle;
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks until the submitted request resolves, then returns a guard over
    /// the response (or the request's failure). Fails immediately with
    /// [`ServeError::NotSubmitted`] when nothing was submitted.
    ///
    /// The returned [`ResponseGuard`] holds the slot's lock: drop it before
    /// calling anything else on this slot (see the guard's docs).
    pub fn wait(&self) -> Result<ResponseGuard<'_>, ServeError> {
        self.wait_impl(None)
    }

    /// [`wait`](Self::wait) with an upper bound: fails with
    /// [`ServeError::WaitTimeout`] if the response has not arrived within
    /// `timeout` (the request stays in flight and may still resolve).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<ResponseGuard<'_>, ServeError> {
        self.wait_impl(Some(Instant::now() + timeout))
    }

    fn wait_impl(&self, deadline: Option<Instant>) -> Result<ResponseGuard<'_>, ServeError> {
        let mut state = self.lock();
        loop {
            if let Some(outcome) = state.outcome.take() {
                return match outcome {
                    Ok(()) => Ok(ResponseGuard { state }),
                    Err(e) => Err(e),
                };
            }
            if state.phase != Phase::Pending {
                return Err(ServeError::NotSubmitted);
            }
            state = match deadline {
                None => self.ready.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(dl) => {
                    let Some(remaining) =
                        dl.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
                    else {
                        return Err(ServeError::WaitTimeout);
                    };
                    self.ready
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }
}

/// A borrowed view of a completed response, **held under the slot's lock**
/// (that is what makes reading it copy- and allocation-free).
///
/// Read what you need and drop the guard promptly. While the guard lives,
/// any other call on the same slot from the same thread — `try_submit`,
/// [`wait`](ResponseSlot::wait), [`is_pending`](ResponseSlot::is_pending) —
/// re-locks the non-reentrant mutex the guard is holding and **deadlocks**.
/// Resubmit only after dropping the guard (copy out anything you still
/// need first).
pub struct ResponseGuard<'a> {
    state: MutexGuard<'a, SlotState>,
}

impl ResponseGuard<'_> {
    /// The scored neighbors, ascending by distance.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.state.results
    }

    /// Instrumentation of the search that produced this answer.
    pub fn stats(&self) -> SearchStats {
        self.state.stats
    }

    /// Generation of the index snapshot that served the query (see
    /// [`IndexHandle`](crate::handle::IndexHandle)).
    pub fn generation(&self) -> u64 {
        self.state.generation
    }

    /// End-to-end latency: submission (enqueue) to completion.
    pub fn latency(&self) -> Duration {
        self.state.latency
    }

    /// For a mutation acknowledgement: the `(id, applied)` pair — the
    /// assigned id of an insert (or target id of a delete) and whether the
    /// mutation took effect. `None` when the response does not carry a
    /// mutation acknowledgement's single-entry shape.
    pub fn mutation(&self) -> Option<(u32, bool)> {
        match self.state.results.as_slice() {
            [ack] => Some((ack.id, ack.dist == 0.0)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_without_submit_is_an_error() {
        let slot = ResponseSlot::new();
        assert_eq!(slot.wait().err(), Some(ServeError::NotSubmitted));
    }

    #[test]
    fn begin_complete_wait_round_trip() {
        let slot = ResponseSlot::new();
        slot.begin(&[1.0, 2.0]).unwrap();
        assert!(slot.is_pending());
        let mut q = Vec::new();
        slot.read_query_into(&mut q);
        assert_eq!(q, vec![1.0, 2.0]);
        let answer = [Neighbor::new(3, 0.5), Neighbor::new(9, 1.5)];
        slot.complete_ok(&answer, SearchStats::default(), 7, Duration::from_micros(12));
        let guard = slot.wait().unwrap();
        assert_eq!(guard.neighbors(), &answer);
        assert_eq!(guard.generation(), 7);
        assert_eq!(guard.latency(), Duration::from_micros(12));
        drop(guard);
        // The outcome was consumed; a second wait has nothing to wait for.
        assert_eq!(slot.wait().err(), Some(ServeError::NotSubmitted));
    }

    #[test]
    fn double_begin_is_slot_busy_and_cancel_releases() {
        let slot = ResponseSlot::new();
        slot.begin(&[0.0]).unwrap();
        assert_eq!(slot.begin(&[1.0]).err(), Some(ServeError::SlotBusy));
        slot.cancel();
        slot.begin(&[1.0]).unwrap();
        slot.complete_err(ServeError::DeadlineExceeded, Duration::ZERO);
        assert_eq!(slot.wait().err(), Some(ServeError::DeadlineExceeded));
    }

    #[test]
    fn begin_discards_an_unconsumed_outcome() {
        // Fire-and-forget reuse: nobody waited for the previous answer.
        let slot = ResponseSlot::new();
        slot.begin(&[0.0]).unwrap();
        slot.complete_ok(&[Neighbor::new(1, 1.0)], SearchStats::default(), 1, Duration::ZERO);
        slot.begin(&[1.0]).unwrap();
        slot.complete_ok(&[Neighbor::new(2, 2.0)], SearchStats::default(), 2, Duration::ZERO);
        let guard = slot.wait().unwrap();
        assert_eq!(guard.neighbors()[0].id, 2);
        assert_eq!(guard.generation(), 2);
    }

    #[test]
    fn wait_blocks_until_completion_across_threads() {
        let slot = Arc::new(ResponseSlot::new());
        slot.begin(&[5.0]).unwrap();
        let worker = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                slot.complete_ok(
                    &[Neighbor::new(4, 0.25)],
                    SearchStats::default(),
                    1,
                    Duration::from_millis(15),
                );
            })
        };
        let guard = slot.wait().unwrap();
        assert_eq!(guard.neighbors()[0].id, 4);
        drop(guard);
        worker.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_but_request_stays_pending() {
        let slot = ResponseSlot::new();
        slot.begin(&[0.0]).unwrap();
        assert_eq!(
            slot.wait_timeout(Duration::from_millis(5)).err(),
            Some(ServeError::WaitTimeout)
        );
        assert!(slot.is_pending());
        slot.complete_ok(&[Neighbor::new(8, 1.0)], SearchStats::default(), 1, Duration::ZERO);
        assert_eq!(slot.wait_timeout(Duration::from_millis(5)).unwrap().neighbors()[0].id, 8);
    }
}
