//! The serving worker loop: pinned context, micro-batching, deadlines.
//!
//! Each worker is a long-lived `std::thread` owning exactly one
//! [`PinnedContext`] — the same "one context per worker" helper
//! `AnnIndex::search_batch` uses — plus a private query buffer and a drained
//! job batch, all reused forever. After warm-up the loop performs **zero
//! heap allocation per request**: receive (pop from the preallocated
//! bounded queue), load the snapshot (`Arc` clone), copy the query into the
//! warm buffer, `search_into` on the warm context, copy the answer into the
//! slot's warm buffer, bump atomic counters.
//!
//! **Micro-batching:** after blocking for the first job, the worker drains up
//! to `max_batch - 1` more with non-blocking `try_recv` and serves the whole
//! batch on a single snapshot load. Batching is purely opportunistic — an
//! idle server serves every query alone at minimum latency; under load the
//! snapshot load (and its cache effects) amortize across the queue that has
//! built up anyway.

use crate::handle::IndexHandle;
use crate::metrics::ServerMetrics;
use crate::mutation::MutationRuntime;
use crate::server::{Job, JobKind};
use crate::ServeError;
use crossbeam_channel::Receiver;
use nsg_core::context::PinnedContext;
use nsg_core::delta::MutateError;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// How often a worker reloads the mutation cell and retries when the index
/// answers `Sealed`. The sealed window only exists between `compact_sealed`
/// returning and the successor landing in the cell — microseconds — so this
/// bound is pure livelock insurance (e.g. against a compaction that
/// panicked after sealing).
const SEAL_RETRIES: usize = 1024;

/// Runs one worker until every sender is gone **and** the queue is drained
/// (accepted work is never dropped by shutdown).
pub(crate) fn worker_loop(
    rx: Receiver<Job>,
    handle: Arc<IndexHandle>,
    metrics: Arc<ServerMetrics>,
    max_batch: usize,
    mutation: Option<Arc<MutationRuntime>>,
) {
    let mut pinned = PinnedContext::new();
    let mut query = Vec::new();
    let mut batch = Vec::with_capacity(max_batch);
    while let Ok(job) = rx.recv() {
        batch.push(job);
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        metrics.record_batch_size(batch.len());
        metrics.set_queue_depth(rx.len());
        // One consistent snapshot for the whole batch; a concurrent swap is
        // observed at the next batch boundary.
        let snapshot = handle.load();
        for job in batch.drain(..) {
            // Panic containment: a panicking search (a broken index swapped
            // in, a poisoned query) must not leave the client waiting
            // forever or kill the worker — the request resolves to
            // `WorkerPanicked` and the loop keeps serving. The slot cannot
            // carry a *newer* request here: our request is still pending, so
            // a concurrent `begin` would have been refused with `SlotBusy`.
            let slot = Arc::clone(&job.slot);
            let enqueued = job.enqueued;
            let served = std::panic::catch_unwind(AssertUnwindSafe(|| match job.kind {
                JobKind::Query => serve_one(&snapshot, &mut pinned, &mut query, &metrics, job),
                JobKind::Insert | JobKind::Delete(_) => {
                    serve_mutation(mutation.as_deref(), &handle, &mut query, &metrics, job)
                }
            }));
            if served.is_err() {
                metrics.record_failed();
                slot.complete_err(ServeError::WorkerPanicked, enqueued.elapsed());
            }
        }
    }
}

/// Applies one insert/delete to the mutation cell's current index, retrying
/// through the sealed handover window of a concurrent compaction, then runs
/// the compaction trigger itself. The acknowledgement is completed *before*
/// any compaction this mutation tips over, so compaction wall time never
/// shows up as mutation latency.
fn serve_mutation(
    runtime: Option<&MutationRuntime>,
    handle: &IndexHandle,
    query: &mut Vec<f32>,
    metrics: &ServerMetrics,
    job: Job,
) {
    let Some(runtime) = runtime else {
        // Submission normally rejects this earlier; kept as a worker-side
        // backstop so a mutation job can never hang a query-only server.
        job.slot.complete_err(ServeError::NotMutable, job.enqueued.elapsed());
        return;
    };
    let now = Instant::now();
    metrics.record_queue_wait(now - job.enqueued);
    if let Some(deadline) = job.deadline {
        if now > deadline {
            metrics.record_expired();
            job.slot
                .complete_err(ServeError::DeadlineExceeded, now - job.enqueued);
            return;
        }
    }
    job.slot.read_query_into(query);
    let mut outcome = Err(MutateError::Sealed);
    for _ in 0..SEAL_RETRIES {
        let index = runtime.load();
        outcome = match job.kind {
            JobKind::Delete(id) => index.delete(id).map(|applied| (id, applied)),
            // Insert; `Query` jobs never reach this function.
            _ => index.insert(query).map(|id| (id, true)),
        };
        match outcome {
            // The compaction that sealed this index installs its successor
            // momentarily; reload the cell and re-apply there.
            Err(MutateError::Sealed) => std::thread::yield_now(),
            _ => break,
        }
    }
    let latency = job.enqueued.elapsed();
    match outcome {
        Ok((id, applied)) => {
            match job.kind {
                JobKind::Delete(_) => metrics.record_delete(latency),
                _ => metrics.record_insert(latency),
            }
            job.slot.complete_mutation(id, applied, handle.generation(), latency);
            runtime.maybe_compact(handle, metrics);
        }
        Err(_) => {
            metrics.record_failed();
            job.slot.complete_err(ServeError::MutationRejected, latency);
        }
    }
}

// lint:hot-path
fn serve_one(
    snapshot: &crate::handle::Snapshot,
    pinned: &mut PinnedContext,
    query: &mut Vec<f32>,
    metrics: &ServerMetrics,
    job: Job,
) {
    let now = Instant::now();
    metrics.record_queue_wait(now - job.enqueued);
    if let Some(deadline) = job.deadline {
        if now > deadline {
            metrics.record_expired();
            job.slot
                .complete_err(ServeError::DeadlineExceeded, now - job.enqueued);
            return;
        }
    }
    job.slot.read_query_into(query);
    let _ = pinned.search(snapshot.index.as_ref(), &job.request, query);
    let latency = job.enqueued.elapsed();
    metrics.record_completed(latency, pinned.stats());
    job.slot
        .complete_ok(pinned.results(), pinned.stats(), snapshot.generation, latency);
}
