//! The serving worker loop: pinned context, micro-batching, deadlines.
//!
//! Each worker is a long-lived `std::thread` owning exactly one
//! [`PinnedContext`] — the same "one context per worker" helper
//! `AnnIndex::search_batch` uses — plus a private query buffer and a drained
//! job batch, all reused forever. After warm-up the loop performs **zero
//! heap allocation per request**: receive (pop from the preallocated
//! bounded queue), load the snapshot (`Arc` clone), copy the query into the
//! warm buffer, `search_into` on the warm context, copy the answer into the
//! slot's warm buffer, bump atomic counters.
//!
//! **Micro-batching:** after blocking for the first job, the worker drains up
//! to `max_batch - 1` more with non-blocking `try_recv` and serves the whole
//! batch on a single snapshot load. Batching is purely opportunistic — an
//! idle server serves every query alone at minimum latency; under load the
//! snapshot load (and its cache effects) amortize across the queue that has
//! built up anyway.

use crate::handle::IndexHandle;
use crate::metrics::ServerMetrics;
use crate::server::Job;
use crate::ServeError;
use crossbeam_channel::Receiver;
use nsg_core::context::PinnedContext;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// Runs one worker until every sender is gone **and** the queue is drained
/// (accepted work is never dropped by shutdown).
pub(crate) fn worker_loop(
    rx: Receiver<Job>,
    handle: Arc<IndexHandle>,
    metrics: Arc<ServerMetrics>,
    max_batch: usize,
) {
    let mut pinned = PinnedContext::new();
    let mut query = Vec::new();
    let mut batch = Vec::with_capacity(max_batch);
    while let Ok(job) = rx.recv() {
        batch.push(job);
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // One consistent snapshot for the whole batch; a concurrent swap is
        // observed at the next batch boundary.
        let snapshot = handle.load();
        for job in batch.drain(..) {
            // Panic containment: a panicking search (a broken index swapped
            // in, a poisoned query) must not leave the client waiting
            // forever or kill the worker — the request resolves to
            // `WorkerPanicked` and the loop keeps serving. The slot cannot
            // carry a *newer* request here: our request is still pending, so
            // a concurrent `begin` would have been refused with `SlotBusy`.
            let slot = Arc::clone(&job.slot);
            let enqueued = job.enqueued;
            let served = std::panic::catch_unwind(AssertUnwindSafe(|| {
                serve_one(&snapshot, &mut pinned, &mut query, &metrics, job)
            }));
            if served.is_err() {
                metrics.record_failed();
                slot.complete_err(ServeError::WorkerPanicked, enqueued.elapsed());
            }
        }
    }
}

// lint:hot-path
fn serve_one(
    snapshot: &crate::handle::Snapshot,
    pinned: &mut PinnedContext,
    query: &mut Vec<f32>,
    metrics: &ServerMetrics,
    job: Job,
) {
    let now = Instant::now();
    if let Some(deadline) = job.deadline {
        if now > deadline {
            metrics.record_expired();
            job.slot
                .complete_err(ServeError::DeadlineExceeded, now - job.enqueued);
            return;
        }
    }
    job.slot.read_query_into(query);
    let _ = pinned.search(snapshot.index.as_ref(), &job.request, query);
    let latency = job.enqueued.elapsed();
    metrics.record_completed(latency, pinned.stats());
    job.slot
        .complete_ok(pinned.results(), pinned.stats(), snapshot.generation, latency);
}
