//! Snapshot hot-swap under fire.
//!
//! Writer threads continuously build fresh small NSG indices and `swap` them
//! into the live [`IndexHandle`] while reader threads pump queries through
//! the server the whole time. Every response must be **internally
//! consistent**: neighbors sorted ascending by distance, and every id valid
//! for the index generation that claims to have served it. The generations
//! are built over bases of *different sizes*, so a response stitched together
//! from two snapshots (or stamped with the wrong generation) shows up as an
//! out-of-range id.

use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_knn::NnDescentParams;
use nsg_serve::{ResponseSlot, Server, ServerConfig};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::uniform;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const READERS: usize = 4;
const SWAPPERS: usize = 2;
const SWAPS_PER_WRITER: usize = 4;
const QUERIES_PER_READER: usize = 120;
/// Base sizes cycled through by the swappers; all distinct so a
/// generation/id mismatch is detectable.
const SIZES: [usize; 4] = [250, 400, 550, 700];
const DIM: usize = 8;

fn build_index(size: usize, seed: u64) -> Arc<dyn AnnIndex> {
    let base = Arc::new(uniform(size, DIM, seed));
    Arc::new(NsgIndex::build(
        base,
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 20,
            max_degree: 12,
            knn: NnDescentParams { k: 12, ..Default::default() },
            reverse_insert: true,
            seed,
        },
    ))
}

#[test]
fn hot_swap_under_concurrent_readers_never_tears() {
    // Generation 0 serves SIZES[0].
    let server = Arc::new(Server::start(
        build_index(SIZES[0], 0),
        ServerConfig::with_workers(4).queue_capacity(256),
    ));
    // generation -> base size of the index installed as that generation;
    // filled by the swappers, read only after every thread joined.
    let sizes_by_generation = Arc::new(Mutex::new(HashMap::from([(0u64, SIZES[0])])));
    let writers_done = Arc::new(AtomicBool::new(false));

    let swappers: Vec<_> = (0..SWAPPERS)
        .map(|w| {
            let server = Arc::clone(&server);
            let sizes_by_generation = Arc::clone(&sizes_by_generation);
            std::thread::spawn(move || {
                for s in 0..SWAPS_PER_WRITER {
                    let size = SIZES[(w + s * SWAPPERS + 1) % SIZES.len()];
                    let fresh = build_index(size, (w * 100 + s) as u64 + 1);
                    let displaced = server.handle().swap(fresh);
                    sizes_by_generation
                        .lock()
                        .unwrap()
                        .insert(displaced.generation + 1, size);
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let server = Arc::clone(&server);
            let writers_done = Arc::clone(&writers_done);
            std::thread::spawn(move || {
                let slot = Arc::new(ResponseSlot::new());
                let request = SearchRequest::new(5).with_effort(30);
                let queries = uniform(QUERIES_PER_READER, DIM, 9000 + r as u64);
                let mut served: Vec<(u64, u32)> = Vec::new();
                let mut q = 0;
                // Keep querying at least until every writer finished, so
                // swaps genuinely happen under read traffic.
                while q < QUERIES_PER_READER || !writers_done.load(Ordering::Relaxed) {
                    let query = queries.get(q % QUERIES_PER_READER);
                    server
                        .submit(&slot, query, &request, None)
                        .expect("server must accept while running");
                    let response = slot
                        .wait_timeout(Duration::from_secs(60))
                        .expect("every accepted query must be answered");
                    let neighbors = response.neighbors();
                    assert!(!neighbors.is_empty(), "reader {r} got an empty answer");
                    assert!(
                        neighbors.windows(2).all(|w| w[0].dist <= w[1].dist),
                        "reader {r} got a result not sorted by distance"
                    );
                    let max_id = neighbors.iter().map(|n| n.id).max().unwrap();
                    served.push((response.generation(), max_id));
                    q += 1;
                }
                served
            })
        })
        .collect();

    for swapper in swappers {
        swapper.join().unwrap();
    }
    writers_done.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    let mut generations_seen = std::collections::HashSet::new();
    let sizes_final = {
        let swaps = sizes_by_generation.lock().unwrap();
        swaps.clone()
    };
    for reader in readers {
        for (generation, max_id) in reader.join().unwrap() {
            let &size = sizes_final
                .get(&generation)
                .unwrap_or_else(|| panic!("response claims unknown generation {generation}"));
            assert!(
                (max_id as usize) < size,
                "id {max_id} out of range for generation {generation} (size {size})"
            );
            generations_seen.insert(generation);
            total += 1;
        }
    }
    assert!(total >= (READERS * QUERIES_PER_READER) as u64);
    assert_eq!(
        server.handle().generation(),
        (SWAPPERS * SWAPS_PER_WRITER) as u64,
        "every swap must have installed exactly one new generation"
    );
    assert!(
        generations_seen.len() > 1,
        "readers only ever saw one generation: the swaps did not overlap the traffic"
    );
    let snapshot = server.metrics().snapshot();
    assert_eq!(snapshot.completed, total);
    assert_eq!(snapshot.rejected, 0, "blocking submits must never be rejected");
}
