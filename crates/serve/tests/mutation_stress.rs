//! Live mutation under fire.
//!
//! Four reader threads pump queries through a mutable server while two
//! writer threads insert and delete concurrently, with a compaction policy
//! aggressive enough that several compactions fire mid-stream — so the
//! sealed-handover path (gather → rebuild → seal-and-replay →
//! `IndexHandle::swap`) runs repeatedly under live traffic.
//!
//! Invariants checked on every reader response (a torn read breaks them):
//!
//! * exactly `k` neighbors, sorted ascending by distance, all ids unique;
//! * every id below the global id ceiling (base + every insert ever
//!   applied — compaction renumbers ids *downward*, never past it);
//! * every distance finite.
//!
//! And at the end, exact liveness accounting across every compaction: each
//! applied insert adds one live id, each applied delete removes one, so
//! `live() == base + inserts - applied deletes` proves the seal-and-replay
//! handover lost no writes.

use nsg_core::delta::MutableIndex;
use nsg_core::index::SearchRequest;
use nsg_core::nsg::{NsgIndex, NsgParams};
use nsg_knn::NnDescentParams;
use nsg_serve::{MutationPolicy, ResponseSlot, Server, ServerConfig};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::uniform;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const BASE: usize = 300;
const DIM: usize = 8;
const READERS: usize = 4;
const WRITERS: usize = 2;
const MUTATIONS_PER_WRITER: usize = 120;
const MIN_QUERIES_PER_READER: usize = 80;
const K: usize = 10;

#[test]
fn readers_see_consistent_results_while_writers_mutate_and_compactions_fire() {
    let base = Arc::new(uniform(BASE, DIM, 42));
    let frozen = NsgIndex::build(
        base,
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 20,
            max_degree: 12,
            knn: NnDescentParams { k: 12, ..Default::default() },
            reverse_insert: true,
            seed: 42,
        },
    );
    // Thresholds low enough that the writers trip several compactions.
    let policy = MutationPolicy::default().min_mutations(16).max_delta_fraction(0.04);
    let server = Arc::new(Server::start_mutable(
        Arc::new(MutableIndex::new(frozen)),
        ServerConfig::with_workers(4).queue_capacity(256),
        policy,
    ));

    let stop_readers = Arc::new(AtomicBool::new(false));
    let applied_inserts = Arc::new(AtomicUsize::new(0));
    let applied_deletes = Arc::new(AtomicUsize::new(0));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let server = Arc::clone(&server);
            let applied_inserts = Arc::clone(&applied_inserts);
            let applied_deletes = Arc::clone(&applied_deletes);
            std::thread::spawn(move || {
                let slot = Arc::new(ResponseSlot::new());
                let mut own_ids: Vec<u32> = Vec::new();
                let mut vector = [0.0f32; DIM];
                for m in 0..MUTATIONS_PER_WRITER {
                    // Three inserts for every delete keeps the delta growing
                    // toward the compaction threshold.
                    if m % 4 == 3 && !own_ids.is_empty() {
                        let id = own_ids.swap_remove(m % own_ids.len());
                        server.submit_delete(&slot, id, None).unwrap();
                        let response = slot.wait().unwrap();
                        let (_, applied) = response.mutation().unwrap();
                        if applied {
                            applied_deletes.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        for (d, v) in vector.iter_mut().enumerate() {
                            *v = (w * 1000 + m * DIM + d) as f32 * 0.01;
                        }
                        server.submit_insert(&slot, &vector, None).unwrap();
                        let response = slot.wait().unwrap();
                        let (id, applied) = response.mutation().unwrap();
                        assert!(applied, "inserts always apply");
                        applied_inserts.fetch_add(1, Ordering::Relaxed);
                        own_ids.push(id);
                    }
                }
            })
        })
        .collect();

    // Ids only shrink at compaction: nothing can ever exceed this ceiling.
    let id_ceiling = (BASE + WRITERS * MUTATIONS_PER_WRITER) as u32;
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let server = Arc::clone(&server);
            let stop_readers = Arc::clone(&stop_readers);
            std::thread::spawn(move || {
                let slot = Arc::new(ResponseSlot::new());
                let request = SearchRequest::new(K).with_effort(60);
                let queries = uniform(64, DIM, 9000 + r as u64);
                let mut served = 0usize;
                while served < MIN_QUERIES_PER_READER || !stop_readers.load(Ordering::Relaxed) {
                    let query = queries.get(served % queries.len());
                    server.submit(&slot, query, &request, None).unwrap();
                    let response = slot.wait().unwrap();
                    let hits = response.neighbors();
                    assert_eq!(hits.len(), K, "short result: torn merge");
                    for pair in hits.windows(2) {
                        assert!(pair[0].dist <= pair[1].dist, "unsorted result");
                    }
                    for hit in hits {
                        assert!(hit.id < id_ceiling, "id beyond ceiling: torn snapshot");
                        assert!(hit.dist.is_finite());
                    }
                    let mut ids: Vec<u32> = hits.iter().map(|n| n.id).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    assert_eq!(ids.len(), K, "duplicate ids in one response");
                    served += 1;
                }
                served
            })
        })
        .collect();

    for writer in writers {
        writer.join().expect("writer panicked");
    }
    // Keep the readers pumping until the triggered compaction lands (the
    // rebuild shares the CPU with live traffic, so it can outlast the
    // writers): the successor is then provably installed *under* reader
    // fire, not after it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while server.metrics().snapshot().compactions == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no compaction fired mid-stream: {}",
            server.metrics().snapshot()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop_readers.store(true, Ordering::Relaxed);
    let mut total_queries = 0;
    for reader in readers {
        total_queries += reader.join().expect("reader panicked");
    }

    let snap = server.metrics().snapshot();
    assert!(snap.compactions >= 1);
    assert!(server.handle().generation() >= 1);
    assert_eq!(snap.inserts + snap.deletes, (WRITERS * MUTATIONS_PER_WRITER) as u64);
    assert_eq!(snap.failed, 0, "no mutation or query may fail: {snap}");
    assert!(total_queries >= READERS * MIN_QUERIES_PER_READER);

    // Exact liveness accounting across every seal-and-replay handover.
    let stats = server.delta_stats().expect("mutable server");
    let expected_live =
        BASE + applied_inserts.load(Ordering::Relaxed) - applied_deletes.load(Ordering::Relaxed);
    assert_eq!(stats.live(), expected_live, "writes lost or duplicated across compaction");
}
