//! Backpressure under a slow consumer.
//!
//! A single deliberately slow worker behind a tiny bounded queue is flooded
//! with non-blocking submissions. The contract under test: every submission
//! either lands in the queue or is rejected **immediately** with
//! `Overloaded` (no blocking, no deadlock), the metrics' rejected counter
//! matches the rejections the client observed, and every accepted request is
//! eventually answered.

use nsg_core::context::SearchContext;
use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::neighbor::Neighbor;
use nsg_serve::{ResponseSlot, ServeError, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An index whose every search takes ~`DELAY` — a stand-in for an expensive
/// query against a large graph.
struct SlowIndex;
const DELAY: Duration = Duration::from_millis(4);

impl AnnIndex for SlowIndex {
    fn new_context(&self) -> SearchContext {
        SearchContext::new()
    }
    fn search_into<'a>(
        &self,
        ctx: &'a mut SearchContext,
        request: &SearchRequest,
        _query: &[f32],
    ) -> &'a [Neighbor] {
        std::thread::sleep(DELAY);
        ctx.results.clear();
        ctx.results
            .extend((0..request.k as u32).map(|i| Neighbor::new(i, i as f32)));
        &ctx.results
    }
    fn memory_bytes(&self) -> usize {
        0
    }
    fn name(&self) -> &'static str {
        "slow"
    }
}

#[test]
fn full_queue_rejects_immediately_and_counts_match() {
    const SUBMISSIONS: usize = 40;
    const QUEUE: usize = 2;
    let server = Server::start(
        Arc::new(SlowIndex),
        ServerConfig { workers: 1, queue_capacity: QUEUE, max_batch: 1 },
    );
    let request = SearchRequest::new(3);
    let slots: Vec<Arc<ResponseSlot>> =
        (0..SUBMISSIONS).map(|_| Arc::new(ResponseSlot::new())).collect();

    let started = Instant::now();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for slot in &slots {
        match server.try_submit(slot, &[0.0], &request, None) {
            Ok(()) => accepted.push(Arc::clone(slot)),
            Err(ServeError::Overloaded) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    let submit_elapsed = started.elapsed();

    // The flood outpaces a 4ms-per-query consumer by construction: with a
    // queue of 2 most submissions must be shed, and shedding must not block
    // behind the slow worker (40 submissions vs 40 * 4ms of service time).
    assert!(rejected > 0, "a full bounded queue must reject");
    assert!(
        accepted.len() >= QUEUE,
        "at least the queue capacity must have been admitted"
    );
    assert!(
        submit_elapsed < DELAY * (SUBMISSIONS as u32) / 2,
        "try_submit must not block behind the slow consumer (took {submit_elapsed:?})"
    );

    // No deadlock: every accepted request completes; rejected slots hold no
    // pending request and report NotSubmitted.
    for slot in &accepted {
        let response = slot
            .wait_timeout(Duration::from_secs(30))
            .expect("accepted request must complete");
        assert_eq!(response.neighbors().len(), 3);
    }
    for slot in &slots {
        if !accepted.iter().any(|a| Arc::ptr_eq(a, slot)) {
            assert_eq!(slot.wait().err(), Some(ServeError::NotSubmitted));
        }
    }

    let snapshot = server.metrics().snapshot();
    assert_eq!(
        snapshot.rejected, rejected,
        "metrics must count exactly the rejections the client observed"
    );
    assert_eq!(snapshot.completed, accepted.len() as u64);
    assert_eq!(snapshot.expired, 0);
    assert!(snapshot.rejection_rate() > 0.0);

    // The server recovers once the backlog drains: a fresh submit succeeds.
    let slot = Arc::new(ResponseSlot::new());
    server.try_submit(&slot, &[0.0], &request, None).unwrap();
    assert_eq!(slot.wait_timeout(Duration::from_secs(30)).unwrap().neighbors().len(), 3);
    server.shutdown();
}

#[test]
fn deadlines_shed_queued_work_under_overload() {
    // Same slow consumer, but every request carries a deadline shorter than
    // the queueing delay it will suffer: the worker must drop expired
    // requests without serving them, and count them as expired.
    let server = Server::start(
        Arc::new(SlowIndex),
        ServerConfig { workers: 1, queue_capacity: 16, max_batch: 1 },
    );
    let request = SearchRequest::new(1);
    let slots: Vec<Arc<ResponseSlot>> = (0..12).map(|_| Arc::new(ResponseSlot::new())).collect();
    let mut accepted = 0u64;
    for slot in &slots {
        // 1ms budget; each queued request waits ≥ 4ms per predecessor.
        if server.try_submit(slot, &[0.0], &request, Some(Duration::from_millis(1))).is_ok() {
            accepted += 1;
        }
    }
    let mut completed = 0u64;
    let mut expired = 0u64;
    for slot in &slots {
        match slot.wait_timeout(Duration::from_secs(30)) {
            Ok(_) => completed += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(ServeError::NotSubmitted) => {} // was rejected at admission
            Err(other) => panic!("unexpected outcome: {other}"),
        }
    }
    assert_eq!(completed + expired, accepted);
    assert!(expired > 0, "queued requests past their deadline must be shed");
    let snapshot = server.metrics().snapshot();
    assert_eq!(snapshot.expired, expired);
    assert_eq!(snapshot.completed, completed);
}
