//! Hot-swapping a **quantized** index behind live traffic.
//!
//! The memory-constrained serving story the `VectorStore` refactor opens:
//! build on `f32`, quantize at freeze time, and install the SQ8 snapshot
//! into a running server without a restart. The server only sees
//! `Arc<dyn AnnIndex>`, so the swap machinery is untouched — this test pins
//! down that (a) a quantized snapshot serves two-phase (rerank) requests
//! correctly under concurrent reads, and (b) swapping flat → quantized →
//! flat never tears a response.

use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams, QuantizedNsg};
use nsg_knn::NnDescentParams;
use nsg_serve::{ResponseSlot, Server, ServerConfig};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use nsg_vectors::VectorSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn params(seed: u64) -> NsgParams {
    NsgParams {
        build_pool_size: 24,
        max_degree: 14,
        knn: NnDescentParams { k: 14, ..Default::default() },
        reverse_insert: true,
        seed,
    }
}

#[test]
fn quantized_snapshot_serves_two_phase_requests_behind_live_traffic() {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 900, 40, 7);
    let base = Arc::new(base);
    let flat = Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(1)));
    let quantized: Arc<QuantizedNsg<SquaredEuclidean>> =
        Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(1)).quantize_sq8());

    // Ground truth for the serving assertions: what the quantized index
    // answers directly for a two-phase request.
    let request = SearchRequest::new(5).with_effort(60).with_rerank(3);
    let expected: Vec<_> = (0..queries.len())
        .map(|q| quantized.search(queries.get(q), &request))
        .collect();

    let server = Arc::new(Server::start(
        Arc::clone(&flat) as Arc<dyn AnnIndex>,
        ServerConfig::with_workers(2).queue_capacity(64),
    ));

    // Reader thread hammers the server across the swaps; every response must
    // be sorted and in range for the (fixed-size) base.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let queries: VectorSet = queries.clone();
        std::thread::spawn(move || {
            let slot = Arc::new(ResponseSlot::new());
            let request = SearchRequest::new(5).with_effort(60).with_rerank(3);
            let mut q = 0usize;
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                server
                    .submit(&slot, queries.get(q % queries.len()), &request, None)
                    .expect("server must accept while running");
                let response = slot
                    .wait_timeout(Duration::from_secs(60))
                    .expect("every accepted query must be answered");
                let neighbors = response.neighbors();
                assert_eq!(neighbors.len(), 5);
                assert!(neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
                assert!(neighbors.iter().all(|nb| (nb.id as usize) < 900));
                q += 1;
                served += 1;
            }
            served
        })
    };

    // Swap flat → quantized → flat → quantized under the reader's traffic.
    for round in 0..2 {
        std::thread::sleep(Duration::from_millis(30));
        server.handle().swap(Arc::clone(&quantized) as Arc<dyn AnnIndex>);
        std::thread::sleep(Duration::from_millis(30));
        if round == 0 {
            server.handle().swap(Arc::clone(&flat) as Arc<dyn AnnIndex>);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let served = reader.join().unwrap();
    assert!(served > 0, "the reader never got a query through");
    assert_eq!(server.handle().generation(), 3, "three swaps must be visible");

    // The installed snapshot is now the quantized index: served answers must
    // equal direct two-phase answers, exact distances included.
    let slot = Arc::new(ResponseSlot::new());
    for (q, expect) in expected.iter().enumerate() {
        server.submit(&slot, queries.get(q), &request, None).unwrap();
        let response = slot.wait_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(
            response.neighbors(),
            expect.as_slice(),
            "served two-phase answer differs from the direct one for query {q}"
        );
    }
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
}
