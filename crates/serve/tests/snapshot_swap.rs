//! Hot-swapping an **on-disk NSG2 snapshot** behind live traffic.
//!
//! The zero-copy load path end to end: build an index, write its snapshot,
//! then `swap_snapshot` the file into a running server while a reader hammers
//! it. The swap maps the file and borrows the arenas in place — no decode —
//! so answers served off the mapped generation must be byte-identical to the
//! owned index's, and the mapped region must stay resident until the last
//! in-flight query drops, then unmap with the displaced generation.

use nsg_core::index::{AnnIndex, SearchRequest};
use nsg_core::nsg::{NsgIndex, NsgParams, QuantizedNsg};
use nsg_core::serialize::SerializeError;
use nsg_core::snapshot::{write_quantized_snapshot, write_snapshot, Snapshot as FileSnapshot};
use nsg_knn::NnDescentParams;
use nsg_serve::{IndexHandle, ResponseSlot, Server, ServerConfig};
use nsg_vectors::distance::SquaredEuclidean;
use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
use nsg_vectors::VectorSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 700;

fn params(seed: u64) -> NsgParams {
    NsgParams {
        build_pool_size: 24,
        max_degree: 14,
        knn: NnDescentParams { k: 14, ..Default::default() },
        reverse_insert: true,
        seed,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nsg_snap_swap_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn swap_snapshot_under_traffic_serves_identical_answers() {
    let dir = scratch_dir("traffic");
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, N, 30, 11);
    let base = Arc::new(base);
    let flat = Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(1)));
    let quantized: Arc<QuantizedNsg<SquaredEuclidean>> =
        Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(1)).quantize_sq8());
    let flat_path = dir.join("flat.nsg2");
    let quant_path = dir.join("quant.nsg2");
    write_snapshot(&flat_path, &flat).unwrap();
    write_quantized_snapshot(&quant_path, &quantized).unwrap();

    // Ground truth from the owned indices: the mapped generations must serve
    // exactly these, distances included.
    let flat_request = SearchRequest::new(5).with_effort(60);
    let quant_request = SearchRequest::new(5).with_effort(60).with_rerank(3);
    let expected_flat: Vec<_> =
        (0..queries.len()).map(|q| flat.search(queries.get(q), &flat_request)).collect();
    let expected_quant: Vec<_> =
        (0..queries.len()).map(|q| quantized.search(queries.get(q), &quant_request)).collect();

    let server = Arc::new(Server::start(
        Arc::clone(&flat) as Arc<dyn AnnIndex>,
        ServerConfig::with_workers(2).queue_capacity(64),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let queries: VectorSet = queries.clone();
        std::thread::spawn(move || {
            let slot = Arc::new(ResponseSlot::new());
            let request = SearchRequest::new(5).with_effort(60);
            let mut q = 0usize;
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                server
                    .submit(&slot, queries.get(q % queries.len()), &request, None)
                    .expect("server must accept while running");
                let response = slot
                    .wait_timeout(Duration::from_secs(60))
                    .expect("every accepted query must be answered");
                let neighbors = response.neighbors();
                assert_eq!(neighbors.len(), 5);
                assert!(neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
                assert!(neighbors.iter().all(|nb| (nb.id as usize) < N));
                q += 1;
                served += 1;
            }
            served
        })
    };

    // Swap mapped-flat then mapped-quantized in, both under the reader.
    std::thread::sleep(Duration::from_millis(30));
    server.handle().swap_snapshot(&flat_path).expect("flat snapshot must swap in");
    std::thread::sleep(Duration::from_millis(30));
    server.handle().swap_snapshot_verified(&quant_path).expect("quantized snapshot must swap in");
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let served = reader.join().unwrap();
    assert!(served > 0, "the reader never got a query through");
    assert_eq!(server.handle().generation(), 2);

    // Current generation is the mapped quantized snapshot: answers must be
    // byte-identical to the owned two-phase index's.
    let slot = Arc::new(ResponseSlot::new());
    for (q, expect) in expected_quant.iter().enumerate() {
        server.submit(&slot, queries.get(q), &quant_request, None).unwrap();
        let response = slot.wait_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(
            response.neighbors(),
            expect.as_slice(),
            "mapped quantized answer differs from the owned one for query {q}"
        );
    }

    // And one generation back, the mapped flat snapshot did the same.
    let mapped_flat = FileSnapshot::open(&flat_path).unwrap().into_index(NsgParams::default());
    let mut ctx = mapped_flat.new_context();
    for (q, expect) in expected_flat.iter().enumerate() {
        assert_eq!(
            mapped_flat.search_into(&mut ctx, &flat_request, queries.get(q)),
            expect.as_slice(),
            "mapped flat answer differs from the owned one for query {q}"
        );
    }

    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_is_refused_while_the_old_generation_keeps_serving() {
    let dir = scratch_dir("corrupt");
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 300, 4, 3);
    let base = Arc::new(base);
    let index = Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(2)));
    let path = dir.join("poisoned.nsg2");
    write_snapshot(&path, &index).unwrap();

    // Poison the snapshot header on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let handle = IndexHandle::new(Arc::clone(&index) as Arc<dyn AnnIndex>);
    let err = handle.swap_snapshot(&path).expect_err("corrupt magic must be refused");
    assert!(matches!(err, SerializeError::Corrupt(_)));
    assert_eq!(handle.generation(), 0, "a refused swap must not flip the generation");
    let request = SearchRequest::new(3).with_effort(40);
    let snap = handle.load();
    let mut ctx = snap.index.new_context();
    assert!(!snap.index.search_into(&mut ctx, &request, queries.get(0)).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn displaced_mapped_region_unmaps_after_its_last_reader() {
    let dir = scratch_dir("liveness");
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 300, 2, 5);
    let base = Arc::new(base);
    let index = Arc::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(4)));
    let path = dir.join("gen1.nsg2");
    write_snapshot(&path, &index).unwrap();

    let handle = IndexHandle::new(Arc::clone(&index) as Arc<dyn AnnIndex>);
    handle.swap_snapshot(&path).unwrap();

    // A reader loads the mapped generation; the file can then be deleted and
    // the generation swapped away, and the reader must still answer off the
    // (still-resident) mapping.
    let in_flight = handle.load();
    std::fs::remove_file(&path).unwrap();
    handle.swap(Arc::clone(&index) as Arc<dyn AnnIndex>);
    let request = SearchRequest::new(3).with_effort(40);
    let mut ctx = in_flight.index.new_context();
    let got = in_flight.index.search_into(&mut ctx, &request, queries.get(0)).to_vec();
    let mut ctx2 = index.new_context();
    let want = index.search_into(&mut ctx2, &request, queries.get(0));
    assert_eq!(got.as_slice(), want, "in-flight mapped reader answered wrong after the swap");
    drop(in_flight); // last holder: the region unmaps here
    std::fs::remove_dir_all(&dir).ok();
}
