//! Arena storage that is either owned or borrowed from a mapped region.
//!
//! Every frozen query-time structure in this workspace (the CSR graph, the
//! flat vector rows, the SQ8 codes and affine parameters) is ultimately one
//! contiguous slice of a plain-old-data element type. [`Arena<T>`] makes the
//! *ownership* of that slice a runtime property instead of a type-level one:
//!
//! * **Owned** — backed by a `Vec<T>`, exactly what every builder produces.
//! * **Borrowed** — a view into a ref-counted [`MappedRegion`] (an `mmap(2)`'d
//!   snapshot file or its aligned-copy fallback). Cloning is O(1) — it bumps
//!   the region's refcount — and the region stays alive until the last arena
//!   referencing it drops, which is what lets `nsg-serve` hot-swap snapshots
//!   while in-flight queries still read the old one.
//!
//! The hot path never branches on the variant: the arena caches a raw
//! `(ptr, len)` pair that [`Arena::as_slice`] reinterprets directly, and the
//! pair is re-derived after every mutation of the owned backing (the heap
//! buffer of a `Vec` does not move when the `Arena` struct itself moves, so
//! the cache stays valid across moves).
//!
//! Borrowing from raw mapped bytes is only allowed for element types that
//! implement the sealed [`ArenaElem`] marker: `u8`, `u32` and `f32`, the
//! exact palette of the snapshot format. All three are valid for every bit
//! pattern, so reinterpreting untrusted file bytes can produce garbage
//! *values* but never undefined behavior.

use std::sync::Arc;

use crate::mapped::MappedRegion;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for f32 {}
}

/// Marker for element types an [`Arena`] may borrow from raw mapped bytes.
///
/// # Safety
///
/// Implementors must be plain-old-data: no padding, no invalid bit patterns,
/// no drop glue, no references. The three implementations (`u8`, `u32`,
/// `f32`) all satisfy this; the trait is sealed so no others can appear.
pub unsafe trait ArenaElem: sealed::Sealed + Copy + Send + Sync + 'static {}

// SAFETY: u8 has size 1, no padding, and every bit pattern is a valid value.
unsafe impl ArenaElem for u8 {}
// SAFETY: u32 has no padding and every bit pattern is a valid value.
unsafe impl ArenaElem for u32 {}
// SAFETY: f32 has no padding and every bit pattern is a valid value (NaN
// payloads included).
unsafe impl ArenaElem for f32 {}

/// Why a requested borrow of a mapped region was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaError {
    /// The requested byte range does not lie within the region.
    OutOfBounds {
        /// First byte of the requested range.
        offset: usize,
        /// Length of the requested range in bytes.
        bytes: usize,
        /// Total length of the region in bytes.
        region: usize,
    },
    /// The start of the range is not aligned for the element type.
    Misaligned {
        /// First byte of the requested range.
        offset: usize,
        /// Required alignment in bytes.
        align: usize,
    },
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::OutOfBounds { offset, bytes, region } => write!(
                f,
                "arena range [{offset}, {offset}+{bytes}) exceeds the {region}-byte region"
            ),
            ArenaError::Misaligned { offset, align } => {
                write!(f, "arena offset {offset} is not {align}-byte aligned")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

enum Backing<T> {
    /// The arena owns its elements.
    Owned(Vec<T>),
    /// The arena borrows from a ref-counted mapped region; the `Arc` keeps
    /// the bytes behind the cached pointer alive.
    Mapped(Arc<MappedRegion>),
}

/// A contiguous immutable-by-default slice of `T` that is either owned
/// (`Vec<T>`) or borrowed from a ref-counted mapped region.
///
/// Derefs to `&[T]`; the deref is branch-free (cached pointer + length).
pub struct Arena<T> {
    /// Cached base pointer of the live slice. Invariant: always points at
    /// `len` valid `T`s kept alive by `backing` (re-derived after every
    /// mutation of the owned vector).
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

// SAFETY: the cached pointer targets memory owned/kept alive by `backing`
// (a Vec or an Arc<MappedRegion>, both Send + Sync for T: Send + Sync), and
// the arena never exposes unsynchronized interior mutability.
unsafe impl<T: Send + Sync> Send for Arena<T> {}
// SAFETY: see the Send impl above; shared access is read-only.
unsafe impl<T: Send + Sync> Sync for Arena<T> {}

impl<T> Arena<T> {
    /// An empty owned arena.
    pub fn new() -> Self {
        Arena::from_vec(Vec::new())
    }

    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        let (ptr, len) = (v.as_ptr(), v.len());
        Arena { ptr, len, backing: Backing::Owned(v) }
    }

    /// The live elements.
    // lint:hot-path — every per-hop slice of graph edges and vector rows
    // comes through here; no allocation, no branching on the backing.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: struct invariant — `ptr` points at `len` valid `T`s kept
        // alive by `self.backing` for at least the lifetime of `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this arena borrows from a mapped region (`true`) or owns its
    /// elements (`false`).
    pub fn is_borrowed(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// The region this arena borrows from, if any.
    pub fn region(&self) -> Option<&Arc<MappedRegion>> {
        match &self.backing {
            Backing::Owned(_) => None,
            Backing::Mapped(region) => Some(region),
        }
    }

    /// Heap bytes attributable to this arena. Borrowed arenas report zero:
    /// the mapped region's bytes are accounted once by whoever holds the
    /// snapshot, not per-view.
    pub fn heap_bytes(&self) -> usize {
        match &self.backing {
            Backing::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            Backing::Mapped(_) => 0,
        }
    }

    /// Mutates the owned backing vector and re-derives the cached slice.
    ///
    /// Borrowed arenas are frozen; mutating one is a logic error upstream
    /// (builders only ever produce owned arenas), so this asserts.
    pub fn modify<R>(&mut self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let out = match &mut self.backing {
            Backing::Owned(v) => f(v),
            Backing::Mapped(_) => {
                unreachable!("cannot mutate an arena borrowed from a mapped region")
            }
        };
        // Re-derive the cache: the vector may have reallocated.
        if let Backing::Owned(v) = &self.backing {
            self.ptr = v.as_ptr();
            self.len = v.len();
        }
        out
    }
}

impl<T: Clone> Arena<T> {
    /// Copies the elements into a fresh owned arena (an O(len) deep copy —
    /// this is the "materialize" operation snapshot decoding uses when the
    /// caller wants ownership rather than a view).
    pub fn to_owned_arena(&self) -> Arena<T> {
        Arena::from_vec(self.as_slice().to_vec())
    }
}

impl<T: ArenaElem> Arena<T> {
    /// Borrows `len` elements starting `byte_offset` bytes into `region`.
    ///
    /// Fails if the byte range `[byte_offset, byte_offset + len * size_of::<T>())`
    /// is not fully inside the region or the start is misaligned for `T`.
    /// Bounds are checked *before* any pointer arithmetic, per the workspace's
    /// bounded-decode discipline.
    pub fn borrow_from_region(
        region: &Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
    ) -> Result<Arena<T>, ArenaError> {
        let elem = std::mem::size_of::<T>();
        let bytes = len
            .checked_mul(elem)
            .ok_or(ArenaError::OutOfBounds { offset: byte_offset, bytes: usize::MAX, region: region.len() })?;
        let end = byte_offset
            .checked_add(bytes)
            .ok_or(ArenaError::OutOfBounds { offset: byte_offset, bytes, region: region.len() })?;
        if end > region.len() {
            return Err(ArenaError::OutOfBounds { offset: byte_offset, bytes, region: region.len() });
        }
        let align = std::mem::align_of::<T>();
        let base = region.bytes().as_ptr();
        if !(base as usize + byte_offset).is_multiple_of(align) {
            return Err(ArenaError::Misaligned { offset: byte_offset, align });
        }
        // A zero-length borrow must not dereference (or even form) a pointer
        // into the region; use the canonical dangling-but-aligned pointer.
        let ptr = if len == 0 {
            std::ptr::NonNull::<T>::dangling().as_ptr() as *const T
        } else {
            // SAFETY: `byte_offset + bytes <= region.len()` was checked above,
            // so the offset pointer stays inside (or one-past-the-end of) the
            // region's allocation.
            unsafe { base.add(byte_offset) as *const T }
        };
        Ok(Arena { ptr, len, backing: Backing::Mapped(Arc::clone(region)) })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T: Clone> Clone for Arena<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            // Cloning an owned arena deep-copies (same semantics as Vec).
            Backing::Owned(v) => Arena::from_vec(v.clone()),
            // Cloning a borrowed arena is O(1): same view, one more refcount.
            Backing::Mapped(region) => Arena {
                ptr: self.ptr,
                len: self.len,
                backing: Backing::Mapped(Arc::clone(region)),
            },
        }
    }
}

impl<T> std::ops::Deref for Arena<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for Arena<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq + PartialEq> Eq for Arena<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("len", &self.len)
            .field("borrowed", &self.is_borrowed())
            .finish()
    }
}

impl<T> From<Vec<T>> for Arena<T> {
    fn from(v: Vec<T>) -> Self {
        Arena::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedRegion;

    #[test]
    fn owned_arena_round_trips_and_reports_ownership() {
        let mut a = Arena::from_vec(vec![1u32, 2, 3]);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert!(!a.is_borrowed());
        a.modify(|v| v.extend_from_slice(&[4, 5]));
        assert_eq!(a.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.len(), 5);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn modify_survives_reallocation() {
        let mut a: Arena<u32> = Arena::new();
        for i in 0..1000 {
            a.modify(|v| v.push(i));
        }
        assert_eq!(a.len(), 1000);
        assert_eq!(a.as_slice()[999], 999);
    }

    #[test]
    fn borrowed_arena_reads_region_bytes() {
        let words: Vec<u32> = (0..64).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let region = MappedRegion::from_bytes(&bytes);
        let a: Arena<u32> = Arena::borrow_from_region(&region, 0, 64).unwrap();
        assert_eq!(a.as_slice(), &words[..]);
        assert!(a.is_borrowed());
        assert_eq!(a.heap_bytes(), 0);
        // Clones share the region.
        let b = a.clone();
        assert_eq!(Arc::strong_count(&region), 3);
        drop(a);
        drop(b);
        assert_eq!(Arc::strong_count(&region), 1);
    }

    #[test]
    fn borrow_rejects_out_of_bounds_and_misalignment() {
        let region = MappedRegion::from_bytes(&[0u8; 16]);
        assert!(matches!(
            Arena::<u32>::borrow_from_region(&region, 0, 5),
            Err(ArenaError::OutOfBounds { .. })
        ));
        assert!(matches!(
            Arena::<u32>::borrow_from_region(&region, 1, 2),
            Err(ArenaError::Misaligned { .. })
        ));
        assert!(matches!(
            Arena::<u32>::borrow_from_region(&region, usize::MAX, 1),
            Err(ArenaError::OutOfBounds { .. })
        ));
        // Zero-length borrows are fine anywhere in bounds and even at the end.
        assert!(Arena::<u32>::borrow_from_region(&region, 16, 0).is_ok());
    }

    #[test]
    fn region_keeps_bytes_alive_after_source_drop() {
        let region = MappedRegion::from_bytes(&42u32.to_le_bytes());
        let a: Arena<u32> = Arena::borrow_from_region(&region, 0, 1).unwrap();
        drop(region);
        assert_eq!(a.as_slice(), &[42]);
    }
}
