//! Flat, fixed-dimension vector storage.
//!
//! The paper's indices treat the base data as an immutable array of
//! `n` points in `E^d`. [`VectorSet`] stores all coordinates contiguously
//! (row-major) so that a vector is a single cache-aligned slice and sequential
//! scans (ground truth, k-means, serial-scan baseline) stream through memory.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::arena::Arena;

/// A set of `n` dense `f32` vectors of identical dimension `d`, stored
/// contiguously in row-major order.
///
/// This is the substrate type every index in the workspace builds over.
/// Vector ids are dense `u32` indices in `0..n`, matching the compact id
/// space the original NSG implementation uses.
#[derive(Clone, Serialize, Deserialize, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Arena<f32>,
}

impl fmt::Debug for VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorSet")
            .field("dim", &self.dim)
            .field("len", &self.len())
            .finish()
    }
}

impl VectorSet {
    /// Creates an empty vector set of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, data: Arena::new() }
    }

    /// Creates an empty vector set with room for `capacity` vectors.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self {
            dim,
            data: Arena::from_vec(Vec::with_capacity(dim * capacity)),
        }
    }

    /// Builds a vector set from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data: Arena::from_vec(data) }
    }

    /// Builds a vector set directly over an arena (owned or borrowed from a
    /// mapped snapshot region). This is how `nsg-core`'s snapshot loader
    /// hands out zero-copy views: same type, same query path, no copies.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_arena(dim: usize, data: Arena<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Whether the coordinates are borrowed from a mapped region rather than
    /// owned by this set.
    pub fn is_borrowed(&self) -> bool {
        self.data.is_borrowed()
    }

    /// Builds a vector set from per-vector rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<R: AsRef<[f32]>>(dim: usize, rows: &[R]) -> Self {
        let mut set = Self::with_capacity(dim, rows.len());
        for row in rows {
            set.push(row.as_ref());
        }
        set
    }

    /// Number of vectors in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        self.data.modify(|d| d.extend_from_slice(v));
    }

    /// Returns vector `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data.as_slice()[start..start + self.dim]
    }

    /// Returns vector `i` without bounds checks.
    ///
    /// # Safety
    /// `i` must be smaller than `self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        debug_assert!(start + self.dim <= self.data.len());
        // SAFETY: the caller guarantees `i < self.len()`, so the row's byte
        // range lies inside the flat buffer by construction.
        unsafe { self.data.as_slice().get_unchecked(start..start + self.dim) }
    }

    /// The underlying flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Hints the CPU to pull vector `i` into cache (see [`crate::prefetch`]).
    /// The graph-search expansion loop calls this on the *next* candidate
    /// while scoring the current one, hiding the gather latency of the
    /// random-access reads Algorithm 1 performs per hop. No-op when `i` is
    /// out of range or the target has no prefetch instruction.
    #[inline(always)]
    pub fn prefetch(&self, i: usize) {
        let start = i * self.dim;
        if let Some(row) = self.data.as_slice().get(start..start + self.dim) {
            crate::prefetch::prefetch_slice(row);
        }
    }

    /// Iterates over vectors in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.as_slice().chunks_exact(self.dim)
    }

    /// Component-wise centroid of the set (the "centroid of the dataset" used
    /// by Algorithm 2 step ii to locate the navigating node).
    ///
    /// Returns a zero vector for an empty set.
    pub fn centroid(&self) -> Vec<f32> {
        let mut acc = vec![0.0f64; self.dim];
        for v in self.iter() {
            for (a, &x) in acc.iter_mut().zip(v) {
                *a += f64::from(x);
            }
        }
        let n = self.len().max(1) as f64;
        acc.into_iter().map(|a| (a / n) as f32).collect()
    }

    /// Returns a new set containing the vectors at the given ids, in order.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[u32]) -> VectorSet {
        let mut out = VectorSet::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.get(id as usize));
        }
        out
    }

    /// Splits the set into the first `n` vectors and the rest.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (VectorSet, VectorSet) {
        assert!(n <= self.len());
        let cut = n * self.dim;
        (
            VectorSet::from_flat(self.dim, self.data.as_slice()[..cut].to_vec()),
            VectorSet::from_flat(self.dim, self.data.as_slice()[cut..].to_vec()),
        )
    }

    /// Returns the first `n` vectors as a new set (a prefix subset), used by
    /// the scaling experiments (Figures 9, 10, 12) which index growing
    /// prefixes of a dataset.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> VectorSet {
        assert!(n <= self.len());
        VectorSet::from_flat(self.dim, self.data.as_slice()[..n * self.dim].to_vec())
    }

    /// Estimated resident memory of the raw vectors in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut s = VectorSet::new(3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_checks_multiple_of_dim() {
        let s = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_rejects_wrong_dim() {
        let mut s = VectorSet::new(2);
        s.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn centroid_of_known_points() {
        let s = VectorSet::from_rows(2, &[[0.0, 0.0], [2.0, 4.0]]);
        assert_eq!(s.centroid(), vec![1.0, 2.0]);
    }

    #[test]
    fn centroid_of_empty_set_is_zero() {
        let s = VectorSet::new(4);
        assert_eq!(s.centroid(), vec![0.0; 4]);
    }

    #[test]
    fn subset_picks_requested_ids() {
        let s = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [3.0]]);
        let sub = s.subset(&[3, 1]);
        assert_eq!(sub.get(0), &[3.0]);
        assert_eq!(sub.get(1), &[1.0]);
    }

    #[test]
    fn split_and_prefix() {
        let s = VectorSet::from_rows(1, &[[0.0], [1.0], [2.0], [3.0]]);
        let (a, b) = s.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), &[1.0]);
        let p = s.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(1), &[1.0]);
    }

    #[test]
    fn iter_matches_get() {
        let s = VectorSet::from_rows(2, &[[1.0, 2.0], [3.0, 4.0]]);
        let rows: Vec<&[f32]> = s.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], s.get(0));
        assert_eq!(rows[1], s.get(1));
    }

    #[test]
    fn memory_accounting() {
        let s = VectorSet::from_rows(4, &[[0.0; 4]; 8]);
        assert_eq!(s.memory_bytes(), 8 * 4 * 4);
    }
}
