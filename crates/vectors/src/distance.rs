//! Distance kernels.
//!
//! The paper works in Euclidean space under the l2 norm (δ(p, q) is the l2
//! distance). Graph traversal only ever *compares* distances, so every index
//! in this workspace uses the squared Euclidean distance internally (it is
//! monotone in the true distance and saves a square root per comparison),
//! exactly as the released NSG / HNSW implementations do.
//!
//! The free functions here dispatch through the process-wide
//! [`crate::simd`] kernel table: explicit SSE2/AVX2/NEON implementations
//! selected once by runtime CPU-feature detection (`NSG_SIMD` overrides),
//! with a portable scalar fallback that every ISA path is bit-identical to.
//! Search hot loops avoid even this one table read by caching the resolved
//! table in [`crate::store::QueryScratch`] at `prepare_query` time.
//!
//! [`CountingDistance`] wraps any metric and counts evaluations; Figure 8 of
//! the paper plots the number of distance computations each algorithm needs to
//! reach a given precision, and that experiment is driven by this wrapper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The distance functions supported by the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DistanceKind {
    /// Squared l2 distance (monotone surrogate of the l2 metric).
    SquaredEuclidean,
    /// True l2 distance.
    Euclidean,
    /// Negative inner product (smaller is more similar), used for
    /// maximum-inner-product-style workloads such as the e-commerce vectors.
    InnerProduct,
}

/// A distance function between two equal-length vectors.
///
/// Smaller values always mean "closer"; implementations need not satisfy the
/// triangle inequality (the inner-product variant does not), matching the
/// practical usage of graph ANNS indices.
pub trait Distance: Send + Sync {
    /// Evaluates the distance between `a` and `b`.
    ///
    /// Implementations may assume `a.len() == b.len()`.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;

    /// Which mathematical function this metric computes.
    fn kind(&self) -> DistanceKind;
}

/// Squared l2 distance: `sum_i (a_i - b_i)^2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredEuclidean;

/// l2 distance: `sqrt(sum_i (a_i - b_i)^2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

/// Negative inner product: `-sum_i a_i * b_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct InnerProduct;

/// Computes `sum (a_i - b_i)^2` through the process-wide SIMD kernel table
/// (resolved once; see [`crate::simd::kernels`]).
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    (crate::simd::kernels().squared_l2)(a, b)
}

/// Computes `sum a_i * b_i` through the process-wide SIMD kernel table.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    (crate::simd::kernels().dot)(a, b)
}

/// Computes the squared l2 norm of `a`.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

impl Distance for SquaredEuclidean {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::SquaredEuclidean
    }
}

impl Distance for Euclidean {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b).sqrt()
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::Euclidean
    }
}

impl Distance for InnerProduct {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        -dot(a, b)
    }

    fn kind(&self) -> DistanceKind {
        DistanceKind::InnerProduct
    }
}

/// Visitor for [`DistanceKind::dispatch`]: implement `visit` once, generically
/// over the metric, and the dispatcher instantiates it per concrete metric
/// type — runtime kind selection **without** putting a `Box<dyn Distance>`
/// virtual call inside the distance loop.
pub trait DistanceVisitor {
    /// The result of visiting.
    type Out;
    /// Invoked with the statically-typed metric the kind names.
    fn visit<D: Distance>(self, metric: D) -> Self::Out;
}

impl DistanceKind {
    /// Instantiates the metric this kind names as a trait object.
    ///
    /// This is a *setup-path* convenience (configuration parsing, bench
    /// bins): a `Box<dyn Distance>` pays one virtual call per distance
    /// evaluation, so it must never be threaded into a search loop. Every
    /// search path in the workspace is generic over `D: Distance` (and,
    /// since the `VectorStore` refactor, over the store) — audit result:
    /// no hot-path call sites of this method remain; indices hold concrete
    /// metric types end to end. For runtime kind selection that stays
    /// monomorphized, use [`dispatch`](Self::dispatch).
    pub fn metric(self) -> Box<dyn Distance> {
        match self {
            DistanceKind::SquaredEuclidean => Box::new(SquaredEuclidean),
            DistanceKind::Euclidean => Box::new(Euclidean),
            DistanceKind::InnerProduct => Box::new(InnerProduct),
        }
    }

    /// Runs `visitor` with the statically-typed metric this kind names — the
    /// monomorphized alternative to [`metric`](Self::metric): the kind is
    /// branched on **once**, then the visitor body (typically an entire
    /// index build + query run) executes with full static dispatch.
    pub fn dispatch<V: DistanceVisitor>(self, visitor: V) -> V::Out {
        match self {
            DistanceKind::SquaredEuclidean => visitor.visit(SquaredEuclidean),
            DistanceKind::Euclidean => visitor.visit(Euclidean),
            DistanceKind::InnerProduct => visitor.visit(InnerProduct),
        }
    }
}

/// A metric wrapper that atomically counts how many distance evaluations were
/// performed.
///
/// The paper's Figure 8 reports the number of distance computations each
/// algorithm needs to reach a given precision; search routines accept any
/// [`Distance`], so threading a `CountingDistance` through them reproduces
/// that measurement without touching the search code.
#[derive(Clone)]
pub struct CountingDistance<D> {
    inner: D,
    count: Arc<AtomicU64>,
}

impl<D: Distance> CountingDistance<D> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of distance evaluations since construction or the last
    /// [`reset`](Self::reset).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// A handle to the shared counter (useful when the wrapper itself is moved
    /// into an index).
    pub fn counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.count)
    }
}

impl<D: Distance> Distance for CountingDistance<D> {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }

    fn kind(&self) -> DistanceKind {
        self.inner.kind()
    }
}

impl<D: Distance + ?Sized> Distance for &D {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        (**self).distance(a, b)
    }

    fn kind(&self) -> DistanceKind {
        (**self).kind()
    }
}

impl Distance for Box<dyn Distance> {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        (**self).distance(a, b)
    }

    fn kind(&self) -> DistanceKind {
        (**self).kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_l2sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn squared_l2_matches_naive_on_odd_lengths() {
        for len in [1usize, 3, 7, 8, 9, 15, 16, 17, 64, 100, 128, 129] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..len).map(|i| (len - i) as f32 * 0.25).collect();
            let fast = squared_l2(&a, &b);
            let slow = naive_l2sq(&a, &b);
            assert!((fast - slow).abs() < 1e-3 * slow.max(1.0), "len {len}: {fast} vs {slow}");
        }
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        let slow: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - slow).abs() < 1e-4);
    }

    #[test]
    fn euclidean_is_sqrt_of_squared() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(SquaredEuclidean.distance(&a, &b), 25.0);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn inner_product_is_negative_dot() {
        let a = [1.0, 0.0, 2.0];
        let b = [3.0, 5.0, 1.0];
        assert_eq!(InnerProduct.distance(&a, &b), -5.0);
    }

    #[test]
    fn distance_of_identical_vectors_is_zero() {
        let a: Vec<f32> = (0..96).map(|i| i as f32).collect();
        assert_eq!(squared_l2(&a, &a), 0.0);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn counting_distance_counts() {
        let d = CountingDistance::new(SquaredEuclidean);
        let a = [0.0, 1.0];
        let b = [1.0, 1.0];
        assert_eq!(d.count(), 0);
        let _ = d.distance(&a, &b);
        let _ = d.distance(&a, &b);
        assert_eq!(d.count(), 2);
        d.reset();
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn dispatch_monomorphizes_the_named_metric() {
        struct Eval<'a> {
            a: &'a [f32],
            b: &'a [f32],
        }
        impl DistanceVisitor for Eval<'_> {
            type Out = (DistanceKind, f32);
            fn visit<D: Distance>(self, metric: D) -> Self::Out {
                (metric.kind(), metric.distance(self.a, self.b))
            }
        }
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        for kind in [
            DistanceKind::SquaredEuclidean,
            DistanceKind::Euclidean,
            DistanceKind::InnerProduct,
        ] {
            let (got_kind, dist) = kind.dispatch(Eval { a: &a, b: &b });
            assert_eq!(got_kind, kind);
            assert_eq!(dist, kind.metric().distance(&a, &b));
        }
    }

    #[test]
    fn kind_roundtrips_through_metric() {
        for kind in [
            DistanceKind::SquaredEuclidean,
            DistanceKind::Euclidean,
            DistanceKind::InnerProduct,
        ] {
            assert_eq!(kind.metric().kind(), kind);
        }
    }

    #[test]
    fn squared_kind_is_monotone_in_euclidean() {
        // Graph search only compares distances, so SquaredEuclidean must rank
        // candidate pairs exactly like Euclidean.
        let q = [0.0f32, 0.0];
        let near = [1.0f32, 1.0];
        let far = [3.0f32, 0.5];
        assert!(SquaredEuclidean.distance(&q, &near) < SquaredEuclidean.distance(&q, &far));
        assert!(Euclidean.distance(&q, &near) < Euclidean.distance(&q, &far));
    }
}
