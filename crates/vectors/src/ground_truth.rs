//! Exact k-nearest-neighbor ground truth.
//!
//! Precision (Eq. 1 of the paper) is computed against the exact k-NN set of
//! each query, so every experiment needs a brute-force reference. This is also
//! the "Serial Scan" baseline of Figure 6 / Table 5, since serial scan is
//! exactly an exact k-NN search over the base data.

use crate::dataset::VectorSet;
use crate::distance::Distance;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Exact k-nearest-neighbor lists for a batch of queries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroundTruth {
    /// `neighbors[q]` holds the ids of the `k` closest base vectors to query
    /// `q`, in ascending distance order.
    pub neighbors: Vec<Vec<u32>>,
    /// `distances[q][i]` is the distance of `neighbors[q][i]` to query `q`.
    pub distances: Vec<Vec<f32>>,
    /// The `k` used when computing this ground truth.
    pub k: usize,
}

impl GroundTruth {
    /// The exact neighbor ids of query `q`.
    pub fn ids(&self, q: usize) -> &[u32] {
        &self.neighbors[q]
    }

    /// Number of queries covered.
    pub fn num_queries(&self) -> usize {
        self.neighbors.len()
    }

    /// Truncates every list to the first `k` entries (useful to evaluate
    /// smaller `k` from a single precomputed ground truth).
    ///
    /// # Panics
    /// Panics if `k` exceeds the stored `k`.
    pub fn truncated(&self, k: usize) -> GroundTruth {
        assert!(k <= self.k, "cannot extend ground truth from {} to {k}", self.k);
        GroundTruth {
            neighbors: self.neighbors.iter().map(|row| row[..k.min(row.len())].to_vec()).collect(),
            distances: self.distances.iter().map(|row| row[..k.min(row.len())].to_vec()).collect(),
            k,
        }
    }
}

/// One scored neighbor candidate (id, distance) ordered by distance then id so
/// ties break deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    dist: f32,
    id: u32,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Exact k nearest neighbors of a single query by scanning the whole base set.
///
/// Returns `(ids, distances)` sorted by ascending distance; ties break on id.
/// `k` is clamped to the base size.
pub fn exact_knn_single<D: Distance + ?Sized>(
    base: &VectorSet,
    query: &[f32],
    k: usize,
    metric: &D,
) -> (Vec<u32>, Vec<f32>) {
    let k = k.min(base.len());
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    // A bounded max-heap of the best k seen so far.
    let mut heap: std::collections::BinaryHeap<Scored> = std::collections::BinaryHeap::with_capacity(k + 1);
    for (i, v) in base.iter().enumerate() {
        let dist = metric.distance(query, v);
        let cand = Scored { dist, id: i as u32 };
        if heap.len() < k {
            heap.push(cand);
        } else if heap.peek().is_some_and(|top| cand < *top) {
            heap.pop();
            heap.push(cand);
        }
    }
    let mut sorted: Vec<Scored> = heap.into_vec();
    sorted.sort_unstable();
    (
        sorted.iter().map(|s| s.id).collect(),
        sorted.iter().map(|s| s.dist).collect(),
    )
}

/// Exact k nearest neighbors for every query, computed in parallel.
pub fn exact_knn<D: Distance + Sync + ?Sized>(
    base: &VectorSet,
    queries: &VectorSet,
    k: usize,
    metric: &D,
) -> GroundTruth {
    assert_eq!(base.dim(), queries.dim(), "base and query dimensions differ");
    let results: Vec<(Vec<u32>, Vec<f32>)> = (0..queries.len())
        .into_par_iter()
        .map(|q| exact_knn_single(base, queries.get(q), k, metric))
        .collect();
    let mut neighbors = Vec::with_capacity(results.len());
    let mut distances = Vec::with_capacity(results.len());
    for (ids, dists) in results {
        neighbors.push(ids);
        distances.push(dists);
    }
    GroundTruth {
        neighbors,
        distances,
        k: k.min(base.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::SquaredEuclidean;
    use crate::synthetic::uniform;

    #[test]
    fn single_query_finds_true_neighbors_on_a_line() {
        // Points at x = 0, 1, 2, ..., 9 on a line; query at 3.2.
        let base = VectorSet::from_rows(1, &(0..10).map(|i| [i as f32]).collect::<Vec<_>>());
        let (ids, dists) = exact_knn_single(&base, &[3.2], 3, &SquaredEuclidean);
        assert_eq!(ids, vec![3, 4, 2]);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn k_is_clamped_to_base_size() {
        let base = VectorSet::from_rows(1, &[[0.0], [1.0]]);
        let (ids, _) = exact_knn_single(&base, &[0.0], 10, &SquaredEuclidean);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn batch_matches_single() {
        let base = uniform(200, 8, 42);
        let queries = uniform(10, 8, 43);
        let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
        for q in 0..queries.len() {
            let (ids, dists) = exact_knn_single(&base, queries.get(q), 5, &SquaredEuclidean);
            assert_eq!(gt.neighbors[q], ids);
            assert_eq!(gt.distances[q], dists);
        }
    }

    #[test]
    fn query_identical_to_base_point_returns_it_first() {
        let base = uniform(50, 4, 7);
        let q = base.get(17).to_vec();
        let (ids, dists) = exact_knn_single(&base, &q, 1, &SquaredEuclidean);
        assert_eq!(ids[0], 17);
        assert_eq!(dists[0], 0.0);
    }

    #[test]
    fn distances_are_sorted_ascending() {
        let base = uniform(300, 16, 9);
        let queries = uniform(5, 16, 10);
        let gt = exact_knn(&base, &queries, 20, &SquaredEuclidean);
        for row in &gt.distances {
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn truncation_keeps_prefix() {
        let base = uniform(100, 4, 1);
        let queries = uniform(3, 4, 2);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let gt5 = gt.truncated(5);
        assert_eq!(gt5.k, 5);
        for q in 0..3 {
            assert_eq!(gt5.neighbors[q], gt.neighbors[q][..5]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn truncation_cannot_extend() {
        let base = uniform(10, 4, 1);
        let queries = uniform(1, 4, 2);
        let gt = exact_knn(&base, &queries, 3, &SquaredEuclidean);
        let _ = gt.truncated(5);
    }

    #[test]
    fn empty_k_returns_empty() {
        let base = uniform(10, 4, 1);
        let (ids, dists) = exact_knn_single(&base, base.get(0), 0, &SquaredEuclidean);
        assert!(ids.is_empty());
        assert!(dists.is_empty());
    }
}
