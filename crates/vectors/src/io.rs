//! Readers and writers for the TEXMEX / BIGANN vector file formats.
//!
//! SIFT1M, GIST1M and DEEP1B — the public datasets of the paper's evaluation —
//! are distributed as `.fvecs` (float vectors), `.ivecs` (integer vectors,
//! used for ground truth) and `.bvecs` (byte vectors) files. Each record is a
//! little-endian `i32` dimension `d` followed by `d` components.
//!
//! The reproduction runs on synthetic data by default, but these routines let
//! the real datasets be dropped in unchanged, and the experiment binaries use
//! them to cache generated datasets and ground truth between runs.

use crate::dataset::VectorSet;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the vector-file readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file's structure is inconsistent (negative dimension, mismatched
    /// record sizes, truncated record).
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn read_dim<R: Read>(reader: &mut R) -> Result<Option<usize>, IoError> {
    let mut buf = [0u8; 4];
    match reader.read_exact(&mut buf) {
        Ok(()) => {
            let d = i32::from_le_bytes(buf);
            if d <= 0 {
                return Err(IoError::Format(format!("non-positive dimension {d}")));
            }
            Ok(Some(d as usize))
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(IoError::Io(e)),
    }
}

/// Reads an `.fvecs` file (or any reader with that layout) into a [`VectorSet`].
pub fn read_fvecs_from<R: Read>(reader: R) -> Result<VectorSet, IoError> {
    let mut reader = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    while let Some(d) = read_dim(&mut reader)? {
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(IoError::Format(format!(
                    "record dimension {d} differs from first record dimension {existing}"
                )));
            }
            _ => {}
        }
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated fvecs record".to_string())
            } else {
                IoError::Io(e)
            }
        })?;
        data.extend(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty fvecs file".to_string()))?;
    Ok(VectorSet::from_flat(dim, data))
}

/// Reads an `.fvecs` file from disk.
pub fn read_fvecs<P: AsRef<Path>>(path: P) -> Result<VectorSet, IoError> {
    read_fvecs_from(File::open(path)?)
}

/// Writes a [`VectorSet`] in `.fvecs` layout.
pub fn write_fvecs_to<W: Write>(writer: W, set: &VectorSet) -> Result<(), IoError> {
    let mut writer = BufWriter::new(writer);
    let dim = set.dim() as i32;
    for v in set.iter() {
        writer.write_all(&dim.to_le_bytes())?;
        for &x in v {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Writes a [`VectorSet`] to an `.fvecs` file on disk.
pub fn write_fvecs<P: AsRef<Path>>(path: P, set: &VectorSet) -> Result<(), IoError> {
    write_fvecs_to(File::create(path)?, set)
}

/// Reads an `.ivecs` file (one `i32` vector per record) — the ground-truth
/// format of the BIGANN datasets.
pub fn read_ivecs_from<R: Read>(reader: R) -> Result<Vec<Vec<u32>>, IoError> {
    let mut reader = BufReader::new(reader);
    let mut rows = Vec::new();
    while let Some(d) = read_dim(&mut reader)? {
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated ivecs record".to_string())
            } else {
                IoError::Io(e)
            }
        })?;
        // Components are signed on disk; a negative id (some tools use -1 as
        // a sentinel) must fail loudly instead of wrapping to a huge u32.
        let mut row = Vec::with_capacity(d);
        for c in buf.chunks_exact(4) {
            let raw = i32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let id = u32::try_from(raw).map_err(|_| {
                IoError::Format(format!("negative component {raw} in ivecs record {}", rows.len()))
            })?;
            row.push(id);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Reads an `.ivecs` file from disk.
pub fn read_ivecs<P: AsRef<Path>>(path: P) -> Result<Vec<Vec<u32>>, IoError> {
    read_ivecs_from(File::open(path)?)
}

/// Writes integer vectors in `.ivecs` layout.
pub fn write_ivecs_to<W: Write>(writer: W, rows: &[Vec<u32>]) -> Result<(), IoError> {
    let mut writer = BufWriter::new(writer);
    for row in rows {
        let d = i32::try_from(row.len())
            .map_err(|_| IoError::Format(format!("row of {} components overflows ivecs i32 dimension", row.len())))?;
        writer.write_all(&d.to_le_bytes())?;
        for &x in row {
            let v = i32::try_from(x)
                .map_err(|_| IoError::Format(format!("component {x} overflows ivecs i32 range")))?;
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Writes integer vectors to an `.ivecs` file on disk.
pub fn write_ivecs<P: AsRef<Path>>(path: P, rows: &[Vec<u32>]) -> Result<(), IoError> {
    write_ivecs_to(File::create(path)?, rows)
}

/// Reads a `.bvecs` file (one byte vector per record; SIFT1B / DEEP descriptors
/// are shipped this way) and widens the components to `f32`.
pub fn read_bvecs_from<R: Read>(reader: R) -> Result<VectorSet, IoError> {
    let mut reader = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    while let Some(d) = read_dim(&mut reader)? {
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(IoError::Format(format!(
                    "record dimension {d} differs from first record dimension {existing}"
                )));
            }
            _ => {}
        }
        let mut buf = vec![0u8; d];
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated bvecs record".to_string())
            } else {
                IoError::Io(e)
            }
        })?;
        data.extend(buf.iter().map(|&b| f32::from(b)));
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty bvecs file".to_string()))?;
    Ok(VectorSet::from_flat(dim, data))
}

/// Reads a `.bvecs` file from disk.
pub fn read_bvecs<P: AsRef<Path>>(path: P) -> Result<VectorSet, IoError> {
    read_bvecs_from(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fvecs_roundtrip_in_memory() {
        let set = VectorSet::from_rows(3, &[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &set).unwrap();
        // 2 records * (4 bytes header + 12 bytes payload)
        assert_eq!(buf.len(), 2 * (4 + 12));
        let back = read_fvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn ivecs_roundtrip_in_memory() {
        let rows = vec![vec![7u32, 1, 3], vec![0u32, 2, 9]];
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).unwrap();
        let back = read_ivecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn negative_ivecs_component_is_an_error_not_a_wrap() {
        // Regression: this used to silently narrow `-1i32 as u32` to
        // 4294967295, poisoning recall accounting with a phantom id.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&7i32.to_le_bytes());
        buf.extend_from_slice(&(-1i32).to_le_bytes());
        let err = read_ivecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, IoError::Format(msg) if msg.contains("-1")));
    }

    #[test]
    fn oversized_ivecs_component_fails_to_write() {
        let rows = vec![vec![u32::MAX]];
        let mut sink: Vec<u8> = Vec::new();
        let err = write_ivecs_to(&mut sink, &rows).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn empty_fvecs_is_an_error() {
        let err = read_fvecs_from(Cursor::new(Vec::<u8>::new())).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 4 components
        let err = read_fvecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn mismatched_dims_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2.0f32.to_le_bytes());
        let err = read_fvecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn negative_dimension_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(-3i32).to_le_bytes());
        let err = read_fvecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn bvecs_widens_bytes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3i32.to_le_bytes());
        buf.extend_from_slice(&[10u8, 20, 255]);
        let set = read_bvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(set.dim(), 3);
        assert_eq!(set.get(0), &[10.0, 20.0, 255.0]);
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let set = VectorSet::from_rows(2, &[[0.5, -1.5], [3.25, 4.0]]);
        let dir = std::env::temp_dir().join(format!("nsg_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.fvecs");
        write_fvecs(&path, &set).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_dir_all(&dir).ok();
    }
}
