//! Dense-vector substrate for the NSG (Navigating Spreading-out Graph)
//! reproduction.
//!
//! This crate provides everything the graph indices operate on:
//!
//! * [`dataset::VectorSet`] — a flat, cache-friendly container of fixed-dimension
//!   `f32` vectors,
//! * [`distance`] — the l2 / inner-product / cosine distance kernels used by the
//!   paper (Euclidean space `E^d` under the l2 norm), plus an instrumented
//!   counting wrapper used to regenerate Figure 8,
//! * [`io`] — readers and writers for the TEXMEX / BIGANN `fvecs`, `ivecs` and
//!   `bvecs` formats in which SIFT1M, GIST1M and DEEP1B are distributed,
//! * [`synthetic`] — scaled-down synthetic stand-ins for the paper's datasets
//!   (SIFT-like, GIST-like, RAND, GAUSS, DEEP-like, e-commerce-like),
//! * [`ground_truth`] — exact (brute-force, rayon-parallel) k-nearest-neighbor
//!   computation,
//! * [`metrics`] — the precision / recall definition of Eq. (1),
//! * [`lid`] — the local intrinsic dimension estimator used in Table 1,
//! * [`prefetch`] — software-prefetch primitives (no-op on unsupported
//!   targets) that hide the gather latency of per-hop vector reads,
//! * [`arena`] / [`mapped`] — arena storage that is either owned (`Vec`) or
//!   a zero-copy view borrowed from a ref-counted mapped snapshot region,
//! * [`store`] — the [`VectorStore`] abstraction the search hot loop is
//!   generic over: asymmetric prepared-query distance evaluation, prefetch,
//!   and memory accounting, monomorphized per backend,
//! * [`quant`] — the SQ8 scalar-quantized store (one byte per dimension,
//!   bounded error, 4× less bandwidth) and the shared quantized-distance
//!   kernels (SQ8 asymmetric l2 / dot, PQ's ADC table accumulation),
//! * [`simd`] — explicit SSE2/AVX2/NEON implementations of the hot distance
//!   shapes behind a process-wide kernel table resolved once at startup
//!   (`NSG_SIMD` env override; scalar fallback doubles as the oracle),
//! * [`sample`] — deterministic sampling and train/query/validation splits.
//!
//! All randomized routines take explicit seeds so experiments are reproducible.

// Every `unsafe` operation inside an `unsafe fn` must carry its own block
// (and, per the lint gate's R4, its own SAFETY comment).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod dataset;
pub mod distance;
pub mod ground_truth;
pub mod io;
pub mod lid;
pub mod mapped;
pub mod metrics;
pub mod prefetch;
pub mod quant;
pub mod sample;
pub mod simd;
pub mod store;
pub mod synthetic;

pub use arena::{Arena, ArenaElem, ArenaError};
pub use dataset::VectorSet;
pub use mapped::MappedRegion;
pub use distance::{CountingDistance, Distance, DistanceKind, Euclidean, InnerProduct, SquaredEuclidean};
pub use ground_truth::{exact_knn, exact_knn_single, GroundTruth};
pub use prefetch::{prefetch_read, prefetch_slice};
pub use metrics::{precision_at_k, recall_curve};
pub use quant::{Sq8PartsError, Sq8VectorSet};
pub use simd::{KernelTable, SimdLevel};
pub use store::{QueryScratch, VectorStore};
