//! Local intrinsic dimension (LID) estimation.
//!
//! Table 1 of the paper reports the LID of each dataset (citing Costa et al.,
//! "Estimating local intrinsic dimension with k-nearest neighbor graphs") to
//! characterize how hard the dataset is: SIFT1M ≈ 12.9, GIST1M ≈ 29.1,
//! RAND4M ≈ 49.5, GAUSS5M ≈ 48.1.
//!
//! We implement the maximum-likelihood k-NN estimator (Levina–Bickel form,
//! which the k-NN graph estimator of Costa et al. reduces to in practice):
//! for a point `x` with k-NN distances `r_1 ≤ ... ≤ r_k`,
//!
//! ```text
//! lid_hat(x) = ( (1/(k-1)) * sum_{i=1..k-1} ln( r_k / r_i ) )^-1
//! ```
//!
//! and the dataset LID is the average of the per-point estimates over a
//! sample.

use crate::dataset::VectorSet;
use crate::distance::Euclidean;
use crate::ground_truth::exact_knn_single;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration of the LID estimator.
#[derive(Debug, Clone, Copy)]
pub struct LidConfig {
    /// Number of neighbors used per point (paper-style estimators use 10–100;
    /// default 20).
    pub k: usize,
    /// Number of sample points over which the per-point estimates are
    /// averaged. The estimator scans the base set once per sample point, so
    /// this bounds the cost on large sets.
    pub sample: usize,
    /// Seed controlling which points are sampled.
    pub seed: u64,
}

impl Default for LidConfig {
    fn default() -> Self {
        Self { k: 20, sample: 200, seed: 0xC0FFEE }
    }
}

/// Maximum-likelihood LID estimate from one ascending list of neighbor
/// distances (excluding the zero distance to the point itself).
///
/// Returns `None` when the list is too short or degenerate (all distances
/// equal or zero).
pub fn lid_from_distances(dists: &[f32]) -> Option<f64> {
    if dists.len() < 2 {
        return None;
    }
    let r_k = f64::from(*dists.last()?);
    if r_k <= 0.0 {
        return None;
    }
    let mut acc = 0.0;
    let mut used = 0usize;
    for &r in &dists[..dists.len() - 1] {
        let r = f64::from(r);
        if r <= 0.0 {
            continue;
        }
        acc += (r_k / r).ln();
        used += 1;
    }
    if used == 0 || acc <= 0.0 {
        return None;
    }
    Some(used as f64 / acc)
}

/// Estimates the local intrinsic dimension of `base` by averaging the MLE
/// estimator over a random sample of points.
///
/// Returns `None` for sets too small to support the estimator
/// (`len <= config.k`).
pub fn estimate_lid(base: &VectorSet, config: LidConfig) -> Option<f64> {
    if base.len() <= config.k + 1 || config.k < 2 {
        return None;
    }
    let mut ids: Vec<u32> = (0..base.len() as u32).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    ids.shuffle(&mut rng);
    ids.truncate(config.sample.max(1).min(base.len()));

    let estimates: Vec<f64> = ids
        .par_iter()
        .filter_map(|&id| {
            // k+1 because the point itself is returned at distance 0.
            let (_, dists) = exact_knn_single(base, base.get(id as usize), config.k + 1, &Euclidean);
            let nonzero: Vec<f32> = dists.into_iter().filter(|&d| d > 0.0).collect();
            lid_from_distances(&nonzero)
        })
        .collect();
    if estimates.is_empty() {
        return None;
    }
    Some(estimates.iter().sum::<f64>() / estimates.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian, uniform};

    #[test]
    fn lid_from_distances_of_uniform_radii() {
        // If r_i = r_k for all i the log-ratios are zero and the estimate is
        // undefined.
        assert!(lid_from_distances(&[1.0, 1.0, 1.0]).is_none());
        // Too-short and degenerate inputs are rejected.
        assert!(lid_from_distances(&[1.0]).is_none());
        assert!(lid_from_distances(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn lid_estimate_is_finite_and_positive() {
        let base = uniform(800, 8, 3);
        let lid = estimate_lid(&base, LidConfig { k: 10, sample: 100, seed: 1 }).unwrap();
        assert!(lid.is_finite() && lid > 0.0);
    }

    #[test]
    fn full_dimensional_uniform_data_has_lid_near_ambient_dim() {
        let base = uniform(3000, 8, 5);
        let lid = estimate_lid(&base, LidConfig { k: 20, sample: 200, seed: 2 }).unwrap();
        assert!(lid > 4.0 && lid < 14.0, "lid = {lid}");
    }

    #[test]
    fn low_dimensional_manifold_has_low_lid() {
        // Data living on a 2-d plane embedded in 32-d space.
        let plane2d = uniform(2000, 2, 9);
        let mut data = Vec::with_capacity(2000 * 32);
        for v in plane2d.iter() {
            let mut row = vec![0.0f32; 32];
            row[0] = v[0];
            row[1] = v[1];
            data.extend_from_slice(&row);
        }
        let embedded = VectorSet::from_flat(32, data);
        let lid = estimate_lid(&embedded, LidConfig { k: 20, sample: 150, seed: 3 }).unwrap();
        assert!(lid < 4.0, "embedded plane should have LID near 2, got {lid}");
    }

    #[test]
    fn gaussian_data_has_higher_lid_than_manifold_data() {
        let gauss = gaussian(1500, 16, 0.0, 1.0, 4);
        let lid_gauss = estimate_lid(&gauss, LidConfig { k: 15, sample: 150, seed: 4 }).unwrap();
        assert!(lid_gauss > 6.0, "lid = {lid_gauss}");
    }

    #[test]
    fn tiny_sets_are_rejected() {
        let base = uniform(10, 4, 1);
        assert!(estimate_lid(&base, LidConfig { k: 20, sample: 10, seed: 0 }).is_none());
    }
}
