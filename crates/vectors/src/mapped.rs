//! Ref-counted read-only byte regions that [`crate::arena::Arena`] views
//! borrow from.
//!
//! A [`MappedRegion`] is the unit of snapshot lifetime: every arena borrowed
//! from it holds an `Arc<MappedRegion>`, so the mapping (or its aligned-copy
//! fallback) is released exactly when the last view — typically the last
//! in-flight query's index handle — drops. The base address is always at
//! least 64-byte aligned (`mmap(2)` returns page-aligned addresses; the
//! fallback allocates at [`mmap::BASE_ALIGN`]), which is what lets the
//! snapshot format guarantee per-section element alignment with plain offset
//! arithmetic.

use std::io;
use std::path::Path;
use std::sync::Arc;

/// A read-only byte region arenas can borrow from: an `mmap(2)`'d file, its
/// read-into-aligned-buffer fallback, or an in-memory aligned copy.
#[derive(Debug)]
pub struct MappedRegion {
    map: mmap::Mmap,
}

impl MappedRegion {
    /// Maps `path` read-only (falling back to an aligned copy where `mmap(2)`
    /// is unavailable) and wraps it in the shared refcount.
    pub fn open(path: &Path) -> io::Result<Arc<MappedRegion>> {
        Ok(Arc::new(MappedRegion { map: mmap::Mmap::open(path)? }))
    }

    /// Opens `path` through the portable fallback unconditionally — the file
    /// is copied into a 64-byte-aligned buffer. Exercises the non-mmap code
    /// path deterministically on any platform.
    pub fn open_unmapped(path: &Path) -> io::Result<Arc<MappedRegion>> {
        Ok(Arc::new(MappedRegion { map: mmap::Mmap::open_unmapped(path)? }))
    }

    /// Wraps an in-memory image in an aligned region (an O(len) copy), so
    /// freshly serialized bytes and test fixtures go through the exact same
    /// borrow machinery as mapped files.
    pub fn from_bytes(bytes: &[u8]) -> Arc<MappedRegion> {
        Arc::new(MappedRegion { map: mmap::Mmap::copy_from_slice(bytes) })
    }

    /// The region's bytes.
    pub fn bytes(&self) -> &[u8] {
        self.map.as_slice()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the region is a live `mmap(2)` mapping (`false` for the
    /// aligned-copy fallback and in-memory images).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }
}
