//! Search-quality metrics.
//!
//! The paper evaluates accuracy with the precision of Eq. (1):
//! `precision(R') = |R' ∩ R| / K` where `R` is the exact k-NN set and `R'` the
//! returned set. Because `|R'| = K` in all experiments, precision and recall
//! coincide; we expose both names.

use crate::ground_truth::GroundTruth;

/// Precision of a single returned list against the exact neighbor ids
/// (Eq. 1): the fraction of returned ids that are true k-nearest neighbors.
///
/// Duplicated ids in `returned` are counted once, so a degenerate answer
/// cannot inflate its score.
pub fn precision_at_k(returned: &[u32], exact: &[u32]) -> f64 {
    if exact.is_empty() {
        return if returned.is_empty() { 1.0 } else { 0.0 };
    }
    let truth: std::collections::HashSet<u32> = exact.iter().copied().collect();
    let mut seen = std::collections::HashSet::with_capacity(returned.len());
    let mut hits = 0usize;
    for &id in returned {
        if truth.contains(&id) && seen.insert(id) {
            hits += 1;
        }
    }
    hits as f64 / exact.len() as f64
}

/// Mean precision over a batch of queries.
///
/// `results[q]` is the returned id list for query `q`; ground truth rows are
/// truncated (or used in full) to `k`.
///
/// # Panics
/// Panics if `results.len()` differs from the number of ground-truth queries.
pub fn mean_precision(results: &[Vec<u32>], gt: &GroundTruth, k: usize) -> f64 {
    assert_eq!(
        results.len(),
        gt.num_queries(),
        "result batch size does not match ground truth"
    );
    if results.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (q, returned) in results.iter().enumerate() {
        let exact = &gt.neighbors[q];
        let exact_k = &exact[..k.min(exact.len())];
        total += precision_at_k(&returned[..k.min(returned.len())], exact_k);
    }
    total / results.len() as f64
}

/// A point on a quality/cost curve: the cost axis is chosen by the caller
/// (queries per second, distance computations, search-pool size, ...).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurvePoint {
    /// Mean precision at this operating point.
    pub precision: f64,
    /// Cost measure (e.g. QPS or #distance computations) at this point.
    pub cost: f64,
}

/// Builds a precision-vs-cost curve from parallel slices, sorted by precision.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn recall_curve(precisions: &[f64], costs: &[f64]) -> Vec<CurvePoint> {
    assert_eq!(precisions.len(), costs.len());
    let mut points: Vec<CurvePoint> = precisions
        .iter()
        .zip(costs)
        .map(|(&precision, &cost)| CurvePoint { precision, cost })
        .collect();
    points.sort_by(|a, b| a.precision.total_cmp(&b.precision));
    points
}

/// Linearly interpolates the cost at which a curve reaches `target_precision`.
///
/// Returns `None` when the curve never reaches the target. Used by the scaling
/// experiments (Figures 9–12), which report search time "at 95% / 99%
/// precision".
pub fn cost_at_precision(curve: &[CurvePoint], target_precision: f64) -> Option<f64> {
    let mut sorted = curve.to_vec();
    sorted.sort_by(|a, b| a.precision.total_cmp(&b.precision));
    if sorted.last()?.precision < target_precision {
        return None;
    }
    if sorted[0].precision >= target_precision {
        return Some(sorted[0].cost);
    }
    for w in sorted.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo.precision < target_precision && hi.precision >= target_precision {
            let span = (hi.precision - lo.precision).max(1e-12);
            let t = (target_precision - lo.precision) / span;
            return Some(lo.cost + t * (hi.cost - lo.cost));
        }
    }
    sorted.last().map(|p| p.cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_answer_has_precision_one() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn disjoint_answer_has_precision_zero() {
        assert_eq!(precision_at_k(&[4, 5, 6], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn partial_overlap_counts_fraction() {
        assert_eq!(precision_at_k(&[1, 9, 3], &[1, 2, 3]), 2.0 / 3.0);
    }

    #[test]
    fn duplicates_do_not_inflate_precision() {
        assert_eq!(precision_at_k(&[1, 1, 1], &[1, 2, 3]), 1.0 / 3.0);
    }

    #[test]
    fn empty_ground_truth_convention() {
        assert_eq!(precision_at_k(&[], &[]), 1.0);
        assert_eq!(precision_at_k(&[1], &[]), 0.0);
    }

    fn toy_gt() -> GroundTruth {
        GroundTruth {
            neighbors: vec![vec![0, 1, 2], vec![3, 4, 5]],
            distances: vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]],
            k: 3,
        }
    }

    #[test]
    fn mean_precision_averages_queries() {
        let gt = toy_gt();
        let results = vec![vec![0, 1, 2], vec![3, 9, 9]];
        let p = mean_precision(&results, &gt, 3);
        assert!((p - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_precision_respects_smaller_k() {
        let gt = toy_gt();
        let results = vec![vec![0], vec![5]];
        // At k = 1 only the first ground-truth id counts.
        let p = mean_precision(&results, &gt, 1);
        assert_eq!(p, 0.5);
    }

    #[test]
    fn curve_is_sorted_by_precision() {
        let curve = recall_curve(&[0.9, 0.5, 0.99], &[100.0, 500.0, 20.0]);
        assert!(curve.windows(2).all(|w| w[0].precision <= w[1].precision));
    }

    #[test]
    fn cost_interpolation_between_points() {
        let curve = vec![
            CurvePoint { precision: 0.90, cost: 100.0 },
            CurvePoint { precision: 0.98, cost: 300.0 },
        ];
        let c = cost_at_precision(&curve, 0.94).unwrap();
        assert!((c - 200.0).abs() < 1e-9);
    }

    #[test]
    fn cost_is_none_when_target_unreachable() {
        let curve = vec![CurvePoint { precision: 0.8, cost: 10.0 }];
        assert!(cost_at_precision(&curve, 0.95).is_none());
    }

    #[test]
    fn cost_uses_first_point_when_already_above_target() {
        let curve = vec![
            CurvePoint { precision: 0.97, cost: 50.0 },
            CurvePoint { precision: 0.99, cost: 80.0 },
        ];
        assert_eq!(cost_at_precision(&curve, 0.95), Some(50.0));
    }
}
