//! Software prefetch of base vectors for the graph-search hot loop.
//!
//! Algorithm 1's neighbor expansion is a gather: each hop reads `o` base
//! vectors at ids the graph dictates, so every distance computation starts
//! with a cold cache line. The released NSG / HNSW implementations hide that
//! latency by issuing a software prefetch for the *next* candidate's vector
//! while the current one is being scored — the flat-layout + prefetch
//! discipline this crate's [`VectorSet`](crate::VectorSet) exists to enable.
//!
//! [`prefetch_read`] is the raw primitive (L1, read intent);
//! [`prefetch_slice`] issues one prefetch per cache line of a vector (capped
//! — see [`MAX_PREFETCH_LINES`]). On targets without a known prefetch
//! instruction both compile to a no-op, so callers sprinkle them freely.

/// Cache-line size assumed when striding prefetches over a vector. 64 bytes
/// matches every x86-64 and the common aarch64 parts; being wrong only costs
/// redundant (harmless) prefetch hints.
pub const CACHE_LINE_BYTES: usize = 64;

/// Upper bound on prefetch instructions issued per [`prefetch_slice`] call.
/// A 128-d f32 vector spans 8 lines; beyond a handful of lines the prefetch
/// distance outruns the loop and the hints evict useful data instead of
/// hiding latency.
pub const MAX_PREFETCH_LINES: usize = 8;

/// Hints the CPU to pull the cache line containing `ptr` into L1 with read
/// intent. No-op on targets without a prefetch instruction (and on miri,
/// where the intrinsic is unsupported). Never faults: prefetch instructions
/// ignore invalid addresses on both supported ISAs, so any pointer value is
/// safe to pass.
#[inline(always)]
pub fn prefetch_read(ptr: *const u8) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: PREFETCHT0 is architecturally defined to not fault regardless
    // of the address, and is available on every x86-64 CPU (SSE baseline).
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: PRFM PLDL1KEEP is a hint; it never faults and touches no
    // architectural state beyond the cache.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{ptr}]",
            ptr = in(reg) ptr,
            options(nostack, preserves_flags, readonly),
        );
    }
    #[cfg(not(all(any(target_arch = "x86_64", target_arch = "aarch64"), not(miri))))]
    let _ = ptr;
}

/// Prefetches the cache lines backing `v` (one hint per [`CACHE_LINE_BYTES`],
/// at most [`MAX_PREFETCH_LINES`]) — the form the search loop uses on the
/// next candidate's base vector.
#[inline(always)]
pub fn prefetch_slice(v: &[f32]) {
    prefetch_span(v.as_ptr() as *const u8, std::mem::size_of_val(v));
}

/// Byte-slice form of [`prefetch_slice`], used by the quantized stores whose
/// rows are `u8` code runs (4× fewer lines in flight per vector).
#[inline(always)]
pub fn prefetch_bytes(v: &[u8]) {
    prefetch_span(v.as_ptr(), v.len());
}

#[inline(always)]
fn prefetch_span(base: *const u8, bytes: usize) {
    let lines = bytes.div_ceil(CACHE_LINE_BYTES).clamp(1, MAX_PREFETCH_LINES);
    for line in 0..lines {
        // In-bounds for every line except possibly one past a short final
        // line; `prefetch_read` is defined for any address either way.
        prefetch_read(base.wrapping_add(line * CACHE_LINE_BYTES));
    }
}

/// Iterates over candidate node ids while prefetching each *next*
/// candidate's stored vector one step ahead — the shared expansion-loop
/// discipline of the Algorithm 1 and HNSW hot paths: by the time a
/// candidate's distance is computed, its vector has been in flight for one
/// full iteration. The first candidate is prefetched immediately so it
/// overlaps the caller's preceding bookkeeping (e.g. the visited-set probe).
///
/// Generic over [`VectorStore`](crate::store::VectorStore): flat stores pull
/// `f32` rows, quantized stores their (4× smaller) code rows.
// lint:hot-path
pub fn lookahead_ids<'a, S: crate::store::VectorStore + ?Sized>(
    ids: &'a [u32],
    store: &'a S,
) -> impl Iterator<Item = u32> + 'a {
    if let Some(&first) = ids.first() {
        store.prefetch(first as usize);
    }
    ids.iter().enumerate().map(move |(i, &n)| {
        if let Some(&next) = ids.get(i + 1) {
            store.prefetch(next as usize);
        }
        n
    })
}

/// [`lookahead_ids`] plus a prefetch of the *prepared query* buffer: every
/// `dist_to` streams the prepared form (the raw query for flat stores, the
/// shifted/scaled form for SQ8) against each candidate, so its lines being
/// resident matters as much as the candidate row's. Issued once up front —
/// after a hop of neighbor-row traffic the query lines may have been
/// evicted, and one batch of hints per expansion keeps them warm without
/// per-candidate cost. `prepared`'s borrow is not captured by the returned
/// iterator, so callers can keep mutating the surrounding context.
// lint:hot-path
pub fn lookahead_ids_with_query<'a, S: crate::store::VectorStore + ?Sized>(
    ids: &'a [u32],
    store: &'a S,
    prepared: &[f32],
) -> impl Iterator<Item = u32> + 'a {
    prefetch_slice(prepared);
    lookahead_ids(ids, store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        // Prefetch must not fault or alter data, including on edge cases.
        let v = vec![1.0f32; 256];
        prefetch_slice(&v);
        prefetch_slice(&v[..1]);
        prefetch_slice(&[]);
        prefetch_read(std::ptr::null());
        prefetch_read(usize::MAX as *const u8);
        assert!(v.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn lookahead_yields_every_id_in_order() {
        let base = crate::VectorSet::from_rows(2, &[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]);
        let ids = [2u32, 0, 1, 2];
        let out: Vec<u32> = lookahead_ids(&ids, &base).collect();
        assert_eq!(out, ids);
        assert_eq!(lookahead_ids(&[], &base).count(), 0);
    }

    #[test]
    fn line_math_covers_typical_dimensions() {
        // 128-d f32 = 512 bytes = 8 lines — exactly the cap.
        assert_eq!((128usize * 4).div_ceil(CACHE_LINE_BYTES), MAX_PREFETCH_LINES);
        // A 4-d vector still issues one hint.
        assert_eq!((4usize * 4).div_ceil(CACHE_LINE_BYTES).clamp(1, MAX_PREFETCH_LINES), 1);
    }
}
