//! Quantized vector storage and the shared quantized-distance kernels.
//!
//! Two quantization schemes live here:
//!
//! * **SQ8 scalar quantization** ([`Sq8VectorSet`]): each dimension `i` gets
//!   an affine code range `[minᵢ, minᵢ + 255·scaleᵢ]` fit to the dataset, and
//!   a vector is stored as one `u8` per dimension — 4× less memory and
//!   bandwidth than `f32` rows, with per-dimension reconstruction error
//!   bounded by `scaleᵢ / 2`. Distances are evaluated *asymmetrically*
//!   (query in full precision, stored side decoded on the fly inside the
//!   kernel), the standard trick compressed ANNS deployments pair with graph
//!   search.
//! * **ADC table lookups** ([`adc_accumulate`]): the product-quantization
//!   scoring loop of the IVFPQ baseline — per-subspace lookup tables of
//!   query-to-codeword distances, one `f32` add per stored code byte. The
//!   IVFPQ index builds the tables; the inner loop every candidate pays
//!   lives here so the workspace has exactly one implementation of it.
//!
//! The free-function kernels dispatch through the process-wide
//! [`crate::simd`] table (explicit SSE2/AVX2/NEON paths with packed
//! `u8 → f32` widening, resolved once at startup). The search hot loop
//! avoids even that single table read: [`Sq8VectorSet::prepare_query`]
//! caches the resolved table in the [`QueryScratch`], and `dist_to` calls
//! straight through the cached function pointers.

use crate::arena::Arena;
use crate::distance::{Distance, DistanceKind};
use crate::store::{QueryScratch, VectorStore};
use crate::VectorSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of quantization levels per dimension (codes are `u8`).
pub const SQ8_LEVELS: usize = 256;

/// Asymmetric squared-l2 kernel between a prepared query and one SQ8 code
/// row: `Σᵢ (tᵢ − scaleᵢ·cᵢ)²` where `tᵢ = qᵢ − minᵢ` was precomputed once
/// per query. Decoding (`minᵢ + scaleᵢ·cᵢ`) never materializes — the min
/// subtraction moved to the query side, so the per-candidate cost is one
/// widening multiply-subtract-square per dimension over a 4× smaller stream.
#[inline]
pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(t.len(), codes.len());
    debug_assert_eq!(t.len(), scale.len());
    (crate::simd::kernels().sq8_asym_l2)(t, scale, codes)
}

/// Asymmetric dot-product kernel: `Σᵢ wᵢ·cᵢ` where `wᵢ = qᵢ·scaleᵢ` was
/// precomputed once per query (the `Σ qᵢ·minᵢ` constant is folded into the
/// scratch bias). Dispatches through the same [`crate::simd`] table.
#[inline]
pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(w.len(), codes.len());
    (crate::simd::kernels().sq8_asym_dot)(w, codes)
}

/// The ADC (asymmetric distance computation) scoring loop of product
/// quantization: `Σₛ tables[s·width + codes[s]]`, one table lookup per code
/// byte. `tables` is the flat row-major layout (`width` entries per
/// subspace) the IVFPQ index builds once per probed list. Dispatches
/// through the [`crate::simd`] table (AVX2 uses an 8-wide gather when
/// `width >= 256`); per-candidate loops should hoist the function pointer
/// (`nsg_vectors::simd::kernels().adc_accumulate`) outside the loop.
#[inline]
pub fn adc_accumulate(tables: &[f32], width: usize, codes: &[u8]) -> f32 {
    debug_assert_eq!(tables.len(), width * codes.len());
    (crate::simd::kernels().adc_accumulate)(tables, width, codes)
}

/// A set of `n` vectors scalar-quantized to one byte per dimension.
///
/// Codes live in one contiguous row-major `u8` arena (the quantized analogue
/// of [`VectorSet`]'s flat `f32` buffer); the per-dimension affine parameters
/// (`min`, `scale = (max − min) / 255`) are fit to the encoded dataset.
/// Constant dimensions get `scale = 0` and decode exactly to their value.
#[derive(Clone, Serialize, Deserialize, PartialEq)]
pub struct Sq8VectorSet {
    dim: usize,
    /// Per-dimension lower bound of the code range.
    min: Arena<f32>,
    /// Per-dimension code step; reconstruction is `min + scale · code`.
    scale: Arena<f32>,
    /// Row-major code arena, `dim` bytes per vector.
    codes: Arena<u8>,
}

/// Why [`Sq8VectorSet::try_from_parts`] rejected its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sq8PartsError {
    /// `dim == 0` is unrepresentable.
    ZeroDimension,
    /// `min` is not `dim`-sized.
    MinLength { expected: usize, got: usize },
    /// `scale` is not `dim`-sized.
    ScaleLength { expected: usize, got: usize },
    /// The code arena is not a whole number of `dim`-byte rows.
    RaggedCodes { len: usize, dim: usize },
}

impl fmt::Display for Sq8PartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sq8PartsError::ZeroDimension => write!(f, "vector dimension must be positive"),
            Sq8PartsError::MinLength { expected, got } => {
                write!(f, "min parameters have length {got}, expected dim {expected}")
            }
            Sq8PartsError::ScaleLength { expected, got } => {
                write!(f, "scale parameters have length {got}, expected dim {expected}")
            }
            Sq8PartsError::RaggedCodes { len, dim } => {
                write!(f, "code arena length {len} is not a multiple of dim {dim}")
            }
        }
    }
}

impl std::error::Error for Sq8PartsError {}

impl fmt::Debug for Sq8VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sq8VectorSet")
            .field("dim", &self.dim)
            .field("len", &self.len())
            .finish()
    }
}

impl Sq8VectorSet {
    /// Quantizes every vector of `base`: fits the per-dimension `[min, max]`
    /// ranges, then rounds each coordinate to the nearest of the 256 levels.
    ///
    /// # Panics
    /// Panics if `base.dim() == 0` (unrepresentable by [`VectorSet`] anyway).
    pub fn encode(base: &VectorSet) -> Self {
        let dim = base.dim();
        assert!(dim > 0, "vector dimension must be positive");
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for row in base.iter() {
            for ((lo, hi), &x) in min.iter_mut().zip(max.iter_mut()).zip(row) {
                *lo = lo.min(x);
                *hi = hi.max(x);
            }
        }
        let scale: Vec<f32> = min
            .iter_mut()
            .zip(&max)
            .map(|(lo, &hi)| {
                if base.is_empty() {
                    *lo = 0.0;
                    0.0
                } else {
                    (hi - *lo) / (SQ8_LEVELS - 1) as f32
                }
            })
            .collect();
        let mut codes = Vec::with_capacity(dim * base.len());
        for row in base.iter() {
            for ((&x, &lo), &s) in row.iter().zip(&min).zip(&scale) {
                let code = if s > 0.0 {
                    // lint:allow(checked-narrowing): clamped to 0..=255 on the previous step, cast cannot truncate
                    ((x - lo) / s).round().clamp(0.0, (SQ8_LEVELS - 1) as f32) as u8
                } else {
                    0
                };
                codes.push(code);
            }
        }
        Self {
            dim,
            min: Arena::from_vec(min),
            scale: Arena::from_vec(scale),
            codes: Arena::from_vec(codes),
        }
    }

    /// Reassembles a store from its raw parts (the deserialization path).
    ///
    /// # Panics
    /// Panics if `dim == 0`, the parameter arrays are not `dim`-sized, or the
    /// code arena is not a multiple of `dim`. Decode paths handling untrusted
    /// bytes must use [`Sq8VectorSet::try_from_parts`] instead.
    pub fn from_parts(dim: usize, min: Vec<f32>, scale: Vec<f32>, codes: Vec<u8>) -> Self {
        match Self::try_from_arenas(dim, min.into(), scale.into(), codes.into()) {
            Ok(set) => set,
            Err(e) => panic!("{e}"), // lint:allow(no-panic): documented panicking constructor for trusted builder inputs; decode paths use try_from_parts
        }
    }

    /// Fallible [`Sq8VectorSet::from_parts`]: malformed inputs surface as a
    /// typed error instead of a panic, so corrupt snapshots are reported, not
    /// aborted on.
    pub fn try_from_parts(
        dim: usize,
        min: Vec<f32>,
        scale: Vec<f32>,
        codes: Vec<u8>,
    ) -> Result<Self, Sq8PartsError> {
        Self::try_from_arenas(dim, min.into(), scale.into(), codes.into())
    }

    /// Arena-level constructor behind both `from_parts` flavors; accepts
    /// owned vectors and zero-copy views borrowed from a mapped snapshot
    /// region alike.
    pub fn try_from_arenas(
        dim: usize,
        min: Arena<f32>,
        scale: Arena<f32>,
        codes: Arena<u8>,
    ) -> Result<Self, Sq8PartsError> {
        if dim == 0 {
            return Err(Sq8PartsError::ZeroDimension);
        }
        if min.len() != dim {
            return Err(Sq8PartsError::MinLength { expected: dim, got: min.len() });
        }
        if scale.len() != dim {
            return Err(Sq8PartsError::ScaleLength { expected: dim, got: scale.len() });
        }
        if !codes.len().is_multiple_of(dim) {
            return Err(Sq8PartsError::RaggedCodes { len: codes.len(), dim });
        }
        Ok(Self { dim, min, scale, codes })
    }

    /// Whether the codes and affine parameters are borrowed from a mapped
    /// region rather than owned by this store.
    pub fn is_borrowed(&self) -> bool {
        self.codes.is_borrowed()
    }

    /// Number of encoded vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len() / self.dim
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dimensionality of the encoded vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The code row of vector `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u8] {
        let start = i * self.dim;
        &self.codes.as_slice()[start..start + self.dim]
    }

    /// Per-dimension lower bounds of the code ranges.
    #[inline]
    pub fn mins(&self) -> &[f32] {
        self.min.as_slice()
    }

    /// Per-dimension code steps. The reconstruction error of dimension `i`
    /// is at most `scales()[i] / 2` (plus float rounding).
    #[inline]
    pub fn scales(&self) -> &[f32] {
        self.scale.as_slice()
    }

    /// The raw row-major code arena.
    #[inline]
    pub fn as_codes(&self) -> &[u8] {
        self.codes.as_slice()
    }

    /// Decodes vector `i` into `out` (`minᵢ + scaleᵢ·code`).
    ///
    /// # Panics
    /// Panics if `i` is out of range or `out.len() != self.dim()`.
    pub fn decode_into(&self, i: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output buffer has wrong dimension");
        for ((o, &c), (&lo, &s)) in out
            .iter_mut()
            .zip(self.code(i))
            .zip(self.min.as_slice().iter().zip(self.scale.as_slice()))
        {
            *o = lo + s * f32::from(c);
        }
    }

    /// Decodes vector `i` into a fresh `Vec` (test / debugging convenience;
    /// hot paths never decode — they use the asymmetric kernels).
    pub fn decode(&self, i: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.decode_into(i, &mut out);
        out
    }
}

impl VectorStore for Sq8VectorSet {
    #[inline]
    fn len(&self) -> usize {
        Sq8VectorSet::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        Sq8VectorSet::dim(self)
    }

    #[inline]
    fn prefetch(&self, id: usize) {
        let start = id * self.dim;
        if let Some(row) = self.codes.as_slice().get(start..start + self.dim) {
            crate::prefetch::prefetch_bytes(row);
        }
    }

    /// Codes plus the per-dimension affine parameters — the quantity the
    /// recall-vs-memory tables compare against `4·n·d` flat bytes.
    #[inline]
    fn memory_bytes(&self) -> usize {
        self.codes.len() + (self.min.len() + self.scale.len()) * std::mem::size_of::<f32>()
    }

    fn prepare_query<D: Distance + ?Sized>(&self, metric: &D, query: &[f32], scratch: &mut QueryScratch) {
        debug_assert_eq!(query.len(), self.dim, "query has wrong dimension");
        match metric.kind() {
            // l2 family: shift the min subtraction onto the query once.
            DistanceKind::SquaredEuclidean | DistanceKind::Euclidean => {
                let buf = scratch.reset(query.len(), metric.kind(), 0.0);
                buf.extend(query.iter().zip(self.min.as_slice()).map(|(&q, &lo)| q - lo));
            }
            // Inner product: −Σ qᵢ(minᵢ + scaleᵢcᵢ) = −(bias + Σ wᵢcᵢ) with
            // wᵢ = qᵢ·scaleᵢ and bias = Σ qᵢ·minᵢ folded here.
            DistanceKind::InnerProduct => {
                let buf = scratch.reset(query.len(), metric.kind(), 0.0);
                buf.extend(query.iter().zip(self.scale.as_slice()).map(|(&q, &s)| q * s));
                let bias: f32 = query.iter().zip(self.min.as_slice()).map(|(&q, &lo)| q * lo).sum();
                scratch.set_bias(bias);
            }
        }
    }

    #[inline]
    // lint:hot-path
    fn dist_to<D: Distance + ?Sized>(&self, metric: &D, scratch: &QueryScratch, id: usize) -> f32 {
        debug_assert_eq!(scratch.kind(), metric.kind(), "scratch prepared for a different metric");
        // For the concrete metric types `kind()` is a constant, so this match
        // folds away under monomorphization — each instantiation compiles to
        // exactly one kernel call through the table `prepare_query` cached
        // (kernel selection already resolved; no detection work here).
        let t = scratch.table();
        match metric.kind() {
            DistanceKind::SquaredEuclidean => (t.sq8_asym_l2)(scratch.prepared(), &self.scale, self.code(id)),
            DistanceKind::Euclidean => (t.sq8_asym_l2)(scratch.prepared(), &self.scale, self.code(id)).sqrt(),
            DistanceKind::InnerProduct => -(scratch.bias() + (t.sq8_asym_dot)(scratch.prepared(), self.code(id))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, InnerProduct, SquaredEuclidean};
    use crate::synthetic::{sift_like, uniform};

    fn naive_asym_l2(store: &Sq8VectorSet, query: &[f32], i: usize) -> f32 {
        let decoded = store.decode(i);
        SquaredEuclidean.distance(query, &decoded)
    }

    #[test]
    fn encode_decode_error_is_within_the_per_dimension_step() {
        let base = sift_like(300, 11);
        let store = Sq8VectorSet::encode(&base);
        assert_eq!(store.len(), base.len());
        assert_eq!(store.dim(), base.dim());
        let mut decoded = vec![0.0; base.dim()];
        for i in 0..base.len() {
            store.decode_into(i, &mut decoded);
            for ((&x, &y), &s) in base.get(i).iter().zip(&decoded).zip(store.scales()) {
                let bound = s / 2.0 + 1e-4 * x.abs().max(1.0);
                assert!(
                    (x - y).abs() <= bound,
                    "vector {i}: |{x} - {y}| exceeds half-step bound {bound}"
                );
            }
        }
    }

    #[test]
    fn asymmetric_l2_kernel_matches_decode_then_distance() {
        let base = uniform(64, 33, 5); // odd dimension exercises the tail loop
        let store = Sq8VectorSet::encode(&base);
        let query = base.get(7);
        let mut scratch = QueryScratch::new();
        store.prepare_query(&SquaredEuclidean, query, &mut scratch);
        for i in 0..base.len() {
            let fast = store.dist_to(&SquaredEuclidean, &scratch, i);
            let slow = naive_asym_l2(&store, query, i);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                "vector {i}: kernel {fast} vs naive {slow}"
            );
        }
        // Euclidean is the square root of the squared form.
        store.prepare_query(&Euclidean, query, &mut scratch);
        let d = store.dist_to(&Euclidean, &scratch, 3);
        store.prepare_query(&SquaredEuclidean, query, &mut scratch);
        let d2 = store.dist_to(&SquaredEuclidean, &scratch, 3);
        assert!((d * d - d2).abs() <= 1e-3 * d2.max(1.0));
    }

    #[test]
    fn asymmetric_dot_kernel_matches_decode_then_distance() {
        let base = uniform(40, 17, 9);
        let store = Sq8VectorSet::encode(&base);
        let query = base.get(0);
        let mut scratch = QueryScratch::new();
        store.prepare_query(&InnerProduct, query, &mut scratch);
        for i in 0..base.len() {
            let fast = store.dist_to(&InnerProduct, &scratch, i);
            let slow = InnerProduct.distance(query, &store.decode(i));
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.abs().max(1.0),
                "vector {i}: kernel {fast} vs naive {slow}"
            );
        }
    }

    #[test]
    fn quantized_distances_rank_like_exact_ones() {
        // The property traversal actually needs: SQ8 distances order
        // candidates nearly like exact f32 distances. Check that the exact
        // nearest neighbor of each query lands in the quantized top-3.
        let base = sift_like(500, 23);
        let store = Sq8VectorSet::encode(&base);
        let mut scratch = QueryScratch::new();
        for q in (0..base.len()).step_by(50) {
            let query = base.get(q);
            store.prepare_query(&SquaredEuclidean, query, &mut scratch);
            let mut scored: Vec<(usize, f32)> = (0..base.len())
                .map(|i| (i, store.dist_to(&SquaredEuclidean, &scratch, i)))
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1));
            let top3: Vec<usize> = scored.iter().take(3).map(|&(i, _)| i).collect();
            assert!(top3.contains(&q), "query {q}: exact NN not in quantized top-3 {top3:?}");
        }
    }

    #[test]
    fn constant_dimensions_decode_exactly() {
        let base = VectorSet::from_rows(3, &[[1.5, -2.0, 7.0], [1.5, 3.0, 7.0], [1.5, 8.0, 7.0]]);
        let store = Sq8VectorSet::encode(&base);
        assert_eq!(store.scales()[0], 0.0);
        assert_eq!(store.scales()[2], 0.0);
        for i in 0..3 {
            let d = store.decode(i);
            assert_eq!(d[0], 1.5);
            assert_eq!(d[2], 7.0);
        }
    }

    #[test]
    fn memory_is_about_a_quarter_of_flat() {
        let base = uniform(1000, 128, 3);
        let store = Sq8VectorSet::encode(&base);
        let flat = base.memory_bytes();
        let quant = VectorStore::memory_bytes(&store);
        assert!(
            quant * 100 <= flat * 30,
            "SQ8 store {quant} bytes is more than 30% of flat {flat} bytes"
        );
        assert!(quant >= base.len() * base.dim(), "codes must be at least one byte per coordinate");
    }

    #[test]
    fn empty_and_tiny_sets_encode() {
        let empty = VectorSet::new(4);
        let store = Sq8VectorSet::encode(&empty);
        assert!(store.is_empty());
        assert_eq!(store.dim(), 4);
        assert_eq!(store.scales(), &[0.0; 4]);

        let one = VectorSet::from_rows(2, &[[5.0, -3.0]]);
        let store1 = Sq8VectorSet::encode(&one);
        assert_eq!(store1.decode(0), vec![5.0, -3.0]);
    }

    #[test]
    fn from_parts_roundtrips_encode_fields() {
        let base = uniform(20, 6, 1);
        let store = Sq8VectorSet::encode(&base);
        let rebuilt = Sq8VectorSet::from_parts(
            store.dim(),
            store.mins().to_vec(),
            store.scales().to_vec(),
            store.as_codes().to_vec(),
        );
        assert_eq!(rebuilt, store);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_parts_rejects_ragged_codes() {
        let _ = Sq8VectorSet::from_parts(3, vec![0.0; 3], vec![1.0; 3], vec![0u8; 4]);
    }

    #[test]
    fn adc_accumulate_matches_the_naive_loop() {
        let width = 16;
        let codes = [3u8, 15, 0, 7];
        let tables: Vec<f32> = (0..width * codes.len()).map(|i| i as f32 * 0.5).collect();
        let naive: f32 = codes
            .iter()
            .enumerate()
            .map(|(s, &c)| tables[s * width + c as usize])
            .sum();
        assert_eq!(adc_accumulate(&tables, width, &codes), naive);
        assert_eq!(adc_accumulate(&[], 5, &[]), 0.0);
    }

    #[test]
    fn out_of_range_prefetch_is_a_no_op() {
        let base = uniform(4, 8, 1);
        let store = Sq8VectorSet::encode(&base);
        VectorStore::prefetch(&store, 0);
        VectorStore::prefetch(&store, 1000); // must not panic
    }
}
