//! Deterministic sampling and dataset splitting.
//!
//! Section 4.1.1 of the paper repartitions each dataset by sampling one
//! percent of the training points as a validation set used for parameter
//! tuning, and §4.1.4 / §4.2 sample subsets of growing size for the scaling
//! experiments and partition a dataset into shards for distributed search.
//! These helpers implement those operations with explicit seeds.

use crate::dataset::VectorSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Derives a deterministic 64-bit salt from a query's contents (FNV-1a over
/// the f32 bit patterns).
///
/// The random-initialized baselines (KGraph, NSG-Naive, FANNG, DPG, NSW) use
/// this to seed their per-query entry-point RNG: every query draws its own
/// entry points, yet repeated runs of the same query remain reproducible.
/// Seeding from the effort knob alone would hand the *same* entry points to
/// every query in a sweep, letting one unlucky draw sink the whole run.
pub fn query_salt(query: &[f32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in query {
        hash = (hash ^ x.to_bits() as u64).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A base/validation split as used for parameter tuning in §4.1.1.
#[derive(Debug, Clone)]
pub struct Split {
    /// Remaining training (base) vectors.
    pub base: VectorSet,
    /// Held-out validation queries.
    pub validation: VectorSet,
    /// Ids (into the original set) of the vectors that became the base.
    pub base_ids: Vec<u32>,
    /// Ids (into the original set) of the vectors that became validation
    /// queries.
    pub validation_ids: Vec<u32>,
}

/// Randomly samples `fraction` of the set as a validation split and returns
/// the remainder as the base.
///
/// `fraction` is clamped to `[0, 1]`; at least one vector is kept in the base
/// when the input is non-empty.
pub fn holdout_split(set: &VectorSet, fraction: f64, seed: u64) -> Split {
    let n = set.len();
    let fraction = fraction.clamp(0.0, 1.0);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let mut n_val = (n as f64 * fraction).round() as usize;
    if n > 0 && n_val >= n {
        n_val = n - 1;
    }
    let validation_ids: Vec<u32> = ids[..n_val].to_vec();
    let base_ids: Vec<u32> = ids[n_val..].to_vec();
    Split {
        base: set.subset(&base_ids),
        validation: set.subset(&validation_ids),
        base_ids,
        validation_ids,
    }
}

/// Samples `count` vectors uniformly without replacement.
///
/// `count` is clamped to the set size. Returned ids refer to the original set.
pub fn sample_subset(set: &VectorSet, count: usize, seed: u64) -> (VectorSet, Vec<u32>) {
    let mut ids: Vec<u32> = (0..set.len() as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(count.min(set.len()));
    (set.subset(&ids), ids)
}

/// Randomly partitions the set into `parts` shards of (nearly) equal size, as
/// done for the 16-shard DEEP100M experiment and the 12/32-partition Taobao
/// deployments.
///
/// Returns one `(shard, original_ids)` pair per partition. `parts` is clamped
/// to at least 1.
pub fn random_partition(set: &VectorSet, parts: usize, seed: u64) -> Vec<(VectorSet, Vec<u32>)> {
    let parts = parts.max(1);
    let mut ids: Vec<u32> = (0..set.len() as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let mut out = Vec::with_capacity(parts);
    let chunk = set.len().div_ceil(parts).max(1);
    for part_ids in ids.chunks(chunk) {
        out.push((set.subset(part_ids), part_ids.to_vec()));
    }
    while out.len() < parts {
        out.push((VectorSet::new(set.dim()), Vec::new()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;

    #[test]
    fn query_salt_is_deterministic_and_content_sensitive() {
        let q = [1.0f32, -2.5, 3.25];
        assert_eq!(query_salt(&q), query_salt(&q));
        assert_ne!(query_salt(&q), query_salt(&[1.0f32, -2.5, 3.26]));
        assert_ne!(query_salt(&[]), query_salt(&[0.0]));
    }

    #[test]
    fn holdout_sizes_add_up() {
        let set = uniform(100, 4, 1);
        let split = holdout_split(&set, 0.1, 7);
        assert_eq!(split.base.len() + split.validation.len(), 100);
        assert_eq!(split.validation.len(), 10);
        assert_eq!(split.base_ids.len(), split.base.len());
        assert_eq!(split.validation_ids.len(), split.validation.len());
    }

    #[test]
    fn holdout_ids_are_disjoint_and_cover_everything() {
        let set = uniform(50, 2, 3);
        let split = holdout_split(&set, 0.2, 9);
        let mut all: Vec<u32> = split.base_ids.iter().chain(&split.validation_ids).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn holdout_is_deterministic_per_seed() {
        let set = uniform(40, 2, 3);
        let a = holdout_split(&set, 0.25, 11);
        let b = holdout_split(&set, 0.25, 11);
        assert_eq!(a.validation_ids, b.validation_ids);
        let c = holdout_split(&set, 0.25, 12);
        assert_ne!(a.validation_ids, c.validation_ids);
    }

    #[test]
    fn holdout_keeps_at_least_one_base_vector() {
        let set = uniform(5, 2, 1);
        let split = holdout_split(&set, 1.0, 2);
        assert!(!split.base.is_empty());
    }

    #[test]
    fn sample_subset_respects_count_and_bounds() {
        let set = uniform(30, 3, 5);
        let (sub, ids) = sample_subset(&set, 10, 8);
        assert_eq!(sub.len(), 10);
        assert_eq!(ids.len(), 10);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(sub.get(i), set.get(id as usize));
        }
        let (all, _) = sample_subset(&set, 100, 8);
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn partition_covers_all_ids_exactly_once() {
        let set = uniform(101, 2, 6);
        let parts = random_partition(&set, 4, 13);
        assert_eq!(parts.len(), 4);
        let mut all: Vec<u32> = parts.iter().flat_map(|(_, ids)| ids.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..101).collect::<Vec<u32>>());
        // Shard sizes are balanced within one chunk.
        let sizes: Vec<usize> = parts.iter().map(|(s, _)| s.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 26);
    }

    #[test]
    fn partition_with_more_parts_than_points_pads_empty_shards() {
        let set = uniform(3, 2, 6);
        let parts = random_partition(&set, 5, 1);
        assert_eq!(parts.len(), 5);
        let non_empty = parts.iter().filter(|(s, _)| !s.is_empty()).count();
        assert_eq!(non_empty, 3);
    }
}
